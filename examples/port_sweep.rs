//! The expanded §4.3 trade-off surface: sweep the number of L1 data-cache
//! ports `[1, 2, 4, 8]` *and* the wide-bus width `[2, 4, 8]` elements across
//! the three memory front-end variants on both Table 1 machines, printing IPC
//! and port occupancy for every cell.
//!
//! ```text
//! cargo run --release --example port_sweep
//! ```
//!
//! The scalar-bus baseline has no bus to widen, so its cells are identical
//! across the bus axis — the run engine simulates each of them once and the
//! final report shows the deduplication.

use sdv::sim::{Experiment, Fig11, Fig12, RunConfig, SweepGrid, Workload};

fn main() {
    let rc = RunConfig {
        scale: 2,
        max_insts: 60_000,
    };
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let workloads = vec![
        Workload::Compress,
        Workload::Ijpeg,
        Workload::Swim,
        Workload::Applu,
    ];
    let grid = SweepGrid::new()
        .ports(vec![1, 2, 4, 8])
        .bus_words(vec![2, 4, 8]);
    println!(
        "sweeping {{1, 2, 4, 8}} ports × {{2, 4, 8}}-element buses × {{noIM, IM, V}}\n\
         on the 4-way and 8-way machines over {} workloads\n\
         ({} grid cells, {} committed instructions each, {} threads)…\n",
        workloads.len(),
        grid.len(),
        rc.max_insts,
        threads
    );
    let exp = Experiment::new(rc).threads(threads).workloads(workloads);
    let sweep = exp.sweep(&grid);
    println!("{}", Fig11(&sweep));
    println!("{}", Fig12(&sweep));
    println!(
        "With a single port the wide bus and vectorization help most, and widening\n\
         the bus (b8 configs) substitutes for extra ports; with four or eight ports\n\
         the baseline already has enough memory bandwidth — the crossover the paper\n\
         reports in §4.3, now mapped beyond its [1, 2, 4]-port grid.\n"
    );
    println!("{}", exp.report());
}

//! A miniature version of Figures 11 and 12: sweep the number of L1 data-cache
//! ports and the memory front-end variant over a few workloads, printing IPC
//! and port occupancy.
//!
//! ```text
//! cargo run --release --example port_sweep
//! ```

use sdv::sim::{port_sweep, Fig11, Fig12, MachineWidth, RunConfig, Workload};

fn main() {
    let rc = RunConfig {
        scale: 2,
        max_insts: 60_000,
    };
    let workloads = [
        Workload::Compress,
        Workload::Ijpeg,
        Workload::Swim,
        Workload::Applu,
    ];
    println!(
        "sweeping {{1, 2, 4}} ports × {{noIM, IM, V}} on the 4-way and 8-way machines\n\
         over {} workloads ({} committed instructions each)…\n",
        workloads.len(),
        rc.max_insts
    );
    let sweep = port_sweep(&rc, &workloads, &MachineWidth::all(), &[1, 2, 4]);
    println!("{}", Fig11(&sweep));
    println!("{}", Fig12(&sweep));
    println!(
        "With a single port the wide bus and vectorization help most; with four\n\
         ports the baseline already has enough memory bandwidth — the crossover\n\
         the paper reports in §4.3."
    );
}

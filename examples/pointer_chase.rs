//! Irregular code: what dynamic vectorization does (and does not do) on a
//! pointer-chasing workload like the paper's `li` and `gcc`.
//!
//! The `li` kernel chases cons cells whose addresses have no usable stride, so
//! almost nothing vectorizes; the `vortex` kernel copies records with stride-1
//! field accesses and vectorizes heavily.  This example contrasts the two.
//!
//! ```text
//! cargo run --release --example pointer_chase
//! ```

use sdv::sim::{run_workload, PortKind, ProcessorConfig, RunConfig, Workload};

fn main() {
    let cfg = ProcessorConfig::four_way(1, PortKind::Wide).with_vectorization(true);
    let rc = RunConfig {
        scale: 4,
        max_insts: 300_000,
    };

    println!("4-way, 1 wide port, dynamic vectorization enabled\n");
    println!(
        "  {:<10} {:>8} {:>14} {:>16} {:>14}",
        "workload", "IPC", "validations", "vector mode %", "mispredict %"
    );
    for workload in [
        Workload::Li,
        Workload::Gcc,
        Workload::Vortex,
        Workload::Compress,
    ] {
        let stats = run_workload(workload, &cfg, &rc);
        println!(
            "  {:<10} {:>8.3} {:>14} {:>15.1}% {:>13.1}%",
            workload.name(),
            stats.ipc(),
            stats.committed_validations,
            stats.vector_mode_fraction() * 100.0,
            stats.misprediction_rate() * 100.0,
        );
    }
    println!(
        "\npointer chasing (li) stays scalar while record copying (vortex) vectorizes,\n\
         mirroring the per-benchmark spread of Figure 3 in the paper."
    );
}

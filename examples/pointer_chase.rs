//! Irregular code: what dynamic vectorization does (and does not do) on a
//! pointer-chasing workload like the paper's `li` and `gcc`.
//!
//! The `li` kernel chases cons cells whose addresses have no usable stride, so
//! almost nothing vectorizes; the `vortex` kernel copies records with stride-1
//! field accesses and vectorizes heavily.  This example contrasts the two.
//!
//! ```text
//! cargo run --release --example pointer_chase
//! ```

use sdv::sim::{ProcessorConfig, RunConfig, RunEngine, Workload};

fn main() {
    let cfg = ProcessorConfig::builder().vectorization(true).build();
    let rc = RunConfig {
        scale: 4,
        max_insts: 300_000,
    };
    let workloads = [
        Workload::Li,
        Workload::Gcc,
        Workload::Vortex,
        Workload::Compress,
    ];

    // One engine batch simulates the four kernels on four threads.
    let engine = RunEngine::new(rc).with_threads(4);
    let suite = engine.suite(&workloads, &cfg);

    println!("4-way, 1 wide port, dynamic vectorization enabled\n");
    println!(
        "  {:<10} {:>8} {:>14} {:>16} {:>14}",
        "workload", "IPC", "validations", "vector mode %", "mispredict %"
    );
    for (workload, stats) in &suite.runs {
        println!(
            "  {:<10} {:>8.3} {:>14} {:>15.1}% {:>13.1}%",
            workload.name(),
            stats.ipc(),
            stats.committed_validations,
            stats.vector_mode_fraction() * 100.0,
            stats.misprediction_rate() * 100.0,
        );
    }
    println!(
        "\npointer chasing (li) stays scalar while record copying (vortex) vectorizes,\n\
         mirroring the per-benchmark spread of Figure 3 in the paper."
    );
}

//! Quickstart: build a tiny strided program with the embedded assembler and
//! compare a baseline superscalar run against the same processor with
//! speculative dynamic vectorization enabled.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sdv::isa::{ArchReg, Asm};
use sdv::sim::{run_program, PortKind, ProcessorConfig};

fn main() {
    // A loop reading four independent strided streams and accumulating them —
    // the kind of loop the Table of Loads detects immediately.
    let mut a = Asm::new();
    let data: Vec<u64> = (0..4096).collect();
    let bufs: Vec<u64> = (0..4).map(|_| a.data_u64(&data)).collect();
    let n = ArchReg::int(16);
    a.li(n, 4096);
    for (i, &buf) in bufs.iter().enumerate() {
        a.li(ArchReg::int(1 + i as u8), buf as i64);
        a.li(ArchReg::int(5 + i as u8), 0);
    }
    a.label("loop");
    for i in 0..4u8 {
        a.ld(ArchReg::int(9 + i), ArchReg::int(1 + i), 0);
    }
    for i in 0..4u8 {
        a.add(
            ArchReg::int(5 + i),
            ArchReg::int(5 + i),
            ArchReg::int(9 + i),
        );
    }
    for i in 0..4u8 {
        a.addi(ArchReg::int(1 + i), ArchReg::int(1 + i), 8);
    }
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "loop");
    a.halt();
    let program = a.finish();

    let budget = 400_000;
    let baseline_cfg = ProcessorConfig::four_way(1, PortKind::Wide);
    let dv_cfg = baseline_cfg.clone().with_vectorization(true);

    println!(
        "running {} static instructions on the 4-way, 1 wide-port processor…\n",
        program.len()
    );
    let baseline = run_program(&baseline_cfg, &program, budget);
    let dv = run_program(&dv_cfg, &program, budget);

    println!("                       baseline (1pIM)   with DV (1pV)");
    println!(
        "  IPC                  {:>14.3}   {:>13.3}",
        baseline.ipc(),
        dv.ipc()
    );
    println!(
        "  memory accesses      {:>14}   {:>13}",
        baseline.memory_accesses, dv.memory_accesses
    );
    println!(
        "  scalar arithmetic    {:>14}   {:>13}",
        baseline.scalar_arith_executed, dv.scalar_arith_executed
    );
    println!(
        "  validations          {:>14}   {:>13}",
        baseline.committed_validations, dv.committed_validations
    );
    println!(
        "\nIPC change from dynamic vectorization: {:+.1}%",
        (dv.ipc() / baseline.ipc() - 1.0) * 100.0
    );
    println!(
        "memory accesses: {:+.1}%, scalar arithmetic executed: {:+.1}%",
        (dv.memory_accesses as f64 / baseline.memory_accesses as f64 - 1.0) * 100.0,
        (dv.scalar_arith_executed as f64 / baseline.scalar_arith_executed as f64 - 1.0) * 100.0
    );
    println!(
        "\nOn this small, cache-resident loop the baseline is not memory-bound, so the\n\
         win shows up as fewer memory accesses and less scalar work at equal IPC.  The\n\
         `stencil_fp` and `port_sweep` examples show the port-starved configurations\n\
         where dynamic vectorization also delivers the paper's IPC gains."
    );
}

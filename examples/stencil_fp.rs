//! Floating-point stencil: the `swim` analogue across the paper's three
//! memory front-ends (scalar bus, wide bus, wide bus + vectorization).
//!
//! ```text
//! cargo run --release --example stencil_fp
//! ```

use sdv::sim::{MachineWidth, RunConfig, RunEngine, Variant, Workload};

fn main() {
    let rc = RunConfig {
        scale: 8,
        max_insts: 300_000,
    };
    // One batch: the engine simulates the three variants on three threads.
    let engine = RunEngine::new(rc).with_threads(3);
    let cells: Vec<_> = Variant::all()
        .iter()
        .map(|v| (v.config(MachineWidth::FourWay, 1), Workload::Swim))
        .collect();
    let results = engine.run_cells(&cells);
    println!("swim (stride-1 FP stencil), 4-way processor, 1 L1 data-cache port\n");
    println!(
        "  {:<8} {:>8} {:>16} {:>18} {:>12}",
        "config", "IPC", "mem accesses", "port occupancy", "valid. %"
    );
    for ((cfg, _), stats) in cells.iter().zip(&results) {
        println!(
            "  {:<8} {:>8.3} {:>16} {:>17.1}% {:>11.1}%",
            cfg.label(),
            stats.ipc(),
            stats.memory_accesses,
            stats.port_occupancy() * 100.0,
            stats.validation_fraction() * 100.0,
        );
    }
    println!(
        "\nThe wide bus (1pIM) already removes part of the port pressure; dynamic\n\
         vectorization (1pV) converts the stencil loads and arithmetic into vector\n\
         work and validations, freeing the scalar pipeline — the same ordering as\n\
         Figure 11 of the paper."
    );
}

#!/usr/bin/env python3
"""Compare two `repro --timing-json` dumps and fail on a perf regression.

Usage:
    timing_diff.py BASELINE.json CURRENT.json [--max-regress 0.20]

Both files are `sdv-engine-timing/1` documents.  The check compares the
headline `cycles_per_second` figure: the job fails when the current run is
more than `--max-regress` (default 20%) slower than the committed baseline.
Absolute wall-clock depends on the host, so treat the committed baseline as a
trajectory marker (refresh it from CI artifacts when hardware or the
simulator changes deliberately); the gate is meant to catch order-of-magnitude
hot-path regressions, not CPU-model noise.

Exit codes: 0 ok / improved, 1 regression, 2 usage or malformed input.
"""

import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"timing_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "sdv-engine-timing/1":
        print(f"timing_diff: {path}: unexpected schema {doc.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    return doc


def main(argv):
    args = []
    max_regress = 0.20
    it = iter(argv[1:])
    for a in it:
        if a == "--max-regress":
            try:
                max_regress = float(next(it))
            except (StopIteration, ValueError):
                print("timing_diff: --max-regress needs a float", file=sys.stderr)
                return 2
        elif a.startswith("--"):
            print(f"timing_diff: unknown flag {a}", file=sys.stderr)
            return 2
        else:
            args.append(a)
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    base, cur = load(args[0]), load(args[1])
    base_cps = float(base["cycles_per_second"])
    cur_cps = float(cur["cycles_per_second"])
    if base_cps <= 0:
        print("timing_diff: baseline has no timing data (0 cycles/s); skipping gate")
        return 0

    ratio = cur_cps / base_cps
    print(
        f"timing_diff: baseline {base_cps:,.0f} cycles/s "
        f"({base['cells']} cells), current {cur_cps:,.0f} cycles/s "
        f"({cur['cells']} cells) -> {ratio:.2f}x"
    )
    if ratio < 1.0 - max_regress:
        print(
            f"timing_diff: FAIL — throughput regressed more than "
            f"{max_regress:.0%} vs the committed baseline",
            file=sys.stderr,
        )
        return 1
    print("timing_diff: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

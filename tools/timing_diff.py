#!/usr/bin/env python3
"""Gate a `repro --timing-json` dump against a perf trajectory.

Usage:
    timing_diff.py BASELINE.json [BASELINE2.json ...] CURRENT.json \
        [--max-regress 0.20]

All files are `sdv-engine-timing/1` documents.  The last positional argument
is the current run; every earlier one is a committed trajectory point
(`BENCH_pr4.json`, `BENCH_pr6.json`, ...).  The check compares the headline
`cycles_per_second` figure against the BEST trajectory point — the gate must
not loosen when a later baseline happens to be slower than an earlier one.
The job fails when the current run is more than `--max-regress` (default 20%)
slower than that best point.

Absolute wall-clock depends on the host, so treat the committed trajectory as
markers (refresh from CI artifacts when hardware or the simulator changes
deliberately); the gate is meant to catch order-of-magnitude hot-path
regressions, not CPU-model noise.

Exit codes: 0 ok / improved, 1 regression, 2 usage or malformed input.
"""

import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"timing_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "sdv-engine-timing/1":
        print(f"timing_diff: {path}: unexpected schema {doc.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    return doc


def main(argv):
    args = []
    max_regress = 0.20
    it = iter(argv[1:])
    for a in it:
        if a == "--max-regress":
            try:
                max_regress = float(next(it))
            except (StopIteration, ValueError):
                print("timing_diff: --max-regress needs a float", file=sys.stderr)
                return 2
        elif a.startswith("--"):
            print(f"timing_diff: unknown flag {a}", file=sys.stderr)
            return 2
        else:
            args.append(a)
    if len(args) < 2:
        print(__doc__, file=sys.stderr)
        return 2

    baselines = [(path, load(path)) for path in args[:-1]]
    cur = load(args[-1])
    cur_cps = float(cur["cycles_per_second"])

    scored = [(float(doc["cycles_per_second"]), path, doc) for path, doc in baselines]
    for cps, path, _ in scored:
        print(f"timing_diff: trajectory {path}: {cps:,.0f} cycles/s")
    best_cps, best_path, best = max(scored)
    if best_cps <= 0:
        print("timing_diff: trajectory has no timing data (0 cycles/s); skipping gate")
        return 0

    ratio = cur_cps / best_cps
    print(
        f"timing_diff: best trajectory point {best_path} at {best_cps:,.0f} "
        f"cycles/s ({best['cells']} cells), current {cur_cps:,.0f} cycles/s "
        f"({cur['cells']} cells) -> {ratio:.2f}x"
    )
    if ratio < 1.0 - max_regress:
        print(
            f"timing_diff: FAIL — throughput regressed more than "
            f"{max_regress:.0%} vs the best committed trajectory point",
            file=sys.stderr,
        )
        return 1
    print("timing_diff: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

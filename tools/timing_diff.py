#!/usr/bin/env python3
"""Gate a `repro --timing-json` dump against a perf trajectory.

Usage:
    timing_diff.py BASELINE.json [BASELINE2.json ...] CURRENT.json \
        [--max-regress 0.20] [--metrics BASE_METRICS.json CUR_METRICS.json]
    timing_diff.py --self-check

All files are `sdv-engine-timing/1` documents.  The last positional argument
is the current run; every earlier one is a committed trajectory point
(`BENCH_pr4.json`, `BENCH_pr6.json`, ...).  The check compares the headline
`cycles_per_second` figure against the BEST trajectory point — the gate must
not loosen when a later baseline happens to be slower than an earlier one.
The job fails when the current run is more than `--max-regress` (default 20%)
slower than that best point.  On failure the report names the worst-regressing
per-cell `config×workload` pair against that best point, so the log localises
the hot-path regression instead of only flagging the aggregate.

Absolute wall-clock depends on the host, so treat the committed trajectory as
markers (refresh from CI artifacts when hardware or the simulator changes
deliberately); the gate is meant to catch order-of-magnitude hot-path
regressions, not CPU-model noise.

`--metrics BASE CURRENT` takes two `sdv-obs-metrics/1` documents
(`repro --metrics-json`); on gate failure the report additionally prints the
`pipeline.cycles.*` stall-bucket shares of both runs, so the log says not
just *which cell* got slower but *which kind of cycle* grew.  Both documents
are validated up front — malformed or wrong-schema metrics exit 2 with a
diagnostic naming the file, even when the gate itself would pass.

`--self-check` runs the built-in unit test over synthetic documents (gate
pass, gate fail, worst-cell attribution, stall-bucket deltas) and exits 0
when all pass.

Exit codes: 0 ok / improved / self-check passed, 1 regression, 2 usage or
malformed input.
"""

import json
import sys


def _malformed(path, why):
    """Fails with a named-file diagnostic (never a Python traceback)."""
    print(f"timing_diff: {path}: {why}", file=sys.stderr)
    sys.exit(2)


def _require_number(doc, field, path):
    """The named numeric field, or a named-file diagnostic and exit 2."""
    if field not in doc:
        _malformed(path, f"missing required field {field!r}")
    try:
        return float(doc[field])
    except (TypeError, ValueError):
        _malformed(path, f"field {field!r} is not a number: {doc[field]!r}")


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"timing_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict):
        _malformed(path, f"expected a JSON object, got {type(doc).__name__}")
    if doc.get("schema") != "sdv-engine-timing/1":
        _malformed(path, f"unexpected schema {doc.get('schema')!r}")
    # Validate every field the gate touches up front, so a half-written or
    # hand-edited baseline names itself instead of raising KeyError later.
    _require_number(doc, "cycles_per_second", path)
    _require_number(doc, "cells", path)
    per_cell = doc.get("per_cell", [])
    if not isinstance(per_cell, list):
        _malformed(path, "'per_cell' must be a list")
    for i, cell in enumerate(per_cell):
        if not isinstance(cell, dict):
            _malformed(path, f"per_cell[{i}] must be an object")
        for field in ("config", "workload"):
            if field not in cell:
                _malformed(path, f"per_cell[{i}] is missing {field!r}")
        _require_number(cell, "cycles_per_second", path)
    return doc


def load_metrics(path):
    """The counters of an `sdv-obs-metrics/1` document, validated up front."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"timing_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict):
        _malformed(path, f"expected a JSON object, got {type(doc).__name__}")
    if doc.get("schema") != "sdv-obs-metrics/1":
        _malformed(path, f"unexpected schema {doc.get('schema')!r}")
    counters = doc.get("counters", {})
    if not isinstance(counters, dict):
        _malformed(path, "'counters' must be an object")
    for name, value in counters.items():
        if not isinstance(value, (int, float)):
            _malformed(path, f"counter {name!r} is not a number: {value!r}")
    return counters


def bucket_shares(counters):
    """`pipeline.cycles.*` buckets as (name, cycles, share-of-total) rows."""
    buckets = {
        name[len("pipeline.cycles.") :]: float(v)
        for name, v in counters.items()
        if name.startswith("pipeline.cycles.")
    }
    total = sum(buckets.values())
    if total <= 0:
        return []
    return [(name, v, v / total) for name, v in sorted(buckets.items())]


def print_bucket_deltas(base_counters, cur_counters):
    """Prints the stall-bucket share shift from base to current (stderr).

    Shares (fraction of attributed cycles) rather than absolute counts, so
    two runs of different length stay comparable; sorted by how much the
    bucket's share grew, biggest growth first — the top line is where the
    extra time went.
    """
    base = {name: share for name, _, share in bucket_shares(base_counters)}
    cur = {name: share for name, _, share in bucket_shares(cur_counters)}
    if not base or not cur:
        print(
            "timing_diff: no pipeline.cycles.* buckets in the metrics "
            "documents; skipping stall-bucket report",
            file=sys.stderr,
        )
        return
    names = sorted(set(base) | set(cur), key=lambda n: base.get(n, 0.0) - cur.get(n, 0.0))
    print(
        "timing_diff: stall-bucket shares (pipeline.cycles.*, fraction of "
        "attributed cycles, base -> current):",
        file=sys.stderr,
    )
    for name in names:
        b, c = base.get(name, 0.0), cur.get(name, 0.0)
        print(
            f"timing_diff:   {name:<24} {b:6.1%} -> {c:6.1%}  ({(c - b) * 100:+.1f}pp)",
            file=sys.stderr,
        )


def worst_cell_regression(best, cur):
    """The per-cell `config×workload` pair that regressed hardest vs `best`.

    Matches cells by (config, workload) and compares per-cell
    `cycles_per_second`; returns `(ratio, config, workload, best_cps,
    cur_cps)` for the smallest current/best ratio, or `None` when the
    documents share no comparable cell.
    """
    best_cells = {
        (c["config"], c["workload"]): float(c["cycles_per_second"])
        for c in best.get("per_cell", [])
        if float(c.get("cycles_per_second", 0)) > 0
    }
    worst = None
    for c in cur.get("per_cell", []):
        key = (c["config"], c["workload"])
        base_cps = best_cells.get(key)
        if base_cps is None:
            continue
        cur_cps = float(c["cycles_per_second"])
        ratio = cur_cps / base_cps
        if worst is None or ratio < worst[0]:
            worst = (ratio, key[0], key[1], base_cps, cur_cps)
    return worst


def run_gate(baseline_paths, current_path, max_regress, metrics=None):
    baselines = [(path, load(path)) for path in baseline_paths]
    cur = load(current_path)
    # Validate eagerly: a malformed metrics baseline must exit 2 even on a
    # run where the gate passes and the deltas would never print.
    metric_counters = None
    if metrics is not None:
        metric_counters = (load_metrics(metrics[0]), load_metrics(metrics[1]))
    cur_cps = float(cur["cycles_per_second"])

    scored = [(float(doc["cycles_per_second"]), path, doc) for path, doc in baselines]
    for cps, path, _ in scored:
        print(f"timing_diff: trajectory {path}: {cps:,.0f} cycles/s")
    best_cps, best_path, best = max(scored)
    if best_cps <= 0:
        print("timing_diff: trajectory has no timing data (0 cycles/s); skipping gate")
        return 0

    ratio = cur_cps / best_cps
    print(
        f"timing_diff: best trajectory point {best_path} at {best_cps:,.0f} "
        f"cycles/s ({best['cells']} cells), current {cur_cps:,.0f} cycles/s "
        f"({cur['cells']} cells) -> {ratio:.2f}x"
    )
    if ratio < 1.0 - max_regress:
        print(
            f"timing_diff: FAIL — throughput regressed more than "
            f"{max_regress:.0%} vs the best committed trajectory point",
            file=sys.stderr,
        )
        worst = worst_cell_regression(best, cur)
        if worst is not None:
            w_ratio, config, workload, b_cps, c_cps = worst
            print(
                f"timing_diff: worst cell {config}/{workload}: "
                f"{b_cps:,.0f} -> {c_cps:,.0f} cycles/s ({w_ratio:.2f}x)",
                file=sys.stderr,
            )
        if metric_counters is not None:
            print_bucket_deltas(*metric_counters)
        return 1
    print("timing_diff: ok")
    return 0


def _doc(cps, cells):
    """A minimal synthetic sdv-engine-timing/1 document for the self-check."""
    return {
        "schema": "sdv-engine-timing/1",
        "cells": len(cells),
        "cycles_per_second": cps,
        "per_cell": [
            {"config": cfg, "workload": wl, "cycles_per_second": cell_cps}
            for (cfg, wl, cell_cps) in cells
        ],
    }


def self_check():
    base = _doc(
        1_000_000.0,
        [
            ("1pV", "swim", 500_000.0),
            ("1pV", "applu", 800_000.0),
            ("4pnoIM", "swim", 2_000_000.0),
        ],
    )

    # Worst-cell attribution picks the hardest-hit pair, not the first.
    cur = _doc(
        700_000.0,
        [
            ("1pV", "swim", 450_000.0),  # 0.90x
            ("1pV", "applu", 200_000.0),  # 0.25x  <- worst
            ("4pnoIM", "swim", 1_900_000.0),  # 0.95x
            ("8pV", "swim", 1.0),  # no baseline cell: ignored
        ],
    )
    worst = worst_cell_regression(base, cur)
    assert worst is not None, "comparable cells exist"
    ratio, config, workload, b_cps, c_cps = worst
    assert (config, workload) == ("1pV", "applu"), f"wrong worst cell {config}/{workload}"
    assert abs(ratio - 0.25) < 1e-9, f"wrong ratio {ratio}"
    assert (b_cps, c_cps) == (800_000.0, 200_000.0)

    # Cells missing from the baseline never count.
    assert worst_cell_regression(_doc(1.0, []), cur) is None

    # Zero-throughput baseline cells are skipped rather than divided by.
    zero_base = _doc(1_000_000.0, [("1pV", "swim", 0.0), ("1pV", "applu", 100.0)])
    worst = worst_cell_regression(zero_base, cur)
    assert worst is not None and worst[1:3] == ("1pV", "applu")

    # End-to-end: the aggregate gate itself, via temp files.
    import contextlib
    import io
    import os
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        b_path = os.path.join(tmp, "base.json")
        c_path = os.path.join(tmp, "cur.json")
        with open(b_path, "w", encoding="utf-8") as f:
            json.dump(base, f)
        with open(c_path, "w", encoding="utf-8") as f:
            json.dump(cur, f)
        assert run_gate([b_path], c_path, max_regress=0.20) == 1, "0.7x must fail the 20% gate"
        assert run_gate([b_path], c_path, max_regress=0.50) == 0, "0.7x passes a 50% gate"

        # Missing or malformed baselines fail with a diagnostic that names
        # the offending file (exit 2), never a Python traceback.
        def expect_named_rejection(path):
            err = io.StringIO()
            with contextlib.redirect_stderr(err):
                try:
                    load(path)
                except SystemExit as e:
                    assert e.code == 2, f"load({path}) exited {e.code}, not 2"
                else:
                    raise AssertionError(f"load({path}) accepted a bad file")
            text = err.getvalue()
            assert os.path.basename(path) in text, f"diagnostic does not name the file: {text}"

        expect_named_rejection(os.path.join(tmp, "BENCH_missing.json"))

        bad_cases = {
            "BENCH_garbage.json": "{this is not json",
            "BENCH_not_object.json": "[1, 2, 3]",
            "BENCH_wrong_schema.json": json.dumps({"schema": "something-else/9"}),
            "BENCH_no_cps.json": json.dumps({"schema": "sdv-engine-timing/1", "cells": 1}),
            "BENCH_cps_not_number.json": json.dumps(
                {"schema": "sdv-engine-timing/1", "cells": 1, "cycles_per_second": "fast"}
            ),
            "BENCH_bad_cell.json": json.dumps(
                {
                    "schema": "sdv-engine-timing/1",
                    "cells": 1,
                    "cycles_per_second": 1.0,
                    "per_cell": [{"workload": "swim"}],
                }
            ),
        }
        for name, body in bad_cases.items():
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as f:
                f.write(body)
            expect_named_rejection(path)

        # ---- stall-bucket deltas (--metrics) -------------------------------
        def _metrics_doc(buckets):
            return {
                "schema": "sdv-obs-metrics/1",
                "counters": {f"pipeline.cycles.{k}": v for k, v in buckets.items()},
                "gauges": {},
                "histograms": {},
            }

        m_base = _metrics_doc({"committing": 800, "fetch_blocked": 200})
        m_cur = _metrics_doc({"committing": 800, "fetch_blocked": 1200})
        mb_path = os.path.join(tmp, "metrics_base.json")
        mc_path = os.path.join(tmp, "metrics_cur.json")
        for path, doc in [(mb_path, m_base), (mc_path, m_cur)]:
            with open(path, "w", encoding="utf-8") as f:
                json.dump(doc, f)

        # Share arithmetic: fetch_blocked goes 20% -> 60% of attributed
        # cycles, and the report sorts it first (biggest growth on top).
        shares = dict(
            (name, share) for name, _, share in bucket_shares(m_cur["counters"])
        )
        assert abs(shares["fetch_blocked"] - 0.6) < 1e-9, shares
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            print_bucket_deltas(m_base["counters"], m_cur["counters"])
        lines = [l for l in err.getvalue().splitlines() if l.endswith("pp)")]
        assert "fetch_blocked" in lines[0], f"biggest growth first: {lines}"
        assert "+40.0pp" in lines[0], lines
        assert "committing" in lines[1] and "-40.0pp" in lines[1], lines

        # A gate failure with --metrics prints the bucket report on stderr.
        err = io.StringIO()
        with contextlib.redirect_stderr(err), contextlib.redirect_stdout(io.StringIO()):
            code = run_gate([b_path], c_path, max_regress=0.20, metrics=(mb_path, mc_path))
        assert code == 1
        assert "stall-bucket shares" in err.getvalue(), err.getvalue()

        # Malformed or wrong-schema metrics exit 2 with a named diagnostic,
        # even though the timing gate itself would have passed.
        bad_metrics = os.path.join(tmp, "METRICS_wrong_schema.json")
        with open(bad_metrics, "w", encoding="utf-8") as f:
            json.dump({"schema": "sdv-engine-timing/1", "counters": {}}, f)
        err = io.StringIO()
        with contextlib.redirect_stderr(err), contextlib.redirect_stdout(io.StringIO()):
            try:
                run_gate([b_path], c_path, max_regress=0.50, metrics=(bad_metrics, mc_path))
            except SystemExit as e:
                assert e.code == 2, f"exited {e.code}, not 2"
            else:
                raise AssertionError("wrong-schema metrics were accepted")
        assert "METRICS_wrong_schema.json" in err.getvalue(), err.getvalue()

        bad_counter = os.path.join(tmp, "METRICS_bad_counter.json")
        with open(bad_counter, "w", encoding="utf-8") as f:
            json.dump({"schema": "sdv-obs-metrics/1", "counters": {"x": "NaNish"}}, f)
        expect_named_rejection_metrics = bad_counter
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            try:
                load_metrics(expect_named_rejection_metrics)
            except SystemExit as e:
                assert e.code == 2
            else:
                raise AssertionError("non-numeric counter was accepted")
        assert "METRICS_bad_counter.json" in err.getvalue()

    print("timing_diff: self-check ok")
    return 0


def main(argv):
    args = []
    max_regress = 0.20
    metrics = None
    it = iter(argv[1:])
    for a in it:
        if a == "--max-regress":
            try:
                max_regress = float(next(it))
            except (StopIteration, ValueError):
                print("timing_diff: --max-regress needs a float", file=sys.stderr)
                return 2
        elif a == "--metrics":
            try:
                metrics = (next(it), next(it))
            except StopIteration:
                print(
                    "timing_diff: --metrics needs two paths (BASE CURRENT)",
                    file=sys.stderr,
                )
                return 2
        elif a == "--self-check":
            return self_check()
        elif a.startswith("--"):
            print(f"timing_diff: unknown flag {a}", file=sys.stderr)
            return 2
        else:
            args.append(a)
    if len(args) < 2:
        print(__doc__, file=sys.stderr)
        return 2

    return run_gate(args[:-1], args[-1], max_regress, metrics=metrics)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

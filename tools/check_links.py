#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Usage:
    check_links.py [FILE_OR_DIR ...]

With no arguments, checks every tracked-looking markdown file: `*.md` at the
repo root plus everything under `docs/`.  For each `[text](target)` link the
target must exist on disk, resolved relative to the file containing the link.
`http(s)://` and `mailto:` targets are skipped (CI must not depend on the
network); `#anchor` fragments are stripped before the existence check, and
pure-anchor links are skipped.

Exit codes: 0 all links resolve, 1 at least one broken link.
"""

import os
import re
import sys

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
SKIP = ("http://", "https://", "mailto:")


def files_to_check(argv):
    if argv:
        out = []
        for arg in argv:
            if os.path.isdir(arg):
                for root, _, names in os.walk(arg):
                    out.extend(os.path.join(root, n) for n in names if n.endswith(".md"))
            else:
                out.append(arg)
        return out
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    out = [
        os.path.join(root, n)
        for n in sorted(os.listdir(root))
        if n.endswith(".md")
    ]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for sub, _, names in os.walk(docs):
            out.extend(os.path.join(sub, n) for n in sorted(names) if n.endswith(".md"))
    return out


def main(argv):
    broken = 0
    checked = 0
    for path in files_to_check(argv):
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"check_links: cannot read {path}: {e}", file=sys.stderr)
            return 1
        base = os.path.dirname(path)
        for m in LINK.finditer(text):
            target = m.group(1)
            if target.startswith(SKIP) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            checked += 1
            if not os.path.exists(os.path.join(base, target)):
                line = text.count("\n", 0, m.start()) + 1
                print(f"check_links: {path}:{line}: broken link -> {m.group(1)}")
                broken += 1
    print(f"check_links: {checked} links checked, {broken} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

//! Umbrella crate for the *Speculative Dynamic Vectorization* reproduction
//! (Pajuelo, González, Valero — ISCA 2002).
//!
//! This crate simply re-exports the individual workspace crates so examples,
//! integration tests and downstream users can reach the whole stack through a
//! single dependency:
//!
//! * [`isa`] — the SDV instruction set and the embedded assembler.
//! * [`analyze`] — static analysis: CFG, dataflow, resource envelopes.
//! * [`emu`] — the functional emulator that produces dynamic instruction streams.
//! * [`mem`] — cache/memory-hierarchy timing models (scalar and wide buses).
//! * [`obs`] — observability: metrics registry, cycle-attribution ledger,
//!   Chrome-trace event tracer (see `docs/OBSERVABILITY.md`).
//! * [`predictor`] — branch prediction (gshare + BTB + RAS).
//! * [`core`] — the paper's contribution: the speculative dynamic
//!   vectorization engine (Table of Loads, VRMT, vector register file).
//! * [`uarch`] — the cycle-level out-of-order superscalar pipeline.
//! * [`workloads`] — synthetic SPEC95-analogue kernels.
//! * [`store`] — the sharded, mergeable, concurrency-safe result store.
//! * [`sim`] — experiment configurations, runners and figure generators.
//!
//! # Quickstart
//!
//! ```
//! use sdv::sim::{PortKind, ProcessorConfig};
//! use sdv::workloads::Workload;
//!
//! let program = Workload::Compress.build(1);
//! let cfg = ProcessorConfig::four_way(1, PortKind::Wide).with_vectorization(true);
//! let stats = sdv::sim::run_program(&cfg, &program, 50_000);
//! assert!(stats.ipc() > 0.0);
//! assert!(stats.committed_validations > 0);
//! ```

pub use sdv_analyze as analyze;
pub use sdv_core as core;
pub use sdv_emu as emu;
pub use sdv_isa as isa;
pub use sdv_mem as mem;
pub use sdv_obs as obs;
pub use sdv_predictor as predictor;
pub use sdv_sim as sim;
pub use sdv_store as store;
pub use sdv_uarch as uarch;
pub use sdv_workloads as workloads;

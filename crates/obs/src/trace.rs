//! Bounded ring-buffer event tracer emitting Chrome trace-event JSON.
//!
//! The output loads directly in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing`: a top-level object with a `traceEvents` array of
//! complete spans (`ph: "X"`, with `dur`) and instant events (`ph: "i"`),
//! timestamps in microseconds since the owning [`crate::Obs`] handle was
//! created.  The buffer is bounded: when full, the *oldest* event is dropped
//! and an exact drop counter increments, so a long headline run degrades to
//! "most recent window" rather than unbounded memory.

use crate::json_escape;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Default ring capacity (events), sized so a `--threads 2` headline run
/// fits comfortably.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// The Chrome trace-event phase of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete span with a duration (`ph: "X"`).
    Complete,
    /// A point-in-time event (`ph: "i"`, thread scope).
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span label).
    pub name: String,
    /// Category, used by trace viewers for filtering (`engine`, `store`…).
    pub cat: String,
    /// Phase: span or instant.
    pub ph: TracePhase,
    /// Start timestamp, microseconds since the trace epoch.
    pub ts_micros: u64,
    /// Duration in microseconds (spans only; 0 for instants).
    pub dur_micros: u64,
    /// Small stable thread id (see [`crate::current_tid`]).
    pub tid: u64,
    /// Free-form `args` key/value pairs shown in the viewer.
    pub args: Vec<(String, String)>,
}

impl TraceEvent {
    /// A complete span.
    #[must_use]
    pub fn complete(
        name: &str,
        cat: &str,
        ts_micros: u64,
        dur_micros: u64,
        tid: u64,
        args: &[(&str, String)],
    ) -> Self {
        Self {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: TracePhase::Complete,
            ts_micros,
            dur_micros,
            tid,
            args: args
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        }
    }

    /// An instant event.
    #[must_use]
    pub fn instant(
        name: &str,
        cat: &str,
        ts_micros: u64,
        tid: u64,
        args: &[(&str, String)],
    ) -> Self {
        Self {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: TracePhase::Instant,
            ts_micros,
            dur_micros: 0,
            tid,
            args: args
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        }
    }
}

/// The bounded ring buffer.
#[derive(Debug)]
pub struct EventTracer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl EventTracer {
    /// A tracer keeping at most `capacity` events (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Records `event`, dropping the oldest buffered event when full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Exact number of events dropped to the ring bound so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Serialises the buffer as a Chrome trace-event JSON document.
    ///
    /// All events share `pid` 1 (one trace = one repro session); the drop
    /// count is recorded in top-level metadata as `sdv.dropped_events`.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n");
        let _ = writeln!(out, "  \"sdv\": {{\"dropped_events\": {}}},", self.dropped);
        out.push_str("  \"traceEvents\": [");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let ph = match e.ph {
                TracePhase::Complete => "X",
                TracePhase::Instant => "i",
            };
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{ph}\", \
                 \"ts\": {}, ",
                json_escape(&e.name),
                json_escape(&e.cat),
                e.ts_micros
            );
            if e.ph == TracePhase::Complete {
                let _ = write!(out, "\"dur\": {}, ", e.dur_micros);
            } else {
                // Instant events need an explicit scope; thread is the most
                // useful default for per-worker markers.
                out.push_str("\"s\": \"t\", ");
            }
            let _ = write!(out, "\"pid\": 1, \"tid\": {}", e.tid);
            if !e.args.is_empty() {
                out.push_str(", \"args\": {");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\": \"{}\"", json_escape(k), json_escape(v));
                }
                out.push('}');
            }
            out.push('}');
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::instant(&format!("e{n}"), "test", n, 1, &[])
    }

    #[test]
    fn ring_drops_oldest_with_exact_counter() {
        let mut t = EventTracer::new(4);
        for n in 0..10 {
            t.record(ev(n));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let names: Vec<&str> = t.events().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["e6", "e7", "e8", "e9"]);
    }

    #[test]
    fn chrome_json_has_required_fields() {
        let mut t = EventTracer::new(8);
        t.record(TraceEvent::complete(
            "cell",
            "engine",
            100,
            250,
            3,
            &[("workload", "swim".into())],
        ));
        t.record(ev(1));
        let json = t.to_chrome_json();
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\", \"ts\": 100, \"dur\": 250, \"pid\": 1, \"tid\": 3"));
        assert!(json.contains("\"args\": {\"workload\": \"swim\"}"));
        assert!(json.contains("\"s\": \"t\""));
        assert!(json.contains("\"sdv\": {\"dropped_events\": 0}"));
        // The document must itself be valid JSON (our own parser checks).
        crate::parse_json(&json).expect("trace JSON parses");
    }

    #[test]
    fn empty_tracer_serialises_to_empty_array() {
        let json = EventTracer::new(1).to_chrome_json();
        assert!(json.contains("\"traceEvents\": []"));
        crate::parse_json(&json).expect("parses");
    }
}

//! The metrics registry: typed counters, gauges and fixed-bucket histograms
//! with stable string names.
//!
//! Names follow a `layer.noun.metric` dotted scheme (`pipeline.cycles.committing`,
//! `store.io.read.calls`, `engine.store.hit_rate`); see `docs/OBSERVABILITY.md`
//! for the full naming table.  Registries serialise to a hand-rolled,
//! versioned JSON document ([`METRICS_SCHEMA`]) in the same house style as
//! `Analysis::to_json` / `report::timing_json`, and parse back for the
//! `sdv-obs` CLI's `summarize`/`diff` commands.

use crate::json::{parse_json, Json};
use crate::json_escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag of the metrics JSON document.
pub const METRICS_SCHEMA: &str = "sdv-obs-metrics/1";

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`, and a final overflow bucket catches everything larger, so
/// `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// An empty histogram over `bounds` (must be non-empty and ascending).
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(!bounds.is_empty(), "histogram needs at least one bound");
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// The bucket upper edges.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (one more entry than [`Self::bounds`]: the overflow
    /// bucket is last).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum / self.total as f64
            }
        }
    }
}

/// The registry: three `BTreeMap`s (so iteration order — and therefore JSON
/// output — is deterministic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `n` to the counter `name` (created at zero on first use).
    pub fn add_counter(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets the gauge `name` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into histogram `name`, registering it with `bounds`
    /// on first use (later calls keep the original bounds).
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// The counter `name`, if recorded.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The gauge `name`, if recorded.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s value,
    /// histograms add bucket-wise when the bounds match (and are replaced by
    /// `other`'s otherwise).
    pub fn merge(&mut self, other: &Self) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.gauges {
            self.gauges.insert(name.clone(), v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) if mine.bounds == h.bounds => {
                    for (c, o) in mine.counts.iter_mut().zip(&h.counts) {
                        *c += o;
                    }
                    mine.total += h.total;
                    mine.sum += h.sum;
                }
                _ => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// The change from `base` to `self`: counters subtract (saturating, over
    /// the union of names), gauges subtract, histograms subtract bucket-wise
    /// when bounds match (and are kept as-is otherwise).
    #[must_use]
    pub fn diff(&self, base: &Self) -> Self {
        let mut out = Self::new();
        let names: std::collections::BTreeSet<&String> =
            self.counters.keys().chain(base.counters.keys()).collect();
        for name in names {
            let cur = self.counters.get(name).copied().unwrap_or(0);
            let old = base.counters.get(name).copied().unwrap_or(0);
            out.counters.insert(name.clone(), cur.saturating_sub(old));
        }
        for (name, &cur) in &self.gauges {
            let old = base.gauges.get(name).copied().unwrap_or(0.0);
            out.gauges.insert(name.clone(), cur - old);
        }
        for (name, h) in &self.histograms {
            let d = match base.histograms.get(name) {
                Some(b) if b.bounds == h.bounds => {
                    let mut d = h.clone();
                    for (c, o) in d.counts.iter_mut().zip(&b.counts) {
                        *c = c.saturating_sub(*o);
                    }
                    d.total = d.total.saturating_sub(b.total);
                    d.sum -= b.sum;
                    d
                }
                _ => h.clone(),
            };
            out.histograms.insert(name.clone(), d);
        }
        out
    }

    /// Serialises the registry as a versioned JSON document
    /// (`sdv-obs-metrics/1`), hand-rolled in the repo's house style.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{METRICS_SCHEMA}\",");
        out.push_str("  \"counters\": {");
        push_map(&mut out, self.counters.iter(), |v| v.to_string());
        out.push_str("},\n  \"gauges\": {");
        push_map(&mut out, self.gauges.iter(), |v| fmt_f64(*v));
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ =
                write!(
                out,
                "\n    \"{}\": {{\"bounds\": [{}], \"counts\": [{}], \"total\": {}, \"sum\": {}}}",
                json_escape(name),
                h.bounds.iter().map(|&b| fmt_f64(b)).collect::<Vec<_>>().join(", "),
                h.counts.iter().map(u64::to_string).collect::<Vec<_>>().join(", "),
                h.total,
                fmt_f64(h.sum)
            );
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a document produced by [`Self::to_json`].
    ///
    /// Returns a message containing the word `schema` when the document is
    /// valid JSON but carries the wrong schema tag (the CLI maps both
    /// malformed input and schema mismatch to exit code 2, with distinct
    /// messages).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = parse_json(text)?;
        let obj = doc.as_object().ok_or("top level is not an object")?;
        let schema = obj
            .iter()
            .find(|(k, _)| k == "schema")
            .and_then(|(_, v)| v.as_str())
            .ok_or("missing schema field")?;
        if schema != METRICS_SCHEMA {
            return Err(format!(
                "schema mismatch: expected {METRICS_SCHEMA}, found {schema}"
            ));
        }
        let mut out = Self::new();
        for (key, value) in obj {
            match key.as_str() {
                "counters" => {
                    for (name, v) in value.as_object().ok_or("counters is not an object")? {
                        let n = v.as_f64().ok_or("counter value is not a number")?;
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        out.counters.insert(name.clone(), n as u64);
                    }
                }
                "gauges" => {
                    for (name, v) in value.as_object().ok_or("gauges is not an object")? {
                        let n = v.as_f64().ok_or("gauge value is not a number")?;
                        out.gauges.insert(name.clone(), n);
                    }
                }
                "histograms" => {
                    for (name, v) in value.as_object().ok_or("histograms is not an object")? {
                        out.histograms.insert(name.clone(), parse_histogram(v)?);
                    }
                }
                _ => {}
            }
        }
        Ok(out)
    }
}

fn parse_histogram(v: &Json) -> Result<Histogram, String> {
    let obj = v.as_object().ok_or("histogram is not an object")?;
    let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let bounds: Vec<f64> = field("bounds")
        .and_then(Json::as_array)
        .ok_or("histogram missing bounds")?
        .iter()
        .map(|b| b.as_f64().ok_or("histogram bound is not a number"))
        .collect::<Result<_, _>>()?;
    let counts: Vec<u64> = field("counts")
        .and_then(Json::as_array)
        .ok_or("histogram missing counts")?
        .iter()
        .map(|c| {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            c.as_f64()
                .map(|n| n as u64)
                .ok_or("histogram count is not a number")
        })
        .collect::<Result<_, _>>()?;
    if counts.len() != bounds.len() + 1 {
        return Err("histogram counts/bounds length mismatch".to_string());
    }
    let total = field("total")
        .and_then(Json::as_f64)
        .ok_or("histogram missing total")?;
    let sum = field("sum")
        .and_then(Json::as_f64)
        .ok_or("histogram missing sum")?;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(Histogram {
        bounds,
        counts,
        total: total as u64,
        sum,
    })
}

/// Writes a `"name": value` map body with 4-space-indented rows.
fn push_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    fmt: impl Fn(&V) -> String,
) {
    let mut first = true;
    for (name, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", json_escape(name), fmt(value));
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Formats an `f64` as a valid JSON number (non-finite values clamp to 0).
#[must_use]
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a fraction; keep them valid and
        // unambiguous as floats.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.add_counter("pipeline.cycles.committing", 10);
        r.add_counter("pipeline.cycles.fetch_blocked", 4);
        r.set_gauge("engine.store.hit_rate", 0.75);
        r.observe("store.io.lock_wait_micros", &[100.0, 1000.0], 50.0);
        r.observe("store.io.lock_wait_micros", &[100.0, 1000.0], 5000.0);
        r
    }

    #[test]
    fn counters_accumulate_and_histograms_bucket() {
        let r = sample();
        assert_eq!(r.counter("pipeline.cycles.committing"), Some(10));
        let h = r.histogram("store.io.lock_wait_micros").unwrap();
        assert_eq!(h.counts(), &[1, 0, 1]);
        assert_eq!(h.total(), 2);
        assert!((h.mean() - 2525.0).abs() < 1e-9);
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = r.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"sdv-obs-metrics/1\","));
        let back = MetricsRegistry::from_json(&json).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_rejects_wrong_schema_with_schema_message() {
        let err =
            MetricsRegistry::from_json("{\"schema\": \"sdv-engine-timing/1\", \"counters\": {}}")
                .unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(MetricsRegistry::from_json("not json").is_err());
        assert!(MetricsRegistry::from_json("{\"counters\": {}}").is_err());
    }

    #[test]
    fn diff_subtracts_over_union_and_merge_adds() {
        let base = sample();
        let mut cur = sample();
        cur.add_counter("pipeline.cycles.committing", 5);
        cur.add_counter("new.counter", 7);
        let d = cur.diff(&base);
        assert_eq!(d.counter("pipeline.cycles.committing"), Some(5));
        assert_eq!(d.counter("new.counter"), Some(7));
        assert_eq!(d.counter("pipeline.cycles.fetch_blocked"), Some(0));

        let mut merged = sample();
        merged.merge(&sample());
        assert_eq!(merged.counter("pipeline.cycles.committing"), Some(20));
        assert_eq!(
            merged
                .histogram("store.io.lock_wait_micros")
                .unwrap()
                .total(),
            4
        );
    }

    #[test]
    fn empty_registry_serialises_cleanly() {
        let r = MetricsRegistry::new();
        assert!(r.is_empty());
        let back = MetricsRegistry::from_json(&r.to_json()).expect("parses");
        assert!(back.is_empty());
    }

    #[test]
    fn fmt_f64_is_valid_json() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(f64::NAN), "0.0");
    }
}

//! Cycle-attribution ledger: every simulated pipeline cycle lands in exactly
//! one bucket.
//!
//! The pipeline classifies each cycle of `run_bounded` as it retires (see
//! `Processor::attribute_cycle` in `sdv-uarch`), and macro-step jumps charge
//! the cycles they skip to [`CycleBucket::MacroStepJumped`] in bulk — this
//! folds the former `macro_step_telemetry` side channel into the same
//! substrate as every other stall count.  The taxonomy is *total* by
//! construction: classification runs first-match over the list below, and
//! [`CycleBucket::InFlightWait`] is the documented residual (in-flight
//! instructions are making forward progress — pipeline fill, cache-miss and
//! dependency latency — but nothing committed this cycle and no hazard
//! fired).  `tests/obs_properties.rs` proves exhaustiveness with a property
//! test asserting bucket-sum ≡ `RunStats::cycles` on random programs across
//! every stepping × busy-path combination.
//!
//! The ledger is deliberately *not* part of `RunStats`: results that persist
//! to the store and the bit-identity equivalence suites stay byte-stable
//! whether or not attribution is enabled.

/// Where a simulated cycle went.  Classification is first-match in the order
/// the variants are declared (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleBucket {
    /// At least one instruction committed this cycle.
    Committing,
    /// No commit, but the vector datapath had active instances in flight.
    VectorDatapathBusy,
    /// Issue masked the load queue because a load aliased an unresolved
    /// store (the paper's unknown-store stall).
    UnknownStoreMasked,
    /// Issue masked a queue on a structural hazard (all matching FUs busy,
    /// or loads parked waiting for a free memory port).
    IssueStructuralHazard,
    /// The emulator has drained: no fetch will ever arrive again and the
    /// pipeline is emptying.
    Drained,
    /// Fetch was stalled (I-cache miss latency or an unresolved
    /// control-flow redirect).
    FetchBlocked,
    /// Cycles skipped in bulk by a macro-step clock jump (the former
    /// `macro_step_telemetry` skipped-cycle count).
    MacroStepJumped,
    /// Residual: instructions in flight made forward progress (pipeline
    /// fill, data-cache miss or dependency latency) without commit or a
    /// recorded hazard.
    InFlightWait,
}

impl CycleBucket {
    /// Every bucket, in classification order.
    pub const ALL: [CycleBucket; 8] = [
        CycleBucket::Committing,
        CycleBucket::VectorDatapathBusy,
        CycleBucket::UnknownStoreMasked,
        CycleBucket::IssueStructuralHazard,
        CycleBucket::Drained,
        CycleBucket::FetchBlocked,
        CycleBucket::MacroStepJumped,
        CycleBucket::InFlightWait,
    ];

    /// The stable snake_case name used in metric keys
    /// (`pipeline.cycles.<name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CycleBucket::Committing => "committing",
            CycleBucket::VectorDatapathBusy => "vector_datapath_busy",
            CycleBucket::UnknownStoreMasked => "unknown_store_masked",
            CycleBucket::IssueStructuralHazard => "issue_structural_hazard",
            CycleBucket::Drained => "drained",
            CycleBucket::FetchBlocked => "fetch_blocked",
            CycleBucket::MacroStepJumped => "macro_step_jumped",
            CycleBucket::InFlightWait => "in_flight_wait",
        }
    }

    fn index(self) -> usize {
        match self {
            CycleBucket::Committing => 0,
            CycleBucket::VectorDatapathBusy => 1,
            CycleBucket::UnknownStoreMasked => 2,
            CycleBucket::IssueStructuralHazard => 3,
            CycleBucket::Drained => 4,
            CycleBucket::FetchBlocked => 5,
            CycleBucket::MacroStepJumped => 6,
            CycleBucket::InFlightWait => 7,
        }
    }
}

/// Per-bucket cycle counts for one simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleLedger {
    buckets: [u64; 8],
}

impl CycleLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one cycle to `bucket`.
    pub fn record(&mut self, bucket: CycleBucket) {
        self.buckets[bucket.index()] += 1;
    }

    /// Charges `n` cycles to `bucket` (macro-step jumps charge in bulk).
    pub fn record_many(&mut self, bucket: CycleBucket, n: u64) {
        self.buckets[bucket.index()] += n;
    }

    /// Cycles charged to `bucket`.
    #[must_use]
    pub fn get(&self, bucket: CycleBucket) -> u64 {
        self.buckets[bucket.index()]
    }

    /// Total cycles across all buckets.  The exhaustiveness invariant is
    /// `total() == RunStats::cycles` for any completed bounded run.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether nothing has been charged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// `(bucket, cycles)` pairs in classification order.
    pub fn iter(&self) -> impl Iterator<Item = (CycleBucket, u64)> + '_ {
        CycleBucket::ALL.iter().map(|&b| (b, self.get(b)))
    }

    /// Adds another ledger's counts (merging cells of an engine run).
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Exports the ledger into `registry` as `<prefix>.<bucket>` counters.
    pub fn export_to(&self, registry: &mut crate::MetricsRegistry, prefix: &str) {
        for (bucket, cycles) in self.iter() {
            registry.add_counter(&format!("{prefix}.{}", bucket.name()), cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bucket_has_a_distinct_name_and_slot() {
        let mut names: Vec<&str> = CycleBucket::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CycleBucket::ALL.len());
        let mut slots: Vec<usize> = CycleBucket::ALL.iter().map(|b| b.index()).collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..CycleBucket::ALL.len()).collect::<Vec<_>>());
    }

    #[test]
    fn totals_merge_and_export() {
        let mut a = CycleLedger::new();
        a.record(CycleBucket::Committing);
        a.record_many(CycleBucket::MacroStepJumped, 41);
        let mut b = CycleLedger::new();
        b.record(CycleBucket::FetchBlocked);
        a.merge(&b);
        assert_eq!(a.total(), 43);
        assert_eq!(a.get(CycleBucket::MacroStepJumped), 41);

        let mut reg = crate::MetricsRegistry::new();
        a.export_to(&mut reg, "pipeline.cycles");
        assert_eq!(reg.counter("pipeline.cycles.macro_step_jumped"), Some(41));
        assert_eq!(reg.counter("pipeline.cycles.in_flight_wait"), Some(0));
    }
}

//! A minimal recursive-descent JSON parser for the `sdv-obs` CLI.
//!
//! The workspace is dependency-free, so reading back the documents this crate
//! writes (`summarize`, `diff`) needs an in-tree parser.  It accepts exactly
//! standard JSON (RFC 8259) minus one liberty: numbers are parsed with Rust's
//! `f64` parser, which also accepts a few spellings JSON forbids (`1.`,
//! `+1`).  Object keys keep their document order.

/// A parsed JSON value.  Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object (ordered key/value pairs), if it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("malformed JSON at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // documents; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 character, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            parse_json("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
        let doc = parse_json("{\"a\": [1, 2], \"b\": {\"c\": \"d\"}}").unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn preserves_key_order_and_unicode() {
        let doc = parse_json("{\"z\": 1, \"a\": 2, \"é\": \"\\u00e9\"}").unwrap();
        let keys: Vec<&str> = doc
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "é"]);
        assert_eq!(doc.get("é").unwrap().as_str(), Some("é"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"open"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }
}

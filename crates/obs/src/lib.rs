//! Unified observability for the SDV stack: metrics, cycle attribution and
//! event tracing.
//!
//! Nine PRs in, telemetry had grown scattered: `macro_step_telemetry` lived
//! outside `RunStats`, `EngineTiming` only covered wall-clock, and the
//! supervision events (persist retries, store degradation, repairs) were
//! one-shot `eprintln!` warnings.  This crate is the single substrate the
//! pipeline, engine and store all report into:
//!
//! * [`MetricsRegistry`] — typed counters, gauges and fixed-bucket histograms
//!   with stable string names, snapshot/diff/merge, and a hand-rolled
//!   versioned JSON encoding (`sdv-obs-metrics/1`).
//! * [`CycleLedger`] — cycle attribution for the pipeline: every simulated
//!   cycle lands in exactly one [`CycleBucket`], and a property test proves
//!   the bucket-sum equals the `RunStats` cycle total on random programs
//!   (`tests/obs_properties.rs`).
//! * [`EventTracer`] — a bounded ring buffer of trace events emitting Chrome
//!   trace-event JSON, loadable in Perfetto or `chrome://tracing`.
//!
//! Everything hangs off an [`Obs`] handle gated by a runtime [`ObsLevel`].
//! At [`ObsLevel::Off`] every recording call is a single enum compare and an
//! early return — cheap enough to leave in release hot paths.
//!
//! The crate is deliberately dependency-free (`std` only) so every other
//! workspace crate can instrument itself without widening its dependency
//! cone.  See `docs/OBSERVABILITY.md` for the naming scheme, the bucket
//! taxonomy and the trace schema.

mod json;
mod ledger;
mod registry;
mod trace;

pub use json::{parse_json, Json};
pub use ledger::{CycleBucket, CycleLedger};
pub use registry::{Histogram, MetricsRegistry, METRICS_SCHEMA};
pub use trace::{EventTracer, TraceEvent, TracePhase, DEFAULT_TRACE_CAPACITY};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How much the stack records at runtime.
///
/// The levels are ordered: `Trace` implies `Metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ObsLevel {
    /// Record nothing.  Every recording call reduces to one enum compare.
    #[default]
    Off,
    /// Record counters, gauges, histograms and the cycle ledger.
    Metrics,
    /// Additionally record ring-buffered trace events.
    Trace,
}

impl ObsLevel {
    /// Whether metrics (and the cycle ledger) are recorded at this level.
    #[must_use]
    pub fn metrics_enabled(self) -> bool {
        self >= ObsLevel::Metrics
    }

    /// Whether trace events are recorded at this level.
    #[must_use]
    pub fn trace_enabled(self) -> bool {
        self == ObsLevel::Trace
    }
}

/// A stable small integer identifying the calling thread in trace output.
///
/// Chrome trace events carry an integer `tid`; OS thread ids are neither
/// small nor stable across runs, so threads are numbered in first-use order.
#[must_use]
pub fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// The shared observability handle: one per engine session.
///
/// Thread-safe; recording methods take `&self` and are no-ops below the
/// required [`ObsLevel`].  Share it across threads with `Arc<Obs>`.
#[derive(Debug)]
pub struct Obs {
    level: ObsLevel,
    epoch: Instant,
    registry: Mutex<MetricsRegistry>,
    tracer: Mutex<EventTracer>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new(ObsLevel::Off)
    }
}

impl Obs {
    /// Creates a handle at `level` with the default trace capacity.
    #[must_use]
    pub fn new(level: ObsLevel) -> Self {
        Self::with_trace_capacity(level, DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a handle at `level` whose tracer keeps at most `capacity`
    /// events (oldest dropped first).
    #[must_use]
    pub fn with_trace_capacity(level: ObsLevel, capacity: usize) -> Self {
        Self {
            level,
            epoch: Instant::now(),
            registry: Mutex::new(MetricsRegistry::new()),
            tracer: Mutex::new(EventTracer::new(capacity)),
        }
    }

    /// The configured level.
    #[must_use]
    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// Whether metrics are recorded.
    #[must_use]
    pub fn metrics_enabled(&self) -> bool {
        self.level.metrics_enabled()
    }

    /// Whether trace events are recorded.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.level.trace_enabled()
    }

    /// Microseconds since this handle was created (the trace time base).
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Adds `n` to the counter `name`.  No-op below `Metrics`.
    pub fn counter(&self, name: &str, n: u64) {
        if self.metrics_enabled() {
            self.registry.lock().unwrap().add_counter(name, n);
        }
    }

    /// Sets the gauge `name` to `value`.  No-op below `Metrics`.
    pub fn gauge(&self, name: &str, value: f64) {
        if self.metrics_enabled() {
            self.registry.lock().unwrap().set_gauge(name, value);
        }
    }

    /// Records `value` into the histogram `name` with `bounds` (registered on
    /// first use).  No-op below `Metrics`.
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        if self.metrics_enabled() {
            self.registry.lock().unwrap().observe(name, bounds, value);
        }
    }

    /// Runs `f` against the registry.  No-op below `Metrics`; use this to
    /// batch many updates under one lock acquisition.
    pub fn with_registry(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        if self.metrics_enabled() {
            f(&mut self.registry.lock().unwrap());
        }
    }

    /// Records a completed span (`ph: "X"`).  No-op below `Trace`.
    pub fn span(&self, name: &str, cat: &str, start_micros: u64, args: &[(&str, String)]) {
        if self.trace_enabled() {
            let end = self.now_micros();
            self.tracer.lock().unwrap().record(TraceEvent::complete(
                name,
                cat,
                start_micros,
                end.saturating_sub(start_micros),
                current_tid(),
                args,
            ));
        }
    }

    /// Records an instant event (`ph: "i"`).  No-op below `Trace`.
    pub fn instant(&self, name: &str, cat: &str, args: &[(&str, String)]) {
        if self.trace_enabled() {
            let ts = self.now_micros();
            self.tracer.lock().unwrap().record(TraceEvent::instant(
                name,
                cat,
                ts,
                current_tid(),
                args,
            ));
        }
    }

    /// A point-in-time copy of the registry.
    #[must_use]
    pub fn snapshot(&self) -> MetricsRegistry {
        self.registry.lock().unwrap().clone()
    }

    /// Number of trace events discarded because the ring buffer was full.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.tracer.lock().unwrap().dropped()
    }

    /// The Chrome trace-event JSON document for everything recorded so far.
    #[must_use]
    pub fn trace_json(&self) -> String {
        self.tracer.lock().unwrap().to_chrome_json()
    }
}

/// Escapes `s` for embedding in a JSON string literal (house style shared
/// with `sdv_sim::report`).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(!ObsLevel::Off.metrics_enabled());
        assert!(!ObsLevel::Off.trace_enabled());
        assert!(ObsLevel::Metrics.metrics_enabled());
        assert!(!ObsLevel::Metrics.trace_enabled());
        assert!(ObsLevel::Trace.metrics_enabled());
        assert!(ObsLevel::Trace.trace_enabled());
    }

    #[test]
    fn off_records_nothing() {
        let obs = Obs::new(ObsLevel::Off);
        obs.counter("a", 1);
        obs.gauge("b", 2.0);
        obs.observe("c", &[1.0], 0.5);
        obs.instant("e", "test", &[]);
        let snap = obs.snapshot();
        assert!(snap.is_empty());
        assert_eq!(obs.dropped_events(), 0);
        assert_eq!(obs.trace_json(), EventTracer::new(4).to_chrome_json());
    }

    #[test]
    fn metrics_level_records_metrics_not_traces() {
        let obs = Obs::new(ObsLevel::Metrics);
        obs.counter("hits", 3);
        obs.counter("hits", 2);
        obs.instant("should-not-appear", "test", &[]);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("hits"), Some(5));
        assert!(!obs.trace_json().contains("should-not-appear"));
    }

    #[test]
    fn trace_level_records_spans() {
        let obs = Obs::new(ObsLevel::Trace);
        let t0 = obs.now_micros();
        obs.span("cell", "engine", t0, &[("workload", "compress".into())]);
        obs.instant("retry", "store", &[]);
        let json = obs.trace_json();
        assert!(json.contains("\"name\": \"cell\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"workload\": \"compress\""));
    }

    #[test]
    fn tids_are_small_and_stable() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

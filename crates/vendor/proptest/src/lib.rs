//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the real proptest cannot be fetched.  This crate implements
//! the subset of proptest's API that the `sdv` integration tests use — the
//! [`proptest!`] macro with `arg in strategy` bindings and
//! `#![proptest_config(..)]`, range/tuple/`Just`/`prop_oneof!`/
//! `collection::vec` strategies, `Strategy::prop_map`, `any::<T>()` and
//! the `prop_assert*` macros — with compatible shapes, so the test sources
//! compile unchanged and can later be pointed back at the real crate by
//! editing one `[workspace.dependencies]` line.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (fully deterministic, no `PROPTEST_*` env handling) and
//! failing cases are reported but not shrunk.

pub mod test_runner {
    use std::fmt;

    /// Mirror of `proptest::test_runner::Config` (re-exported by the prelude
    /// as `ProptestConfig`).  Only `cases` is honoured; the remaining fields
    /// exist so `..ProptestConfig::default()` functional update syntax works.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
        /// Accepted for compatibility; the shim never rejects inputs.
        pub max_local_rejects: u32,
        /// Accepted for compatibility; the shim never rejects inputs.
        pub max_global_rejects: u32,
        /// Accepted for compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_local_rejects: 65_536,
                max_global_rejects: 1024,
                max_shrink_iters: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases, like `ProptestConfig::with_cases`.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// A failed property observation produced by the `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic SplitMix64 stream, seeded per test from the test path.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream seeded from an arbitrary label (the test path).
        #[must_use]
        pub fn for_test(label: &str) -> Self {
            // FNV-1a over the label, folded into a fixed golden seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in label.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: hash ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Mirror of `proptest::strategy::Strategy`: something that can produce
    /// values of an associated type.  The shim generates directly from an RNG
    /// instead of building value trees, and does not shrink.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of `Strategy::prop_map`.
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over the given non-empty list of alternatives.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Self(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + offset) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (*self.start() as i128 + offset) as $ty
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + frac * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Produces any value of `T` ([`any`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Mirror of `proptest::arbitrary::any::<T>()`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Produces an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),+) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`: a vector whose length is drawn
    /// from `size` and whose elements come from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Mirror of `proptest::proptest!`.  Each `fn name(arg in strategy, ..)` item
/// becomes a `#[test]` function running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!(
                        "proptest: case {}/{} of `{}` failed: {}\ninputs:{}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        error,
                        concat!($(" ", stringify!($arg in $strategy), ";"),*),
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Mirror of `proptest::prop_oneof!` (unweighted form): uniform choice among
/// the alternatives, which must share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alternative:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($alternative)),+
        ])
    };
}

/// Mirror of `proptest::prop_assert!`: on failure returns a
/// [`test_runner::TestCaseError`] from the enclosing property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), left, right
        );
    }};
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let s = (-64i64..64).generate(&mut rng);
            assert!((-64..64).contains(&s));
            let inclusive = (1u8..=4).generate(&mut rng);
            assert!((1..=4).contains(&inclusive));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen_all = || {
            let mut rng = TestRng::for_test("determinism");
            let strat = crate::collection::vec((0u64..100, any::<i8>()), 3..9);
            (0..16)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_all(), gen_all());
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let strat = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro itself: bindings, config, and prop_assert all work.
        #[test]
        fn macro_smoke(
            values in crate::collection::vec(0u64..50, 1..10),
            flag in any::<bool>(),
        ) {
            prop_assert!(values.len() < 10);
            prop_assert!(values.iter().all(|&v| v < 50));
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(values.len(), 0);
        }
    }
}

//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the real criterion cannot be fetched.  This crate implements
//! the subset of criterion's API that the `sdv-bench` benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::from_parameter`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with the same shapes, so the bench sources
//! compile unchanged and can later be pointed back at the real crate by
//! editing one `[workspace.dependencies]` line.
//!
//! Measurement model: each benchmark target runs a short warm-up, then
//! `sample_size` timed samples, and reports min/mean/max wall-clock time per
//! iteration.  `--test` (criterion's smoke mode, what `cargo bench -- --test`
//! passes) runs every target exactly once and reports pass/fail, which is the
//! mode CI uses to keep the figure benches from bit-rotting.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-exported measurement marker so `Criterion<WallTime>`-style signatures
/// could be written if ever needed.
pub mod measurement {
    /// Wall-clock time measurement (the only measurement this shim supports).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Prevents the optimiser from deleting a computation whose result is unused.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How a bench executable was asked to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (default for `cargo bench`).
    Measure,
    /// Smoke mode: run each target once, no statistics (`--test`).
    Test,
    /// Compile-only/list modes where targets must not run (`--list`).
    List,
}

fn mode_from_args() -> Mode {
    let mut mode = Mode::Measure;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            // `cargo bench` passes `--bench` to harness=false executables.
            "--bench" => {}
            "--test" => mode = Mode::Test,
            "--list" => mode = Mode::List,
            _ => {} // filters and unknown criterion flags are ignored
        }
    }
    mode
}

/// The benchmark manager; the entry point mirror of `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_iters: u64,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_iters: 1,
            mode: mode_from_args(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time. Accepted for API compatibility; the shim
    /// keys sample counts off [`Criterion::sample_size`] only.
    #[must_use]
    pub fn measurement_time(self, _dur: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility (the shim always reads `std::env::args`).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.mode = mode_from_args();
        self
    }

    /// Runs a single named benchmark target.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_target(id, self.mode, self.sample_size, self.warm_up_iters, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            warm_up_iters: self.warm_up_iters,
            mode: self.mode,
            _parent: std::marker::PhantomData,
        }
    }

    /// Called by [`criterion_main!`] after all groups ran.
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_iters: u64,
    mode: Mode,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    // By-value `id` mirrors crates.io criterion's signature; callers must
    // keep compiling unchanged against either implementation.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_target(
            &full,
            self.mode,
            self.sample_size,
            self.warm_up_iters,
            &mut |b| f(b, input),
        );
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_target(
            &full,
            self.mode,
            self.sample_size,
            self.warm_up_iters,
            &mut f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id built from a benchmark name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// An id consisting of the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Passed to the benchmark closure; `iter` does the actual timing.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    warm_up_iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times the routine; in `--test` mode runs it exactly once.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::List => {}
            Mode::Test => {
                black_box(routine());
            }
            Mode::Measure => {
                for _ in 0..self.warm_up_iters {
                    black_box(routine());
                }
                self.samples.reserve(self.sample_size);
                for _ in 0..self.sample_size {
                    let start = Instant::now();
                    black_box(routine());
                    self.samples.push(start.elapsed());
                }
            }
        }
    }
}

fn run_target<F>(id: &str, mode: Mode, sample_size: usize, warm_up_iters: u64, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    match mode {
        Mode::List => {
            println!("{id}: benchmark");
            return;
        }
        Mode::Test => print!("Testing {id} ... "),
        Mode::Measure => print!("Benchmarking {id} ... "),
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let mut bencher = Bencher {
        mode,
        sample_size,
        warm_up_iters,
        samples: Vec::new(),
    };
    f(&mut bencher);

    match mode {
        Mode::List => {}
        Mode::Test => println!("ok"),
        Mode::Measure => {
            if bencher.samples.is_empty() {
                println!("no samples recorded");
            } else {
                let n = bencher.samples.len() as u32;
                let total: Duration = bencher.samples.iter().sum();
                let mean = total / n;
                let min = bencher.samples.iter().min().copied().unwrap_or_default();
                let max = bencher.samples.iter().max().copied().unwrap_or_default();
                println!("time: [{min:?} {mean:?} {max:?}]  ({n} samples)");
            }
        }
    }
}

/// Mirrors `criterion::criterion_group!`: both the positional and the
/// `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up_iters: 1,
            mode: Mode::Measure,
        };
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 50,
            warm_up_iters: 5,
            mode: Mode::Test,
        };
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = Criterion {
            sample_size: 1,
            warm_up_iters: 0,
            mode: Mode::Test,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut seen = Vec::new();
        for v in [1u32, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, &v| {
                b.iter(|| seen.push(v));
            });
        }
        group.finish();
        assert_eq!(seen, vec![1, 2]);
    }
}

//! Shared plumbing for the benchmark harness.
//!
//! The Criterion benches (one per figure of the paper) and the `repro` binary
//! both go through this crate: the benches measure how long regenerating a
//! figure takes on a reduced workload set, while `repro` prints the actual
//! rows/series so they can be compared against the paper (see
//! `EXPERIMENTS.md`).

use sdv_sim::{Experiment, RunConfig, Workload};

/// The workload subset used by the Criterion benches.
///
/// Using a representative subset (two integer benchmarks, one FP benchmark)
/// keeps `cargo bench` fast while still exercising every code path; the
/// `repro` binary always uses the full suite.
#[must_use]
pub fn bench_workloads() -> Vec<Workload> {
    vec![Workload::Compress, Workload::Vortex, Workload::Swim]
}

/// The run budget used by the Criterion benches.
#[must_use]
pub fn bench_run_config() -> RunConfig {
    RunConfig {
        scale: 1,
        max_insts: 15_000,
    }
}

/// A fresh serial experiment over the bench workloads and budget.
///
/// Benches create one per measured iteration: the engine memoizes cells for
/// its whole lifetime, so reusing an experiment across iterations would time
/// cache hits instead of simulations.
#[must_use]
pub fn bench_experiment() -> Experiment {
    Experiment::new(bench_run_config()).workloads(bench_workloads())
}

/// The run budget used by the `repro` binary (unless overridden on the
/// command line).
#[must_use]
pub fn repro_run_config() -> RunConfig {
    RunConfig::standard()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_setup_is_small_but_mixed() {
        let ws = bench_workloads();
        assert!(ws.len() >= 3);
        assert!(ws.iter().any(|w| w.is_fp()));
        assert!(ws.iter().any(|w| !w.is_fp()));
        assert!(bench_run_config().max_insts < repro_run_config().max_insts);
        let exp = bench_experiment();
        assert_eq!(exp.workload_list(), bench_workloads());
        assert_eq!(exp.engine().run_config(), &bench_run_config());
    }
}

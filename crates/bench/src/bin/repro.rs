//! Regenerates the paper's tables and figures and prints them as text.
//!
//! ```text
//! repro [--quick|--standard|--thorough] [--threads N]
//!       [--table1] [--fig N]... [--headline] [--all] [--extended]
//!       [--vl L1,L2,...] [--vregs R1,R2,...]
//!       [--csv PATH] [--metrics-json PATH] [--trace PATH]
//!       [--timing-json PATH] [--store-dir DIR | --no-cache]
//!       [--fail-fast] [--max-retries N]
//! ```
//!
//! With no selection arguments everything is regenerated.  All generators
//! share one [`sdv_sim::Experiment`] session, so overlapping cells (the
//! headline configurations reappear in Figures 11/12, Figure 13 reuses the
//! Figure 10 suite, …) are simulated exactly once; the final lines report how
//! many unique cells ran versus how many were served from the session cache,
//! plus the wall-clock/cycles-per-second accounting of the run.
//! `--threads N` spreads the unique cells of each batch across N worker
//! threads without changing any result.
//!
//! Results additionally persist across invocations: the session's
//! `CellKey → RunStats` results are merged into a sharded result store under
//! `target/sdv-store/` (override with `--store-dir`; `--cache-dir` is the
//! pre-store alias; disable with `--no-cache`), so re-running `repro` with an
//! unchanged configuration serves every cell from disk, and parallel jobs can
//! safely share one store directory (see the `sdv-store` tool for `merge`,
//! `verify`, `gc` and `stats`).  `--vl`/`--vregs` add DV-sizing axes
//! (vector length in elements, vector-register count) to the Figure 11/12
//! sweep grid, `--csv PATH` dumps the resulting sweep surface for plotting,
//! and `--extended` adds the post-paper workloads (linked-list chase,
//! blocked matmul, mixed-stride streams, irregular histogram updates) to
//! every generator.
//!
//! The run is *supervised*: a cell that panics or exceeds its cycle budget is
//! recorded as failed while every other cell still completes, the failures
//! are summarised at the end, and the exit code is 1 exactly when cells
//! failed (`--fail-fast` instead stops at the first generator with a failed
//! cell).  Store I/O is retried with backoff (`--max-retries N`, default 2);
//! an unusable `--store-dir` degrades to in-memory caching with a warning
//! rather than aborting the sweep.
//!
//! Observability (`docs/OBSERVABILITY.md`): `--metrics-json PATH` collects
//! the unified metrics registry — cycle-attribution buckets, cache and store
//! instrumentation, engine counters and wall-clock accounting — as one
//! `sdv-obs-metrics/1` document (inspect with `sdv-obs summarize`, compare
//! runs with `sdv-obs diff`).  `--trace PATH` additionally records
//! Chrome-trace events (per-cell spans, store I/O waits, retry/degradation
//! markers) loadable in Perfetto or `chrome://tracing`.  Either flag ends the
//! run with a one-line observability summary on stderr.  `--timing-json PATH`
//! (deprecated) still writes the pre-obs `sdv-engine-timing/1` document;
//! every field it carries also appears in `--metrics-json` under
//! `engine.timing.*` / `engine.cell.*`.
//!
//! The output rows mirror the series plotted in the paper; `EXPERIMENTS.md`
//! records a paper-vs-measured comparison produced with `--standard`.

use sdv_sim::{
    report, Experiment, Fig11, Fig12, ObsLevel, PortKind, RunConfig, SweepGrid, Table1, Workload,
};

#[derive(Debug)]
struct Options {
    run: RunConfig,
    threads: usize,
    table1: bool,
    figures: Vec<u32>,
    headline: bool,
    extended: bool,
    vector_lengths: Option<Vec<usize>>,
    vector_registers: Option<Vec<usize>>,
    csv: Option<std::path::PathBuf>,
    metrics_json: Option<std::path::PathBuf>,
    trace: Option<std::path::PathBuf>,
    timing_json: Option<std::path::PathBuf>,
    cache_dir: Option<std::path::PathBuf>,
    no_cache: bool,
    fail_fast: bool,
    max_retries: Option<u32>,
}

/// Parses a `--vl`/`--vregs` style comma-separated list of positive sizes.
fn parse_sizes(flag: &str, value: Option<String>) -> Vec<usize> {
    let value = value.unwrap_or_else(|| panic!("{flag} requires a comma-separated list"));
    let sizes: Vec<usize> = value
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or_else(|| panic!("{flag}: `{v}` is not a positive integer"))
        })
        .collect();
    assert!(!sizes.is_empty(), "{flag} requires at least one value");
    sizes
}

fn parse_args() -> Options {
    let mut opts = Options {
        run: sdv_bench::repro_run_config(),
        threads: 1,
        table1: false,
        figures: Vec::new(),
        headline: false,
        extended: false,
        vector_lengths: None,
        vector_registers: None,
        csv: None,
        metrics_json: None,
        trace: None,
        timing_json: None,
        cache_dir: None,
        no_cache: false,
        fail_fast: false,
        max_retries: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    let mut any_selection = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.run = RunConfig::quick(),
            "--standard" => opts.run = RunConfig::standard(),
            "--thorough" => opts.run = RunConfig::thorough(),
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| panic!("--threads requires a positive integer"));
            }
            "--table1" => {
                opts.table1 = true;
                any_selection = true;
            }
            "--headline" => {
                opts.headline = true;
                any_selection = true;
            }
            "--fig" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--fig requires a figure number"));
                opts.figures.push(n);
                any_selection = true;
            }
            "--all" => any_selection = false,
            "--extended" => opts.extended = true,
            "--vl" => opts.vector_lengths = Some(parse_sizes("--vl", args.next())),
            "--vregs" => opts.vector_registers = Some(parse_sizes("--vregs", args.next())),
            "--csv" => {
                let path = args
                    .next()
                    .unwrap_or_else(|| panic!("--csv requires a path"));
                opts.csv = Some(path.into());
            }
            "--metrics-json" => {
                let path = args
                    .next()
                    .unwrap_or_else(|| panic!("--metrics-json requires a path"));
                opts.metrics_json = Some(path.into());
            }
            "--trace" => {
                let path = args
                    .next()
                    .unwrap_or_else(|| panic!("--trace requires a path"));
                opts.trace = Some(path.into());
            }
            // Deprecated: superseded by --metrics-json (every timing field
            // appears there under engine.timing.* / engine.cell.*).  Kept as
            // a working alias for existing tooling.
            "--timing-json" => {
                let path = args
                    .next()
                    .unwrap_or_else(|| panic!("--timing-json requires a path"));
                opts.timing_json = Some(path.into());
            }
            // `--cache-dir` is the pre-store spelling; both point the engine
            // at the same sharded store directory.
            "--store-dir" | "--cache-dir" => {
                let dir = args
                    .next()
                    .unwrap_or_else(|| panic!("{arg} requires a directory"));
                opts.cache_dir = Some(dir.into());
            }
            "--no-cache" => opts.no_cache = true,
            "--fail-fast" => opts.fail_fast = true,
            "--max-retries" => {
                opts.max_retries =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        panic!("--max-retries requires a non-negative integer")
                    }));
            }
            other => {
                panic!(
                    "unknown argument `{other}` \
                     (try --all, --fig N, --table1, --headline, --threads N, \
                      --extended, --vl L1,L2, --vregs R1,R2, --csv PATH, \
                      --metrics-json PATH, --trace PATH, --timing-json PATH, \
                      --store-dir DIR, --no-cache, \
                      --fail-fast, --max-retries N)"
                )
            }
        }
    }
    if !any_selection {
        opts.table1 = true;
        opts.headline = true;
        opts.figures = vec![1, 3, 7, 9, 10, 11, 12, 13, 14, 15];
    }
    opts
}

/// Prints the per-cell failure details, if any; returns whether there were
/// failures.
fn report_failures(exp: &Experiment) -> bool {
    let failures = exp.failures();
    if failures.is_empty() {
        return false;
    }
    eprintln!("repro: {} cell(s) FAILED this run:", failures.len());
    for failure in &failures {
        eprintln!("repro:   {failure}");
    }
    true
}

/// Under `--fail-fast`, stops the run at the first generator that produced a
/// failed cell (the default is to finish the sweep and report at the end).
fn check_fail_fast(exp: &Experiment, fail_fast: bool) {
    if fail_fast && exp.report().failed_cells > 0 {
        report_failures(exp);
        eprintln!("repro: --fail-fast: stopping at the first failed cell");
        std::process::exit(1);
    }
}

/// The observability level implied by the requested outputs: tracing when a
/// trace is wanted, metrics when only the registry is, otherwise `Off`
/// (branch-cheap — the perf-gated default).
fn obs_level(opts: &Options) -> ObsLevel {
    if opts.trace.is_some() {
        ObsLevel::Trace
    } else if opts.metrics_json.is_some() {
        ObsLevel::Metrics
    } else {
        ObsLevel::Off
    }
}

fn main() {
    let opts = parse_args();
    let rc = opts.run;
    let mut exp = Experiment::new(rc).threads(opts.threads);
    // Before disk_cache, so the store is born observed (either order works;
    // this one observes the legacy-import I/O too).
    exp = exp.obs(obs_level(&opts));
    if opts.extended {
        exp = exp.workloads(Workload::extended().to_vec());
    }
    if let Some(retries) = opts.max_retries {
        exp = exp.max_retries(retries);
    }
    if !opts.no_cache {
        let defaulted = opts.cache_dir.is_none();
        let dir = opts
            .cache_dir
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("target/sdv-store"));
        exp = exp.disk_cache(dir);
        // Pre-store repro versions kept their default cache at
        // target/sdv-cache/cache.bin; when running against the default store
        // location, import it so an existing warm cache survives the move.
        let old_default = std::path::Path::new("target/sdv-cache/cache.bin");
        if defaulted && old_default.exists() {
            if let Some(store) = exp.engine().store() {
                match sdv_sim::cachefile::import_legacy(store, old_default) {
                    Ok(n) if n > 0 => {
                        println!(
                            "imported {n} entries from pre-store {}",
                            old_default.display()
                        );
                    }
                    Ok(_) => {}
                    Err(e) => eprintln!(
                        "warning: could not import pre-store {}: {e}",
                        old_default.display()
                    ),
                }
            }
        }
    }
    println!(
        "# Speculative Dynamic Vectorization — reproduction run \
         (scale {}, {} insts/workload, {} threads)\n",
        rc.scale, rc.max_insts, opts.threads
    );

    if opts.table1 {
        println!("{}", Table1::four_way(1, PortKind::Wide));
        println!("{}", Table1::eight_way(1, PortKind::Wide));
    }

    // The grid behind Figures 11/12 and --csv: the paper's cut, extended by
    // any requested DV-sizing axes.
    let mut grid = SweepGrid::paper();
    if let Some(vl) = opts.vector_lengths.clone() {
        grid = grid.vector_lengths(vl);
    }
    if let Some(vregs) = opts.vector_registers.clone() {
        grid = grid.vector_registers(vregs);
    }

    let mut sweep = None;
    for fig in &opts.figures {
        match fig {
            1 => println!("{}", exp.fig1()),
            3 => println!("{}", exp.fig3()),
            7 => println!("{}", exp.fig7()),
            9 => println!("{}", exp.fig9()),
            10 => println!("{}", exp.fig10()),
            11 | 12 => {
                let sweep = sweep.get_or_insert_with(|| exp.sweep(&grid));
                if *fig == 11 {
                    println!("{}", Fig11(sweep));
                } else {
                    println!("{}", Fig12(sweep));
                }
            }
            13 => println!("{}", exp.fig13()),
            14 => println!("{}", exp.fig14()),
            15 => println!("{}", exp.fig15()),
            other => eprintln!(
                "figure {other} is not a measured figure (2, 4, 5, 6 and 8 are block diagrams)"
            ),
        }
        check_fail_fast(&exp, opts.fail_fast);
    }

    if opts.headline {
        println!("{}", exp.headline());
        check_fail_fast(&exp, opts.fail_fast);
    }

    if let Some(path) = &opts.csv {
        let sweep = sweep.get_or_insert_with(|| exp.sweep(&grid));
        std::fs::write(path, report::sweep_csv(sweep)).expect("CSV written");
        println!("sweep surface written to {}", path.display());
        check_fail_fast(&exp, opts.fail_fast);
    }

    // Persist before printing the report so the store-insert counter is part
    // of the dedup printout.
    if !opts.no_cache {
        match exp.persist() {
            Ok(()) => {
                if let Some(dir) = exp.engine().store_dir() {
                    println!("result store persisted to {}", dir.display());
                }
            }
            Err(e) => eprintln!("warning: could not persist the result store: {e}"),
        }
    }
    if exp.engine().store_degraded() {
        println!("note: the result store was degraded mid-run; this session's results were not persisted");
    }
    println!("{}", exp.report());
    let timing = exp.timing();
    println!("{timing}");
    if let Some(path) = &opts.timing_json {
        std::fs::write(path, report::timing_json(&timing)).expect("timing JSON written");
        println!(
            "engine timing written to {} (deprecated; prefer --metrics-json)",
            path.display()
        );
    }
    if let Some(path) = &opts.metrics_json {
        std::fs::write(path, report::metrics_json(exp.engine())).expect("metrics JSON written");
        println!("metrics written to {}", path.display());
    }
    if let Some(path) = &opts.trace {
        std::fs::write(path, exp.engine().obs().trace_json()).expect("trace written");
        println!(
            "trace written to {} (load in Perfetto or chrome://tracing)",
            path.display()
        );
    }
    // One-line observability summary: printed whenever observation was on,
    // and always when something noteworthy happened (retries, degradation,
    // failures) so quiet runs stay quiet but trouble is never silent.
    let engine = exp.engine();
    let failed = engine.report().failed_cells;
    if obs_level(&opts) != ObsLevel::Off
        || engine.persist_retries() > 0
        || engine.store_degraded()
        || failed > 0
    {
        eprintln!(
            "repro: obs summary: {} cell(s) failed, {} persist retr{}, store {}, \
             {} trace event(s) dropped",
            failed,
            engine.persist_retries(),
            if engine.persist_retries() == 1 {
                "y"
            } else {
                "ies"
            },
            if engine.store_degraded() {
                "DEGRADED"
            } else {
                "healthy"
            },
            engine.obs().dropped_events(),
        );
    }
    // The sweep completed (every healthy cell ran); the exit code still
    // reports that some cells failed.
    if report_failures(&exp) {
        std::process::exit(1);
    }
}

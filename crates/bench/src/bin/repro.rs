//! Regenerates the paper's tables and figures and prints them as text.
//!
//! ```text
//! repro [--quick|--standard|--thorough] [--threads N]
//!       [--table1] [--fig N]... [--headline] [--all]
//! ```
//!
//! With no selection arguments everything is regenerated.  All generators
//! share one [`sdv_sim::Experiment`] session, so overlapping cells (the
//! headline configurations reappear in Figures 11/12, Figure 13 reuses the
//! Figure 10 suite, …) are simulated exactly once; the final line reports how
//! many unique cells ran versus how many were served from the session cache.
//! `--threads N` spreads the unique cells of each batch across N worker
//! threads without changing any result.
//!
//! The output rows mirror the series plotted in the paper; `EXPERIMENTS.md`
//! records a paper-vs-measured comparison produced with `--standard`.

use sdv_sim::{Experiment, Fig11, Fig12, PortKind, RunConfig, SweepGrid, Table1};

#[derive(Debug)]
struct Options {
    run: RunConfig,
    threads: usize,
    table1: bool,
    figures: Vec<u32>,
    headline: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        run: sdv_bench::repro_run_config(),
        threads: 1,
        table1: false,
        figures: Vec::new(),
        headline: false,
    };
    let mut args = std::env::args().skip(1).peekable();
    let mut any_selection = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.run = RunConfig::quick(),
            "--standard" => opts.run = RunConfig::standard(),
            "--thorough" => opts.run = RunConfig::thorough(),
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| panic!("--threads requires a positive integer"));
            }
            "--table1" => {
                opts.table1 = true;
                any_selection = true;
            }
            "--headline" => {
                opts.headline = true;
                any_selection = true;
            }
            "--fig" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--fig requires a figure number"));
                opts.figures.push(n);
                any_selection = true;
            }
            "--all" => any_selection = false,
            other => {
                panic!(
                    "unknown argument `{other}` \
                     (try --all, --fig N, --table1, --headline, --threads N)"
                )
            }
        }
    }
    if !any_selection {
        opts.table1 = true;
        opts.headline = true;
        opts.figures = vec![1, 3, 7, 9, 10, 11, 12, 13, 14, 15];
    }
    opts
}

fn main() {
    let opts = parse_args();
    let rc = opts.run;
    let exp = Experiment::new(rc).threads(opts.threads);
    println!(
        "# Speculative Dynamic Vectorization — reproduction run \
         (scale {}, {} insts/workload, {} threads)\n",
        rc.scale, rc.max_insts, opts.threads
    );

    if opts.table1 {
        println!("{}", Table1::four_way(1, PortKind::Wide));
        println!("{}", Table1::eight_way(1, PortKind::Wide));
    }

    let mut sweep = None;
    for fig in &opts.figures {
        match fig {
            1 => println!("{}", exp.fig1()),
            3 => println!("{}", exp.fig3()),
            7 => println!("{}", exp.fig7()),
            9 => println!("{}", exp.fig9()),
            10 => println!("{}", exp.fig10()),
            11 | 12 => {
                let sweep = sweep.get_or_insert_with(|| exp.sweep(&SweepGrid::paper()));
                if *fig == 11 {
                    println!("{}", Fig11(sweep));
                } else {
                    println!("{}", Fig12(sweep));
                }
            }
            13 => println!("{}", exp.fig13()),
            14 => println!("{}", exp.fig14()),
            15 => println!("{}", exp.fig15()),
            other => eprintln!(
                "figure {other} is not a measured figure (2, 4, 5, 6 and 8 are block diagrams)"
            ),
        }
    }

    if opts.headline {
        println!("{}", exp.headline());
    }

    println!("{}", exp.report());
}

//! Regenerates the paper's tables and figures and prints them as text.
//!
//! ```text
//! repro [--quick|--standard|--thorough] [--table1] [--fig N]... [--headline] [--all]
//! ```
//!
//! With no selection arguments everything is regenerated.  The output rows
//! mirror the series plotted in the paper; `EXPERIMENTS.md` records a
//! paper-vs-measured comparison produced with `--standard`.

use sdv_sim::{
    fig1, fig10, fig13, fig14, fig15, fig3, fig7, fig9, headline, port_sweep, Fig11, Fig12,
    MachineWidth, PortKind, RunConfig, Table1, Workload,
};

#[derive(Debug)]
struct Options {
    run: RunConfig,
    table1: bool,
    figures: Vec<u32>,
    headline: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        run: sdv_bench::repro_run_config(),
        table1: false,
        figures: Vec::new(),
        headline: false,
    };
    let mut args = std::env::args().skip(1).peekable();
    let mut any_selection = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.run = RunConfig::quick(),
            "--standard" => opts.run = RunConfig::standard(),
            "--thorough" => opts.run = RunConfig::thorough(),
            "--table1" => {
                opts.table1 = true;
                any_selection = true;
            }
            "--headline" => {
                opts.headline = true;
                any_selection = true;
            }
            "--fig" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--fig requires a figure number"));
                opts.figures.push(n);
                any_selection = true;
            }
            "--all" => any_selection = false,
            other => {
                panic!("unknown argument `{other}` (try --all, --fig N, --table1, --headline)")
            }
        }
    }
    if !any_selection {
        opts.table1 = true;
        opts.headline = true;
        opts.figures = vec![1, 3, 7, 9, 10, 11, 12, 13, 14, 15];
    }
    opts
}

fn main() {
    let opts = parse_args();
    let all: Vec<Workload> = Workload::all().to_vec();
    let rc = opts.run;
    println!(
        "# Speculative Dynamic Vectorization — reproduction run (scale {}, {} insts/workload)\n",
        rc.scale, rc.max_insts
    );

    if opts.table1 {
        println!("{}", Table1::four_way(1, PortKind::Wide));
        println!("{}", Table1::eight_way(1, PortKind::Wide));
    }

    let mut sweep = None;
    for fig in &opts.figures {
        match fig {
            1 => println!("{}", fig1(&rc, &all)),
            3 => println!("{}", fig3(&rc, &all)),
            7 => println!("{}", fig7(&rc, &all)),
            9 => println!("{}", fig9(&rc, &all)),
            10 => println!("{}", fig10(&rc, &all)),
            11 | 12 => {
                if sweep.is_none() {
                    sweep = Some(port_sweep(&rc, &all, &MachineWidth::all(), &[1, 2, 4]));
                }
                let sweep = sweep.as_ref().expect("just created");
                if *fig == 11 {
                    println!("{}", Fig11(sweep));
                } else {
                    println!("{}", Fig12(sweep));
                }
            }
            13 => println!("{}", fig13(&rc, &all)),
            14 => println!("{}", fig14(&rc, &all)),
            15 => println!("{}", fig15(&rc, &all)),
            other => eprintln!(
                "figure {other} is not a measured figure (2, 4, 5, 6 and 8 are block diagrams)"
            ),
        }
    }

    if opts.headline {
        println!("{}", headline(&rc, &all));
    }
}

//! Operator tool for the persistent result store.
//!
//! ```text
//! sdv-store fingerprint
//! sdv-store stats DIR
//! sdv-store verify DIR
//! sdv-store repair DIR
//! sdv-store merge DEST SRC...
//! sdv-store gc DIR [--keep-fingerprint HEX]
//! ```
//!
//! * `fingerprint` prints the current build's simulator-behaviour fingerprint
//!   (hex) — the value CI uses as its store cache key, and the producer id
//!   under which this binary reads and writes store entries.
//! * `stats` prints occupancy statistics for a store directory.
//! * `verify` structurally checks every shard file (magic, version, framing,
//!   per-entry checksums, key placement) and exits non-zero on corruption —
//!   run it after restoring a store from a CI cache.
//! * `repair` salvages every intact entry of a damaged store: corrupt bytes
//!   are quarantined under `DIR/quarantine/`, each damaged shard is rewritten
//!   atomically from its surviving entries, and legacy-format shards are
//!   upgraded in place.  Only provably-corrupt entries are lost — a follow-up
//!   `verify` is clean.
//! * `merge` merges result sets into `DEST`: each `SRC` may be another store
//!   directory (e.g. a parallel job's) or a legacy single-file `cache.bin`.
//!   Entries written by other builds are skipped, never replayed.
//! * `gc` deletes shard files whose fingerprint differs from the kept one
//!   (default: the current build's) plus abandoned temp files.
//!
//! All subcommands operate under the current build's fingerprint, so numbers
//! produced by older simulators can never leak into new sessions.
//!
//! Exit codes: 0 success, 1 `verify` found corruption, 2 command-line error
//! (a usage banner is printed), 3 runtime I/O failure (message only — the
//! command line was fine).

use sdv_sim::cachefile;
use sdv_store::Store;
use std::path::{Path, PathBuf};

const USAGE: &str = "usage: sdv-store fingerprint\n\
       sdv-store stats DIR\n\
       sdv-store verify DIR\n\
       sdv-store repair DIR\n\
       sdv-store merge DEST SRC...\n\
       sdv-store gc DIR [--keep-fingerprint HEX]";

fn usage_error(message: &str) -> ! {
    eprintln!("sdv-store: {message}\n{USAGE}");
    std::process::exit(2)
}

/// A runtime failure on a well-formed command line: no usage banner, and a
/// distinct exit code so callers can tell it from operator error (2) and
/// from `verify`-found corruption (1).
fn io_error(message: &str) -> ! {
    eprintln!("sdv-store: {message}");
    std::process::exit(3)
}

fn open(dir: &Path) -> Store {
    Store::open(dir, cachefile::simulator_fingerprint())
        .unwrap_or_else(|e| io_error(&format!("cannot open store {}: {e}", dir.display())))
}

fn stats(dir: &Path) {
    let store = open(dir);
    let stats = store
        .stats()
        .unwrap_or_else(|e| io_error(&format!("cannot read store {}: {e}", dir.display())));
    println!(
        "store {} (fingerprint {:016x}):\n  {stats}",
        dir.display(),
        store.fingerprint()
    );
}

fn verify(dir: &Path) {
    let store = open(dir);
    let report = store
        .verify()
        .unwrap_or_else(|e| io_error(&format!("cannot read store {}: {e}", dir.display())));
    println!("verify {}: {report}", dir.display());
    if !report.is_ok() {
        std::process::exit(1);
    }
}

fn repair(dir: &Path) {
    let store = open(dir);
    let report = store
        .repair()
        .unwrap_or_else(|e| io_error(&format!("cannot repair store {}: {e}", dir.display())));
    println!("repair {}: {report}", dir.display());
}

fn merge(dest: &Path, sources: &[PathBuf]) {
    if sources.is_empty() {
        usage_error("merge needs at least one SRC");
    }
    let store = open(dest);
    for src in sources {
        // An absent SRC would otherwise read as an empty store and "merge"
        // zero entries successfully — a typo must fail loudly instead.
        if !src.exists() {
            usage_error(&format!("merge source {} does not exist", src.display()));
        }
        if src.is_file() {
            match cachefile::import_legacy(&store, src) {
                Ok(inserted) => {
                    println!(
                        "merged legacy file {}: {inserted} entries inserted",
                        src.display()
                    );
                }
                Err(e) => io_error(&format!("cannot import {}: {e}", src.display())),
            }
        } else {
            match store.merge_from(src) {
                Ok(report) => println!("merged store {}: {report}", src.display()),
                Err(e) => io_error(&format!("cannot merge {}: {e}", src.display())),
            }
        }
    }
}

fn gc(dir: &Path, keep: Option<&str>) {
    let keep = match keep {
        None => cachefile::simulator_fingerprint(),
        Some(hex) => u64::from_str_radix(hex.trim_start_matches("0x"), 16)
            .unwrap_or_else(|_| usage_error(&format!("`{hex}` is not a hex fingerprint"))),
    };
    let store = open(dir);
    let report = store
        .gc(keep)
        .unwrap_or_else(|e| io_error(&format!("cannot gc {}: {e}", dir.display())));
    println!(
        "gc {} (kept fingerprint {keep:016x}): {report}",
        dir.display()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first().map(|(cmd, rest)| (cmd.as_str(), rest)) {
        Some(("fingerprint", [])) => {
            println!("{:016x}", cachefile::simulator_fingerprint());
        }
        Some(("stats", [dir])) => stats(Path::new(dir)),
        Some(("verify", [dir])) => verify(Path::new(dir)),
        Some(("repair", [dir])) => repair(Path::new(dir)),
        Some(("merge", [dest, sources @ ..])) => {
            let sources: Vec<PathBuf> = sources.iter().map(PathBuf::from).collect();
            merge(Path::new(dest), &sources);
        }
        Some(("gc", [dir])) => gc(Path::new(dir), None),
        Some(("gc", [dir, flag, hex])) if flag == "--keep-fingerprint" => {
            gc(Path::new(dir), Some(hex));
        }
        Some((other, _)) => usage_error(&format!("unknown or malformed subcommand `{other}`")),
        None => usage_error("a subcommand is required"),
    }
}

//! Static-analysis front end for the in-tree workloads.
//!
//! ```text
//! sdv-analyze check [--json] [--scale N] [WORKLOAD... | all | extended]
//! sdv-analyze envelope [--json] [--scale N] [WORKLOAD... | all | extended]
//! ```
//!
//! * `check` runs every `sdv-analyze` pass (CFG, use-before-def, footprint)
//!   over each named workload and prints the findings.  Error-severity
//!   findings make the command exit 1 — this is the CI gate that keeps every
//!   kernel statically clean, and the same verdict the run engine's
//!   pre-flight enforces before simulating a cell.
//! * `envelope` prints each workload's conservative resource envelope
//!   (footprint interval, live-register bound, §3 vectorizable bound, CFG
//!   shape).  `--json` emits one stable-schema JSON document for artifact
//!   upload; `tests/analysis_properties.rs` proves simulated runs stay inside
//!   these bounds.
//!
//! `WORKLOAD` names are the paper's x-axis names (`go`, `swim`, …);
//! `all` is the 12-kernel figure suite, `extended` (the default) adds the
//! four post-paper kernels.  `--scale N` builds each kernel with `N` outer
//! iterations (default 1; the envelope is scale-dependent only through the
//! data-segment sizes).
//!
//! Exit codes: 0 clean, 1 at least one error-severity finding (`check`
//! only), 2 command-line error (a usage banner is printed).

use sdv_analyze::{analyze, Severity};
use sdv_workloads::Workload;

const USAGE: &str =
    "usage: sdv-analyze check [--json] [--scale N] [WORKLOAD... | all | extended]\n\
       sdv-analyze envelope [--json] [--scale N] [WORKLOAD... | all | extended]";

fn usage_error(message: &str) -> ! {
    eprintln!("sdv-analyze: {message}\n{USAGE}");
    std::process::exit(2)
}

/// Everything after the subcommand: flags plus the workload selection.
struct Request {
    json: bool,
    scale: u64,
    workloads: Vec<Workload>,
}

fn parse_workload(name: &str) -> Workload {
    Workload::extended()
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| usage_error(&format!("unknown workload `{name}`")))
}

fn parse_request(args: &[String]) -> Request {
    let mut json = false;
    let mut scale = 1u64;
    let mut workloads: Vec<Workload> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--scale" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| usage_error("--scale needs a value"));
                scale = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("`{value}` is not a scale")));
                if scale == 0 {
                    usage_error("--scale must be at least 1");
                }
            }
            "all" => workloads.extend(Workload::all()),
            "extended" => workloads.extend(Workload::extended()),
            flag if flag.starts_with('-') => {
                usage_error(&format!("unknown flag `{flag}`"));
            }
            name => workloads.push(parse_workload(name)),
        }
    }
    if workloads.is_empty() {
        workloads.extend(Workload::extended());
    }
    workloads.dedup();
    Request {
        json,
        scale,
        workloads,
    }
}

/// `check`: print findings per workload, exit 1 on any error-severity one.
fn check(req: &Request) {
    let mut failed = false;
    let mut json_rows: Vec<String> = Vec::new();
    for &w in &req.workloads {
        let analysis = analyze(&w.build(req.scale));
        failed |= analysis.has_errors();
        if req.json {
            json_rows.push(format!(
                "{{\"workload\":\"{}\",{}",
                w.name(),
                analysis.to_json().trim_start_matches('{')
            ));
        } else if analysis.diags.is_empty() {
            println!("{w}: ok");
        } else {
            let errors = analysis
                .diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count();
            println!(
                "{w}: {} finding(s), {errors} error(s)",
                analysis.diags.len()
            );
            for d in &analysis.diags {
                println!("  {d}");
            }
        }
    }
    if req.json {
        println!("{{\"results\":[{}]}}", json_rows.join(","));
    }
    if failed {
        std::process::exit(1);
    }
}

/// `envelope`: print each workload's resource envelope; always exits 0.
fn envelope(req: &Request) {
    let mut json_rows: Vec<String> = Vec::new();
    for &w in &req.workloads {
        let analysis = analyze(&w.build(req.scale));
        let e = &analysis.envelope;
        if req.json {
            json_rows.push(format!(
                "{{\"workload\":\"{}\",\"envelope\":{}}}",
                w.name(),
                e.to_json()
            ));
        } else {
            let footprint = match (e.footprint_unbounded, e.footprint) {
                (true, _) => "unbounded".to_string(),
                (false, Some((lo, hi))) => format!("[{lo:#x}, {hi:#x}]"),
                (false, None) => "none".to_string(),
            };
            println!(
                "{w}: {} insts, {} blocks ({} reachable), {} back-edge(s), \
                 footprint {footprint}, <= {} live regs, \
                 vectorizable <= {:.1}%",
                e.static_insts,
                e.blocks,
                e.reachable_blocks,
                e.back_edges,
                e.max_live_regs,
                e.vectorizable_bound * 100.0
            );
        }
    }
    if req.json {
        println!(
            "{{\"scale\":{},\"results\":[{}]}}",
            req.scale,
            json_rows.join(",")
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first().map(|(cmd, rest)| (cmd.as_str(), rest)) {
        Some(("check", rest)) => check(&parse_request(rest)),
        Some(("envelope", rest)) => envelope(&parse_request(rest)),
        Some((other, _)) => usage_error(&format!("unknown subcommand `{other}`")),
        None => usage_error("a subcommand is required"),
    }
}

//! Operator tool for `sdv-obs-metrics/1` documents (`repro --metrics-json`).
//!
//! ```text
//! sdv-obs summarize FILE
//! sdv-obs diff BASE CURRENT
//! ```
//!
//! * `summarize` prints a readable listing of a metrics document: every
//!   counter and gauge by name, and each histogram with its sample count,
//!   mean, and per-bucket occupancy.
//! * `diff` prints what changed from `BASE` to `CURRENT` (counters subtract
//!   saturating over the union of names, gauges subtract, histograms subtract
//!   bucket-wise), skipping zero-delta entries — the quick answer to "what
//!   did this run do differently?".
//!
//! Names are sorted, so the output is stable and diff-friendly (the golden
//! CLI fixture test depends on this).  See `docs/OBSERVABILITY.md` for the
//! naming scheme and document schema.
//!
//! Exit codes follow the store CLI conventions: 0 success, 2 command-line
//! error (usage banner) or malformed/wrong-schema document (message only),
//! 3 runtime I/O failure.

use sdv_obs::{Histogram, MetricsRegistry};
use std::fmt::Write as _;
use std::path::Path;

const USAGE: &str = "usage: sdv-obs summarize FILE\n       sdv-obs diff BASE CURRENT";

fn usage_error(message: &str) -> ! {
    eprintln!("sdv-obs: {message}\n{USAGE}");
    std::process::exit(2)
}

/// A document that could be read but not understood: malformed JSON or a
/// schema-version mismatch.  Same exit code as operator error — the command
/// line may have been fine, but the input is not a metrics document we can
/// honestly summarize, and conflating it with success or I/O failure would
/// mislead CI.
fn data_error(message: &str) -> ! {
    eprintln!("sdv-obs: {message}");
    std::process::exit(2)
}

/// A runtime failure on a well-formed command line (unreadable file).
fn io_error(message: &str) -> ! {
    eprintln!("sdv-obs: {message}");
    std::process::exit(3)
}

fn load(path: &Path) -> MetricsRegistry {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| io_error(&format!("cannot read {}: {e}", path.display())));
    MetricsRegistry::from_json(&text)
        .unwrap_or_else(|e| data_error(&format!("{}: {e}", path.display())))
}

/// One histogram, bucket by bucket: `[.. 100] 5` is "5 samples at most 100",
/// the final `(100 ..] 2` is the overflow bucket.
fn print_histogram(out: &mut String, name: &str, h: &Histogram, indent: &str) {
    let _ = writeln!(
        out,
        "{indent}{name}: {} sample(s), mean {:.1}",
        h.total(),
        h.mean()
    );
    let bounds = h.bounds();
    for (i, count) in h.counts().iter().enumerate() {
        if *count == 0 {
            continue;
        }
        if i < bounds.len() {
            let _ = writeln!(out, "{indent}  [.. {}] {count}", bounds[i]);
        } else {
            let _ = writeln!(out, "{indent}  ({} ..] {count}", bounds[bounds.len() - 1]);
        }
    }
}

fn summarize(path: &Path) -> String {
    let reg = load(path);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "metrics {}: {} counter(s), {} gauge(s), {} histogram(s)",
        path.display(),
        reg.counters().count(),
        reg.gauges().count(),
        reg.histograms().count()
    );
    for (name, v) in reg.counters() {
        let _ = writeln!(out, "  {name} = {v}");
    }
    for (name, v) in reg.gauges() {
        let _ = writeln!(out, "  {name} = {v:.6}");
    }
    for (name, h) in reg.histograms() {
        print_histogram(&mut out, name, h, "  ");
    }
    out
}

fn diff(base_path: &Path, cur_path: &Path) -> String {
    let base = load(base_path);
    let cur = load(cur_path);
    let delta = cur.diff(&base);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "diff {} -> {}:",
        base_path.display(),
        cur_path.display()
    );
    let mut changes = 0usize;
    for (name, v) in delta.counters() {
        if v != 0 {
            let _ = writeln!(out, "  {name} +{v}");
            changes += 1;
        }
    }
    for (name, v) in delta.gauges() {
        if v != 0.0 {
            let _ = writeln!(out, "  {name} {v:+.6}");
            changes += 1;
        }
    }
    for (name, h) in delta.histograms() {
        if h.total() != 0 {
            print_histogram(&mut out, name, h, "  +");
            changes += 1;
        }
    }
    if changes == 0 {
        let _ = writeln!(out, "  (no changes)");
    }
    out
}

/// Writes the (bounded-size) report in one shot.  A closed pipe — `sdv-obs
/// summarize big.json | head` — is the reader saying "enough", not a failure,
/// so `BrokenPipe` exits 0 instead of panicking mid-`println!`.
fn emit(text: &str) {
    use std::io::Write as _;
    if let Err(e) = std::io::stdout().write_all(text.as_bytes()) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        io_error(&format!("cannot write to stdout: {e}"));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first().map(|(cmd, rest)| (cmd.as_str(), rest)) {
        Some(("summarize", [file])) => emit(&summarize(Path::new(file))),
        Some(("diff", [base, cur])) => emit(&diff(Path::new(base), Path::new(cur))),
        Some((other, _)) => usage_error(&format!("unknown or malformed subcommand `{other}`")),
        None => usage_error("a subcommand is required"),
    }
}

//! End-to-end tests for the `sdv-analyze` CLI: exit-code contract, JSON
//! schema stability, and golden output fixtures.
//!
//! The binary under test is the same one CI's "Static analysis" step runs
//! over every kernel; these tests pin its observable behaviour (exit codes
//! 0 clean / 1 findings / 2 usage, the `--json` schemas, and the exact
//! output for the extended suite) so the CI gate cannot drift silently.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sdv-analyze"))
        .args(args)
        .output()
        .expect("sdv-analyze runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

/// Structural well-formedness without a JSON parser dependency: balanced
/// braces/brackets outside string literals, and no trailing garbage.
fn assert_balanced_json(text: &str) {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.trim().chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '{' | '[' if !in_string => depth += 1,
            '}' | ']' if !in_string => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced close in {text}");
    }
    assert!(!in_string, "unterminated string in {text}");
    assert_eq!(depth, 0, "unbalanced JSON: {text}");
}

#[test]
fn clean_workloads_exit_zero() {
    let out = run(&["check"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = run(&["check", "compress", "swim"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out), "compress: ok\nswim: ok\n");
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &[] as &[&str],
        &["frobnicate"],
        &["check", "nosuchkernel"],
        &["check", "--scale"],
        &["check", "--scale", "zero"],
        &["check", "--scale", "0"],
        &["envelope", "--frob"],
    ] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(stderr(&out).contains("usage:"), "args {args:?}");
    }
}

#[test]
fn check_json_schema_is_stable() {
    let out = run(&["check", "--json", "compress"]);
    assert!(out.status.success());
    let json = stdout(&out);
    assert_balanced_json(&json);
    for key in [
        "\"results\"",
        "\"workload\"",
        "\"errors\"",
        "\"diags\"",
        "\"envelope\"",
    ] {
        assert!(json.contains(key), "{json} missing {key}");
    }
    assert!(json.contains("\"workload\":\"compress\""));
    assert!(json.contains("\"errors\":0"));
}

#[test]
fn envelope_json_schema_is_stable() {
    let out = run(&["envelope", "--json", "--scale", "2", "swim", "histo"]);
    assert!(out.status.success());
    let json = stdout(&out);
    assert_balanced_json(&json);
    assert!(json.contains("\"scale\":2"));
    for key in [
        "\"results\"",
        "\"workload\"",
        "\"envelope\"",
        "\"static_insts\"",
        "\"static_mem_ops\"",
        "\"back_edges\"",
        "\"footprint\"",
        "\"footprint_unbounded\"",
        "\"max_live_regs\"",
        "\"vectorizable_bound\"",
        "\"has_indirect\"",
    ] {
        assert!(json.contains(key), "{json} missing {key}");
    }
    assert!(json.contains("\"workload\":\"swim\""));
    assert!(json.contains("\"workload\":\"histo\""));
}

#[test]
fn selection_aliases_cover_the_suites() {
    let out = run(&["check", "all"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).lines().count(), 12, "paper suite");
    let out = run(&["check", "extended"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).lines().count(), 16, "extended suite");
    // Duplicates collapse: `compress compress` analyzes once.
    let out = run(&["check", "compress", "compress"]);
    assert_eq!(stdout(&out), "compress: ok\n");
}

/// Golden fixture: the default `check` output over the extended suite.  A
/// kernel acquiring any finding (or a workload being renamed) must show up
/// as a reviewed fixture update, not silent drift.
#[test]
fn check_output_matches_golden_fixture() {
    let out = run(&["check"]);
    assert!(out.status.success());
    assert_eq!(
        stdout(&out),
        include_str!("fixtures/analyze/check_extended.txt"),
        "run `sdv-analyze check > crates/bench/tests/fixtures/analyze/check_extended.txt` \
         after a reviewed kernel change"
    );
}

/// Golden fixture: the machine-readable envelope of one kernel.  Pins the
/// whole JSON schema byte-for-byte, not just key presence.
#[test]
fn envelope_json_matches_golden_fixture() {
    let out = run(&["envelope", "--json", "compress"]);
    assert!(out.status.success());
    assert_eq!(
        stdout(&out),
        include_str!("fixtures/analyze/envelope_compress.json"),
        "run `sdv-analyze envelope --json compress > \
         crates/bench/tests/fixtures/analyze/envelope_compress.json` \
         after a reviewed kernel or schema change"
    );
}

//! End-to-end tests for the `sdv-obs` CLI: exit-code contract and golden
//! output fixtures.
//!
//! The exit codes follow the store CLI conventions (0 success, 2 usage or
//! malformed/wrong-schema document, 3 runtime I/O failure); the golden
//! `summarize` fixture pins the human-readable format so CI scripts parsing
//! it cannot be broken silently.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sdv-obs"))
        .args(args)
        .output()
        .expect("sdv-obs runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

const BASE: &str = "tests/fixtures/obs/metrics_base.json";
const CURRENT: &str = "tests/fixtures/obs/metrics_current.json";

/// Golden fixture: `summarize` over a small document, byte-for-byte.
#[test]
fn summarize_matches_golden_fixture() {
    let out = run(&["summarize", BASE]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(
        stdout(&out),
        include_str!("fixtures/obs/summarize_base.txt"),
        "run `sdv-obs summarize {BASE} > crates/bench/tests/fixtures/obs/summarize_base.txt` \
         after a reviewed format change"
    );
}

#[test]
fn diff_reports_deltas_and_skips_unchanged() {
    let out = run(&["diff", BASE, CURRENT]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("engine.cells.simulated +2"), "{text}");
    assert!(text.contains("pipeline.cycles.committing +500"), "{text}");
    assert!(
        !text.contains("pipeline.cycles.fetch_blocked"),
        "zero-delta entries are skipped: {text}"
    );
    assert!(text.contains("store.io.lock_wait_micros"), "{text}");
}

#[test]
fn diff_of_a_document_with_itself_is_empty() {
    let out = run(&["diff", BASE, BASE]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("(no changes)"));
}

/// The exit-code matrix: 2 for operator error and documents we cannot
/// honestly summarize (malformed, wrong schema), 3 for unreadable files.
#[test]
fn usage_errors_exit_two_with_banner() {
    for args in [
        &[] as &[&str],
        &["frobnicate"],
        &["summarize"],
        &["summarize", BASE, CURRENT],
        &["diff", BASE],
    ] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(stderr(&out).contains("usage:"), "args {args:?}");
    }
}

#[test]
fn wrong_schema_exits_two_naming_the_mismatch() {
    for cmd in [
        &["summarize", "tests/fixtures/obs/wrong_schema.json"] as &[&str],
        &["diff", BASE, "tests/fixtures/obs/wrong_schema.json"],
        &["diff", "tests/fixtures/obs/wrong_schema.json", CURRENT],
    ] {
        let out = run(cmd);
        assert_eq!(out.status.code(), Some(2), "cmd {cmd:?}");
        let err = stderr(&out);
        assert!(err.contains("schema"), "cmd {cmd:?}: {err}");
        assert!(
            !err.contains("usage:"),
            "data errors carry no banner: {err}"
        );
    }
}

#[test]
fn malformed_documents_exit_two() {
    let out = run(&["summarize", "tests/fixtures/obs/garbage.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("malformed"), "{}", stderr(&out));
}

#[test]
fn unreadable_files_exit_three() {
    for cmd in [
        &["summarize", "tests/fixtures/obs/nonexistent.json"] as &[&str],
        &["diff", "tests/fixtures/obs/nonexistent.json", BASE],
    ] {
        let out = run(cmd);
        assert_eq!(out.status.code(), Some(3), "cmd {cmd:?}");
        assert!(stderr(&out).contains("cannot read"), "cmd {cmd:?}");
    }
}

//! End-to-end tests for the `sdv-store` CLI's corruption workflow: a golden
//! damaged-store fixture is verified (exit 1), repaired (exit 0, salvaging
//! every intact entry and quarantining the damaged bytes), and verified again
//! (exit 0) — pinning the exit-code contract, the repair semantics, *and* the
//! on-disk shard format (the fixture bytes are regenerated in-test and must
//! match the committed files byte for byte).
//!
//! Regenerate the fixtures after a deliberate format change with
//! `SDV_REGEN_FIXTURES=1 cargo test -p sdv-bench --test store_cli`.

use sdv_store::{serialize_shard, serialize_shard_v1};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The fixture's producer fingerprint: fixed, so the committed bytes never
/// depend on the current build (the CLI still verifies and repairs foreign
/// shards — they are merely "stale", not corrupt).
const FIXTURE_FP: u64 = 0xfeed;

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sdv-store"))
        .args(args)
        .output()
        .expect("sdv-store runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/store")
}

/// Shard `ab`, current version: five entries, with a bit flipped inside the
/// third entry's payload (a media-corruption casualty the CRC catches).
fn fixture_bytes_ab() -> Vec<u8> {
    let entries: HashMap<u128, Vec<u8>> = (0..5u32)
        .map(|i| {
            let key = (0xab_u128 << 120) | u128::from(i);
            let payload = vec![u8::try_from(i * 3 + 1).unwrap(); 5 + i as usize];
            (key, payload)
        })
        .collect();
    let mut bytes = serialize_shard(FIXTURE_FP, &entries);
    // Header 24, entries key-sorted with sizes 29 and 30 before the victim;
    // its payload starts 24 framing bytes further in.
    bytes[24 + 29 + 30 + 24] ^= 1;
    bytes
}

/// Shard `cd`, legacy version 1 (CRC-less), structurally clean: `repair`
/// must upgrade it in place without losing an entry.
fn fixture_bytes_cd() -> Vec<u8> {
    let entries: HashMap<u128, Vec<u8>> = (0..3u32)
        .map(|i| ((0xcd_u128 << 120) | u128::from(i), vec![0xcd; 4]))
        .collect();
    serialize_shard_v1(FIXTURE_FP, &entries)
}

/// The committed fixture must equal the bytes the current code generates —
/// this is the format pin: any serialization change shows up as a byte diff
/// here before it can silently invalidate real stores.
#[test]
fn golden_fixture_matches_the_current_shard_format() {
    let dir = fixture_dir();
    if std::env::var_os("SDV_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("shard-ab.bin"), fixture_bytes_ab()).unwrap();
        std::fs::write(dir.join("shard-cd.bin"), fixture_bytes_cd()).unwrap();
    }
    let committed_ab = std::fs::read(dir.join("shard-ab.bin")).expect("committed fixture");
    let committed_cd = std::fs::read(dir.join("shard-cd.bin")).expect("committed fixture");
    assert_eq!(
        committed_ab,
        fixture_bytes_ab(),
        "shard format drifted (v2)"
    );
    assert_eq!(
        committed_cd,
        fixture_bytes_cd(),
        "shard format drifted (v1)"
    );
}

/// Copies the golden fixture into a scratch store directory.
fn scratch_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sdv-store-cli-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for shard in ["shard-ab.bin", "shard-cd.bin"] {
        std::fs::copy(fixture_dir().join(shard), dir.join(shard)).unwrap();
    }
    dir
}

/// The headline acceptance flow: verify flags the damage (exit 1), repair
/// salvages every intact entry and quarantines the corrupt bytes (exit 0),
/// and a second verify is clean (exit 0).
#[test]
fn verify_repair_verify_on_the_golden_fixture() {
    let dir = scratch_store("repair");
    let dir_s = dir.to_str().unwrap();

    let out = run(&["verify", dir_s]);
    assert_eq!(out.status.code(), Some(1), "damage means exit 1");
    let text = stdout(&out);
    assert!(text.contains("1 corrupt entry"), "{text}");
    assert!(text.contains("entry 2: crc mismatch"), "{text}");
    assert!(text.contains("legacy v1 shard file"), "{text}");

    let out = run(&["repair", dir_s]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 repaired"), "{text}");
    assert!(text.contains("7 entries recovered"), "{text}");
    assert!(text.contains("1 quarantined"), "{text}");
    assert!(text.contains("1 legacy shard(s) upgraded"), "{text}");

    // The damaged bytes survive, exactly the victim entry's 31 bytes.
    let quarantined = std::fs::read(dir.join("quarantine/shard-ab.bad")).unwrap();
    assert_eq!(quarantined.len(), 31);

    let out = run(&["verify", dir_s]);
    assert!(
        out.status.success(),
        "verify is clean after repair: {}",
        stdout(&out)
    );
    let text = stdout(&out);
    assert!(text.contains("OK"), "{text}");
    assert!(
        !text.contains("legacy"),
        "the v1 shard was upgraded: {text}"
    );

    // Repairing a healthy store is a no-op.
    let out = run(&["repair", dir_s]);
    assert!(out.status.success());
    assert!(
        stdout(&out).contains("2 clean, 0 repaired"),
        "{}",
        stdout(&out)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Exit-code and usage contract for the new subcommand.
#[test]
fn repair_usage_and_io_errors_keep_the_exit_contract() {
    let out = run(&["repair"]);
    assert_eq!(out.status.code(), Some(2), "missing DIR is a usage error");
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));

    let out = run(&["repair", "x", "y"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "extra operands are a usage error"
    );

    // A path that cannot even be created is a runtime I/O failure (3).
    let out = run(&["repair", "/proc/does-not-exist/store"]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("cannot"), "{}", stderr(&out));
}

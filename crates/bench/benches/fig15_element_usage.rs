//! Criterion bench: regenerates Figure 15 on a reduced workload subset.
//!
//! The purpose of the bench is twofold: it tracks the simulator's own
//! performance over time, and `cargo bench` doubles as a smoke test that the
//! figure can be regenerated end to end.  A fresh [`sdv_bench::bench_experiment`]
//! is created per iteration so the session memo cache never turns later
//! iterations into cache hits; the `repro` binary prints the full figure for
//! comparison with the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use sdv_bench::bench_experiment;

fn bench(c: &mut Criterion) {
    c.bench_function("fig15_element_usage", |b| {
        b.iter(|| bench_experiment().fig15());
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
);
criterion_main!(benches);

//! Criterion bench: regenerates Figure 12 (memory-port occupancy) on a reduced workload subset.
//!
//! The purpose of the bench is twofold: it tracks the simulator's own
//! performance over time, and `cargo bench` doubles as a smoke test that the
//! figure can be regenerated end to end.  A fresh [`sdv_bench::bench_experiment`]
//! is created per iteration so the session memo cache never turns later
//! iterations into cache hits; the `repro` binary prints the full figure for
//! comparison with the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use sdv_bench::bench_experiment;
use sdv_sim::{Fig12, MachineWidth, SweepGrid};

fn bench(c: &mut Criterion) {
    let grid = SweepGrid::new()
        .widths(vec![MachineWidth::EightWay])
        .ports(vec![1]);
    c.bench_function("fig12_port_occupancy", |b| {
        b.iter(|| {
            let sweep = bench_experiment().sweep(&grid);
            format!("{}", Fig12(&sweep))
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
);
criterion_main!(benches);

//! Criterion bench: regenerates Figure 13 (useful words per wide-bus access) on a reduced workload subset.
//!
//! The purpose of the bench is twofold: it tracks the simulator's own
//! performance over time, and `cargo bench` doubles as a smoke test that the
//! figure can be regenerated end to end.  The `repro` binary prints the full
//! figure for comparison with the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use sdv_bench::{bench_run_config, bench_workloads};
use sdv_sim::fig13;

fn bench(c: &mut Criterion) {
    let rc = bench_run_config();
    let workloads = bench_workloads();
    c.bench_function("fig13_wide_bus", |b| b.iter(|| fig13(&rc, &workloads)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
);
criterion_main!(benches);

//! Criterion bench: regenerates the headline speed-up comparison of §1/§6 on a reduced workload subset.
//!
//! The purpose of the bench is twofold: it tracks the simulator's own
//! performance over time, and `cargo bench` doubles as a smoke test that the
//! figure can be regenerated end to end.  The `repro` binary prints the full
//! figure for comparison with the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use sdv_bench::{bench_run_config, bench_workloads};
use sdv_sim::headline;

fn bench(c: &mut Criterion) {
    let rc = bench_run_config();
    let workloads = bench_workloads();
    c.bench_function("headline_speedup", |b| b.iter(|| headline(&rc, &workloads)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
);
criterion_main!(benches);

//! Ablation: vector length (elements per vector register).
//!
//! The paper chooses 4 elements because the average vectorizable run length is
//! short (§4.1); the bench sweeps 2/4/8 elements.  Each iteration runs one
//! cell through a fresh [`sdv_sim::RunEngine`] so the memo cache never hides
//! the simulation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdv_bench::bench_run_config;
use sdv_core::DvConfig;
use sdv_sim::{ProcessorConfig, RunEngine, Workload};

fn bench(c: &mut Criterion) {
    let rc = bench_run_config();
    let mut group = c.benchmark_group("ablation_vector_length");
    group.sample_size(10);
    for vl in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(vl), &vl, |b, &vl| {
            let cfg = ProcessorConfig::builder()
                .dv_config(DvConfig {
                    vector_length: vl,
                    ..DvConfig::default()
                })
                .build();
            b.iter(|| RunEngine::new(rc).run_cell(&cfg, Workload::Applu));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation: vector length (elements per vector register).
//!
//! The paper chooses 4 elements because the average vectorizable run length is
//! short (§4.1); the bench sweeps 2/4/8 elements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdv_bench::bench_run_config;
use sdv_core::DvConfig;
use sdv_sim::{run_workload, PortKind, ProcessorConfig, Workload};

fn bench(c: &mut Criterion) {
    let rc = bench_run_config();
    let mut group = c.benchmark_group("ablation_vector_length");
    group.sample_size(10);
    for vl in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(vl), &vl, |b, &vl| {
            let dv = DvConfig {
                vector_length: vl,
                ..DvConfig::default()
            };
            let cfg = ProcessorConfig::four_way(1, PortKind::Wide).with_dv_config(dv);
            b.iter(|| run_workload(Workload::Applu, &cfg, &rc))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

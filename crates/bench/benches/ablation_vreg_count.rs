//! Ablation: how the number of vector registers affects the vectorized IPC.
//!
//! DESIGN.md calls this out as the mechanism's most critical resource (§3.3);
//! the bench sweeps the register-file size on a fixed workload.  Each
//! iteration runs one cell through a fresh [`sdv_sim::RunEngine`] so the memo
//! cache never hides the simulation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdv_bench::bench_run_config;
use sdv_core::DvConfig;
use sdv_sim::{ProcessorConfig, RunEngine, Workload};

fn bench(c: &mut Criterion) {
    let rc = bench_run_config();
    let mut group = c.benchmark_group("ablation_vreg_count");
    group.sample_size(10);
    for regs in [16usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(regs), &regs, |b, &regs| {
            let cfg = ProcessorConfig::builder()
                .dv_config(DvConfig {
                    vector_registers: regs,
                    ..DvConfig::default()
                })
                .build();
            b.iter(|| RunEngine::new(rc).run_cell(&cfg, Workload::Swim));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

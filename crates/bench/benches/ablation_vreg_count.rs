//! Ablation: how the number of vector registers affects the vectorized IPC.
//!
//! DESIGN.md calls this out as the mechanism's most critical resource (§3.3);
//! the bench sweeps the register-file size on a fixed workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdv_bench::bench_run_config;
use sdv_core::DvConfig;
use sdv_sim::{run_workload, PortKind, ProcessorConfig, Workload};

fn bench(c: &mut Criterion) {
    let rc = bench_run_config();
    let mut group = c.benchmark_group("ablation_vreg_count");
    group.sample_size(10);
    for regs in [16usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(regs), &regs, |b, &regs| {
            let dv = DvConfig {
                vector_registers: regs,
                ..DvConfig::default()
            };
            let cfg = ProcessorConfig::four_way(1, PortKind::Wide).with_dv_config(dv);
            b.iter(|| run_workload(Workload::Swim, &cfg, &rc))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

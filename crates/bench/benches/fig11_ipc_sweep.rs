//! Criterion bench: regenerates Figure 11 (IPC across ports and variants) on a reduced workload subset.
//!
//! The purpose of the bench is twofold: it tracks the simulator's own
//! performance over time, and `cargo bench` doubles as a smoke test that the
//! figure can be regenerated end to end.  The `repro` binary prints the full
//! figure for comparison with the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use sdv_bench::{bench_run_config, bench_workloads};
use sdv_sim::{port_sweep, Fig11, MachineWidth};

fn bench(c: &mut Criterion) {
    let rc = bench_run_config();
    let workloads = bench_workloads();
    c.bench_function("fig11_ipc_sweep", |b| {
        b.iter(|| {
            let sweep = port_sweep(&rc, &workloads, &[MachineWidth::FourWay], &[1, 4]);
            format!("{}", Fig11(&sweep))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
);
criterion_main!(benches);

//! Criterion bench: regenerates Figure 11 (IPC across ports and variants) on a reduced workload subset.
//!
//! The purpose of the bench is twofold: it tracks the simulator's own
//! performance over time, and `cargo bench` doubles as a smoke test that the
//! figure can be regenerated end to end.  A fresh [`sdv_bench::bench_experiment`]
//! is created per iteration so the session memo cache never turns later
//! iterations into cache hits; the `repro` binary prints the full figure for
//! comparison with the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use sdv_bench::bench_experiment;
use sdv_sim::{Fig11, MachineWidth, SweepGrid};

fn bench(c: &mut Criterion) {
    let grid = SweepGrid::new()
        .widths(vec![MachineWidth::FourWay])
        .ports(vec![1, 4]);
    c.bench_function("fig11_ipc_sweep", |b| {
        b.iter(|| {
            let sweep = bench_experiment().sweep(&grid);
            format!("{}", Fig11(&sweep))
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
);
criterion_main!(benches);

//! Criterion micro-bench for the PR-4 hot paths: `Cache::access` under
//! hit-heavy and miss-heavy mixes (way-predicted fast path vs the `NaiveScan`
//! reference) and the batched emulator hand-off (`Emulator::step_group` vs
//! per-instruction `step`).
//!
//! Like the figure benches, `cargo bench -- --test` doubles as a smoke test;
//! the absolute numbers feed the "make the per-access hot path O(1)" work
//! tracked in `BENCH_pr4.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdv_emu::Emulator;
use sdv_mem::{Cache, CacheConfig, CacheModel};
use sdv_sim::Workload;

/// Hit-heavy stream: sequential words through a working set that fits in the
/// L1 (one cold pass, then in-cache re-reads with occasional writes).
fn cache_stream_hits(model: CacheModel) -> u64 {
    let mut cache = Cache::with_model(CacheConfig::l1d_table1(), model);
    let mut hits = 0;
    for pass in 0..4u64 {
        for addr in (0..16 * 1024u64).step_by(8) {
            if cache
                .access(black_box(addr), pass == 3 && addr % 64 == 0)
                .hit
            {
                hits += 1;
            }
        }
    }
    hits
}

/// Miss-heavy stream: page-strided addresses that collide in a few sets, so
/// nearly every access is a fill plus an eviction (many dirty).
fn cache_stream_misses(model: CacheModel) -> u64 {
    let mut cache = Cache::with_model(CacheConfig::l1d_table1(), model);
    let mut writebacks = 0;
    for round in 0..8u64 {
        for line in 0..1024u64 {
            let addr = line * 64 * 1024 + (line % 8) * 32 + round;
            if cache
                .access(black_box(addr), line % 2 == 0)
                .writeback
                .is_some()
            {
                writebacks += 1;
            }
        }
    }
    writebacks
}

/// Retires `Workload::Compress` one instruction at a time.
fn emulate_stepwise(max_insts: u64) -> u64 {
    let program = Workload::Compress.build(1);
    let mut emu = Emulator::new(&program);
    let mut n = 0;
    while n < max_insts {
        match emu.step() {
            Ok(_) => n += 1,
            Err(_) => break,
        }
    }
    n
}

/// Retires the same stream in fetch-group batches.
fn emulate_grouped(max_insts: u64, group: usize) -> u64 {
    let program = Workload::Compress.build(1);
    let mut emu = Emulator::new(&program);
    let mut buf = Vec::with_capacity(group);
    let mut n = 0;
    while n < max_insts {
        buf.clear();
        match emu.step_group(group.min((max_insts - n) as usize), true, &mut buf) {
            Ok(k) => n += k as u64,
            Err(_) => break,
        }
    }
    n
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhot");
    group.bench_function("cache_hits_fastpath", |b| {
        b.iter(|| cache_stream_hits(CacheModel::FastPath));
    });
    group.bench_function("cache_hits_naive", |b| {
        b.iter(|| cache_stream_hits(CacheModel::NaiveScan));
    });
    group.bench_function("cache_misses_fastpath", |b| {
        b.iter(|| cache_stream_misses(CacheModel::FastPath));
    });
    group.bench_function("cache_misses_naive", |b| {
        b.iter(|| cache_stream_misses(CacheModel::NaiveScan));
    });
    group.bench_function("emulate_step", |b| b.iter(|| emulate_stepwise(30_000)));
    group.bench_function("emulate_step_group4", |b| {
        b.iter(|| emulate_grouped(30_000, 4));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
);
criterion_main!(benches);

//! Criterion micro-bench for the PR-8 busy-cycle fast paths: the batched
//! dispatch/commit loops (`BusyPath::Batched`) against the entry-at-a-time
//! reference loops (`BusyPath::Legacy`) on the two mixes they target.
//!
//! * `dispatch_heavy` — a vectorizing single-port wide config on `swim`:
//!   strided floating-point loads keep the decoder emitting wide DV fetch
//!   groups, so the batched VRMT pass and bulk wakeup-scoreboard setup
//!   dominate.
//! * `commit_heavy` — a four-way scalar config on `m88ksim`: high scalar ILP
//!   with few stores produces long ready runs at the ROB head, so the
//!   run-retire drain (one stats flush and one head advance per run)
//!   dominates.
//!
//! Both paths are bit-identical by construction (see `soa_matches_aos` and
//! the golden-stats pins); this bench tracks the *throughput* gap only.
//! Like the figure benches, `cargo bench -- --test` doubles as a smoke test.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdv_sim::{BusyPath, PortKind, Processor, ProcessorConfig, Workload};

const MAX_INSTS: u64 = 60_000;

/// Runs `workload` under `cfg` on the given busy path and returns the cycle
/// count (consumed by `black_box` so the simulation cannot be elided).
fn run_cycles(workload: Workload, cfg: &ProcessorConfig, path: BusyPath) -> u64 {
    let program = workload.build(2);
    let mut proc = Processor::new(cfg, &program);
    proc.set_busy_path(path);
    proc.run(black_box(MAX_INSTS)).cycles
}

fn dispatch_heavy_config() -> ProcessorConfig {
    ProcessorConfig::four_way(1, PortKind::Wide).with_vectorization(true)
}

fn commit_heavy_config() -> ProcessorConfig {
    ProcessorConfig::four_way(4, PortKind::Scalar)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipehot");
    let dispatch_cfg = dispatch_heavy_config();
    group.bench_function("dispatch_heavy_batched", |b| {
        b.iter(|| run_cycles(Workload::Swim, &dispatch_cfg, BusyPath::Batched));
    });
    group.bench_function("dispatch_heavy_legacy", |b| {
        b.iter(|| run_cycles(Workload::Swim, &dispatch_cfg, BusyPath::Legacy));
    });
    let commit_cfg = commit_heavy_config();
    group.bench_function("commit_heavy_batched", |b| {
        b.iter(|| run_cycles(Workload::M88ksim, &commit_cfg, BusyPath::Batched));
    });
    group.bench_function("commit_heavy_legacy", |b| {
        b.iter(|| run_cycles(Workload::M88ksim, &commit_cfg, BusyPath::Legacy));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
);
criterion_main!(benches);

//! The L1 → L2 → memory timing path for data and instruction accesses.
//!
//! Both paths are built for a cheap common case:
//!
//! * [`DataMemory::access`] resolves an L1 hit with a **single** tag lookup
//!   ([`Cache::try_hit`]) instead of the old `probe`-then-`access` double
//!   scan; only real misses pay for victim selection.
//! * The MSHR file is a deque ordered by completion cycle, so retiring
//!   completed misses pops from the front instead of a retain-scan over the
//!   whole file on every access.
//! * [`InstMemory::fetch_latency`] keeps a one-entry last-line buffer:
//!   sequential fetch re-touches the same I-line `line_bytes / 4` times, and
//!   each re-touch is counted without re-walking the set.

use crate::cache::{Cache, CacheConfig, CacheStats};
use std::collections::VecDeque;

/// Latency and capacity parameters of the whole hierarchy (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemHierarchyConfig {
    /// Geometry of the L1 data cache.
    pub l1d: CacheConfig,
    /// Geometry of the L1 instruction cache.
    pub l1i: CacheConfig,
    /// Geometry of the unified L2 cache.
    pub l2: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_hit_cycles: u64,
    /// Total latency of an access served by the L2 (the paper's "6 cycle miss
    /// time" for L1 / "6 cycles hit time" for L2).
    pub l2_hit_cycles: u64,
    /// Total latency of an access served by main memory (L2 hit time plus the
    /// paper's "18 cycle miss time").
    pub memory_cycles: u64,
    /// Maximum number of outstanding L1 data misses (MSHRs).
    pub max_outstanding_misses: usize,
}

impl MemHierarchyConfig {
    /// The memory system of Table 1.
    #[must_use]
    pub fn table1() -> Self {
        MemHierarchyConfig {
            l1d: CacheConfig::l1d_table1(),
            l1i: CacheConfig::l1i_table1(),
            l2: CacheConfig::l2_table1(),
            l1_hit_cycles: 1,
            l2_hit_cycles: 6,
            memory_cycles: 24,
            max_outstanding_misses: 16,
        }
    }
}

impl Default for MemHierarchyConfig {
    fn default() -> Self {
        MemHierarchyConfig::table1()
    }
}

/// An in-flight L1 miss.
#[derive(Debug, Clone, Copy)]
struct Miss {
    line_addr: u64,
    done_cycle: u64,
}

/// The data side of the memory hierarchy: L1-D backed by L2 backed by memory,
/// with a bounded number of outstanding misses.
///
/// The component is *timing-directed*: it tracks tags and latencies, while the
/// actual data values live in the functional emulator.  [`DataMemory::access`]
/// returns the cycle at which the access completes, or `None` when all MSHRs
/// are busy and the access must be retried later.
#[derive(Debug, Clone)]
pub struct DataMemory {
    cfg: MemHierarchyConfig,
    l1: Cache,
    l2: Cache,
    /// In-flight misses, ordered by `done_cycle` (ascending): retirement pops
    /// from the front instead of scanning the whole file.
    outstanding: VecDeque<Miss>,
    mshr_full_events: u64,
    accesses: u64,
    line_accesses: u64,
}

impl DataMemory {
    /// Creates an empty hierarchy.
    #[must_use]
    pub fn new(cfg: &MemHierarchyConfig) -> Self {
        DataMemory {
            cfg: *cfg,
            l1: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            outstanding: VecDeque::new(),
            mshr_full_events: 0,
            accesses: 0,
            line_accesses: 0,
        }
    }

    /// The L1 data-cache line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u64 {
        self.cfg.l1d.line_bytes as u64
    }

    /// The line-aligned address containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        self.l1.line_addr(addr)
    }

    /// Removes completed misses from the MSHR file.  The file is ordered by
    /// completion cycle, so this is a lazy front-pop, not a retain-scan: the
    /// common no-op case costs one comparison.
    pub fn retire_misses(&mut self, now: u64) {
        while self
            .outstanding
            .front()
            .is_some_and(|m| m.done_cycle <= now)
        {
            self.outstanding.pop_front();
        }
    }

    /// Completion cycle of the next outstanding miss to retire, if any.
    ///
    /// The MSHR file is kept sorted by completion cycle, so this is a front
    /// peek.  The macro-stepping main loop uses it as a wakeup candidate when
    /// the pipeline is frozen on an outstanding miss; entries whose
    /// `done_cycle` has already passed (but have not yet been lazily retired)
    /// are still reported, which only makes the candidate conservative.
    #[must_use]
    pub fn next_miss_done_cycle(&self) -> Option<u64> {
        self.outstanding.front().map(|m| m.done_cycle)
    }

    /// Performs one data access starting at cycle `now`.
    ///
    /// Returns the cycle at which the data is available (for loads) or the
    /// write is accepted (for stores), or `None` if no MSHR is free.
    pub fn access(&mut self, addr: u64, is_write: bool, now: u64) -> Option<u64> {
        self.retire_misses(now);
        self.accesses += 1;
        self.line_accesses += 1;
        let line = self.l1.line_addr(addr);

        // A miss to a line that is already being fetched merges with it.
        // (A line has at most one in-flight miss: later accesses merge here
        // instead of allocating, so the scan never has a second match.)
        if let Some(m) = self.outstanding.iter().find(|m| m.line_addr == line) {
            let done = m.done_cycle.max(now + self.cfg.l1_hit_cycles);
            // The line will be present once the outstanding fill completes.
            return Some(done);
        }

        // The common case: one combined lookup resolves the hit, updates LRU
        // and the dirty bit, and we are done.
        if self.l1.try_hit(addr, is_write) {
            return Some(now + self.cfg.l1_hit_cycles);
        }

        // L1 miss: need an MSHR before the line may be allocated.
        if self.outstanding.len() >= self.cfg.max_outstanding_misses {
            self.mshr_full_events += 1;
            return None;
        }
        let l1_out = self.l1.allocate_miss(addr, is_write);

        // Dirty victim is written back into L2 (no extra latency modelled for
        // the writeback itself, it proceeds in the background).
        if let Some(victim) = l1_out.writeback {
            let _ = self.l2.access(victim, true);
        }

        let l2_out = self.l2.access(addr, is_write);
        let done = if l2_out.hit {
            now + self.cfg.l2_hit_cycles
        } else {
            now + self.cfg.memory_cycles
        };
        // Insert in completion order (an L2 hit can finish before an older
        // memory-bound miss); the file is tiny, so the shift is cheap.
        let pos = self.outstanding.partition_point(|m| m.done_cycle <= done);
        self.outstanding.insert(
            pos,
            Miss {
                line_addr: line,
                done_cycle: done,
            },
        );
        Some(done)
    }

    /// Whether `addr` currently hits in the L1 without changing any state.
    #[must_use]
    pub fn probe_l1(&self, addr: u64) -> bool {
        self.l1.probe(addr)
    }

    /// L1 data-cache statistics.
    #[must_use]
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics (data side only; the instruction path keeps its own L2 model).
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Number of accesses rejected because every MSHR was busy.
    #[must_use]
    pub fn mshr_full_events(&self) -> u64 {
        self.mshr_full_events
    }

    /// L1 data-cache way-predictor statistics (predicted-way vs scan hits).
    #[must_use]
    pub fn way_predict_stats(&self) -> crate::cache::WayPredictStats {
        self.l1.way_predict_stats()
    }

    /// Total number of accesses presented to the hierarchy.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of outstanding misses at `now`.
    pub fn outstanding_misses(&mut self, now: u64) -> usize {
        self.retire_misses(now);
        self.outstanding.len()
    }
}

/// The instruction-fetch side: L1-I backed by L2 backed by memory.
///
/// Fetch is modelled at line granularity: the front end asks for the latency
/// of fetching the line containing the fetch PC.
#[derive(Debug, Clone)]
pub struct InstMemory {
    cfg: MemHierarchyConfig,
    l1: Cache,
    l2: Cache,
    /// The I-line the previous fetch resolved: a one-entry line buffer in
    /// front of the L1.
    last_line: Option<u64>,
}

impl InstMemory {
    /// Creates an empty instruction-memory path.
    #[must_use]
    pub fn new(cfg: &MemHierarchyConfig) -> Self {
        InstMemory {
            cfg: *cfg,
            l1: Cache::new(cfg.l1i),
            l2: Cache::new(cfg.l2),
            last_line: None,
        }
    }

    /// The latency, in cycles, of fetching the line containing `pc`.
    ///
    /// Sequential fetch (and a front end re-polling the same group while a
    /// miss is in flight) asks for the same line over and over; the last-line
    /// buffer short-circuits that case.  The line is necessarily still
    /// resident and already MRU — only an access to a *different* line could
    /// evict it, and that access would have replaced the buffer — so the
    /// short-circuit counts the hit and returns without re-walking the set,
    /// leaving every `CacheStats` counter identical to a full lookup.  (Even
    /// after a miss the follow-up is an L1 hit: the miss allocated the line.)
    pub fn fetch_latency(&mut self, pc: u64) -> u64 {
        let line = self.l1.line_addr(pc);
        if self.last_line == Some(line) {
            self.l1.count_repeat_hit();
            return self.cfg.l1_hit_cycles;
        }
        self.last_line = Some(line);
        if self.l1.access(pc, false).hit {
            self.cfg.l1_hit_cycles
        } else if self.l2.access(pc, false).hit {
            self.cfg.l2_hit_cycles
        } else {
            self.cfg.memory_cycles
        }
    }

    /// The L1-I line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u64 {
        self.cfg.l1i.line_bytes as u64
    }

    /// L1 instruction-cache statistics.
    #[must_use]
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_follow_the_hierarchy() {
        let cfg = MemHierarchyConfig::table1();
        let mut d = DataMemory::new(&cfg);
        // Cold: memory latency.
        assert_eq!(d.access(0x1000, false, 0), Some(cfg.memory_cycles));
        // Hot in L1.
        assert_eq!(d.access(0x1000, false, 100), Some(100 + cfg.l1_hit_cycles));
        // Same line, different word: still an L1 hit.
        assert_eq!(d.access(0x1008, false, 101), Some(101 + cfg.l1_hit_cycles));
    }

    #[test]
    fn l2_hits_are_faster_than_memory() {
        let cfg = MemHierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 64,
                line_bytes: 32,
                ways: 1,
            },
            ..MemHierarchyConfig::table1()
        };
        let mut d = DataMemory::new(&cfg);
        d.access(0x0, false, 0); // line A -> L1 and L2
        d.access(0x20, false, 0); // line B
        d.access(0x40, false, 0); // line C evicts A from tiny L1 (set 0), still in L2
        let lat = d.access(0x0, false, 1000).unwrap() - 1000;
        assert_eq!(lat, cfg.l2_hit_cycles);
    }

    #[test]
    fn mshr_limit_rejects_accesses() {
        let cfg = MemHierarchyConfig {
            max_outstanding_misses: 2,
            ..MemHierarchyConfig::table1()
        };
        let mut d = DataMemory::new(&cfg);
        assert!(d.access(0x0000, false, 0).is_some());
        assert!(d.access(0x1000, false, 0).is_some());
        assert!(d.access(0x2000, false, 0).is_none(), "third miss rejected");
        assert_eq!(d.mshr_full_events(), 1);
        // After the misses complete, new ones are accepted again.
        let later = cfg.memory_cycles + 1;
        assert!(d.access(0x2000, false, later).is_some());
        assert_eq!(d.outstanding_misses(later), 1);
    }

    #[test]
    fn misses_to_same_line_merge() {
        let cfg = MemHierarchyConfig {
            max_outstanding_misses: 1,
            ..MemHierarchyConfig::table1()
        };
        let mut d = DataMemory::new(&cfg);
        let done = d.access(0x1000, false, 0).unwrap();
        // Second access to the same line merges with the outstanding miss
        // instead of needing a second MSHR.
        let done2 = d.access(0x1008, false, 2).unwrap();
        assert_eq!(done2, done);
        assert_eq!(d.mshr_full_events(), 0);
    }

    #[test]
    fn stores_allocate_and_dirty_lines() {
        let cfg = MemHierarchyConfig::table1();
        let mut d = DataMemory::new(&cfg);
        d.access(0x1000, true, 0);
        assert!(d.probe_l1(0x1000));
        assert_eq!(d.l1_stats().misses, 1);
        assert_eq!(d.accesses(), 1);
    }

    #[test]
    fn mshrs_retire_out_of_allocation_order() {
        // An L2-served miss allocated *after* a memory-bound miss completes
        // first; the done-cycle-ordered file must free it on time.
        let cfg = MemHierarchyConfig {
            max_outstanding_misses: 2,
            ..MemHierarchyConfig::table1()
        };
        let mut d = DataMemory::new(&cfg);
        // Warm line A into L2, then evict it from L1 via B (both set-map
        // differently in L2, so A stays there).
        d.access(0x0000, false, 0);
        let warm = cfg.memory_cycles + 1;
        // A memory-bound miss (line C) followed by an L2 hit (line A after L1
        // eviction) — to force A out of L1 use a tiny L1.
        let cfg2 = MemHierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 64,
                line_bytes: 32,
                ways: 1,
            },
            max_outstanding_misses: 2,
            ..MemHierarchyConfig::table1()
        };
        let mut d = DataMemory::new(&cfg2);
        d.access(0x00, false, 0); // A -> L1 set 0, L2
        d.access(0x40, false, 0); // B -> L1 set 0 evicts A
        let now = warm + 100;
        let slow = d.access(0x2000, false, now).unwrap(); // memory-bound
        let fast = d.access(0x00, false, now).unwrap(); // L2 hit, evicts B
        assert!(fast < slow, "the younger miss completes first");
        // At `fast` the fast miss has retired: both MSHRs cannot be busy.
        assert_eq!(d.outstanding_misses(fast), 1);
        assert_eq!(d.outstanding_misses(slow), 0);
    }

    #[test]
    fn inst_memory_latency() {
        let cfg = MemHierarchyConfig::table1();
        let mut i = InstMemory::new(&cfg);
        assert_eq!(i.fetch_latency(0x1000), cfg.memory_cycles);
        assert_eq!(i.fetch_latency(0x1000), cfg.l1_hit_cycles);
        assert_eq!(
            i.fetch_latency(0x1004),
            cfg.l1_hit_cycles,
            "same 64-byte line"
        );
        assert_eq!(i.line_bytes(), 64);
        assert_eq!(i.l1_stats().accesses, 3);
    }

    #[test]
    fn inst_line_buffer_is_invisible_in_the_counters() {
        let cfg = MemHierarchyConfig::table1();
        let mut i = InstMemory::new(&cfg);
        // Sequential fetch through one 64-byte line: 1 miss + 15 buffered hits.
        for word in 0..16u64 {
            let lat = i.fetch_latency(0x1000 + word * 4);
            if word == 0 {
                assert_eq!(lat, cfg.memory_cycles);
            } else {
                assert_eq!(lat, cfg.l1_hit_cycles);
            }
        }
        assert_eq!(i.l1_stats().accesses, 16);
        assert_eq!(i.l1_stats().hits, 15);
        assert_eq!(i.l1_stats().misses, 1);
        // Alternating lines defeat the buffer but still hit the L1.
        i.fetch_latency(0x1040);
        assert_eq!(i.fetch_latency(0x1000), cfg.l1_hit_cycles);
        assert_eq!(i.l1_stats().misses, 2);
        assert_eq!(i.l1_stats().hits, 16);
    }
}

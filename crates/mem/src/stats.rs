//! Wide-bus effectiveness accounting (Figure 13).

/// Counts, for every cache-line read performed over a wide bus, how many of
/// the words brought in were actually useful, plus the purely speculative
/// accesses that served no committed work at all.
///
/// The paper's Figure 13 reports the distribution over {1, 2, 3, 4} useful
/// words and an "Unused" category for speculative accesses whose data was
/// never consumed.
///
/// ```
/// use sdv_mem::WideBusStats;
///
/// let mut w = WideBusStats::new(4);
/// w.record(3);
/// w.record(4);
/// w.record(0); // speculative access, nothing used
/// assert_eq!(w.total(), 3);
/// assert!((w.fraction_used(4) - 1.0 / 3.0).abs() < 1e-12);
/// assert!((w.fraction_unused() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideBusStats {
    words_per_line: usize,
    used: Vec<u64>,
    unused: u64,
}

impl WideBusStats {
    /// Creates a collector for lines of `words_per_line` words.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_line` is zero.
    #[must_use]
    pub fn new(words_per_line: usize) -> Self {
        assert!(words_per_line > 0, "a line holds at least one word");
        WideBusStats {
            words_per_line,
            used: vec![0; words_per_line + 1],
            unused: 0,
        }
    }

    /// Number of words in a line.
    #[must_use]
    pub fn words_per_line(&self) -> usize {
        self.words_per_line
    }

    /// Rebuilds a collector from raw counts (used by the on-disk result
    /// cache).  `used[k]` is the number of accesses with exactly `k` useful
    /// words; index 0 is unused and must be zero.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_line` is zero or `used` has the wrong length.
    #[must_use]
    pub fn from_counts(words_per_line: usize, used: Vec<u64>, unused: u64) -> Self {
        assert!(words_per_line > 0, "a line holds at least one word");
        assert_eq!(used.len(), words_per_line + 1, "one count per word total");
        WideBusStats {
            words_per_line,
            used,
            unused,
        }
    }

    /// The raw per-useful-word-count histogram (`[0]` is always zero).
    #[must_use]
    pub fn used_counts(&self) -> &[u64] {
        &self.used
    }

    /// Records one line read that contributed `useful_words` useful words
    /// (0 means the access turned out to be useless speculation).
    ///
    /// # Panics
    ///
    /// Panics if `useful_words` exceeds the line size.
    pub fn record(&mut self, useful_words: usize) {
        assert!(
            useful_words <= self.words_per_line,
            "more useful words than the line holds"
        );
        if useful_words == 0 {
            self.unused += 1;
        } else {
            self.used[useful_words] += 1;
        }
    }

    /// Total number of recorded line reads.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.unused + self.used.iter().sum::<u64>()
    }

    /// Number of accesses with exactly `useful_words` useful words.
    #[must_use]
    pub fn count_used(&self, useful_words: usize) -> u64 {
        self.used.get(useful_words).copied().unwrap_or(0)
    }

    /// Number of accesses that served no useful word.
    #[must_use]
    pub fn count_unused(&self) -> u64 {
        self.unused
    }

    /// Fraction of accesses with exactly `useful_words` useful words.
    #[must_use]
    pub fn fraction_used(&self, useful_words: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count_used(useful_words) as f64 / total as f64
        }
    }

    /// Fraction of accesses that were pure, unused speculation.
    #[must_use]
    pub fn fraction_unused(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.unused as f64 / total as f64
        }
    }

    /// Average number of useful words per access.
    #[must_use]
    pub fn mean_useful_words(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .used
            .iter()
            .enumerate()
            .map(|(w, &n)| w as u64 * n)
            .sum();
        sum as f64 / total as f64
    }

    /// Merges another collector (with the same line size) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the line sizes differ.
    pub fn merge(&mut self, other: &WideBusStats) {
        assert_eq!(
            self.words_per_line, other.words_per_line,
            "line sizes must match"
        );
        for (a, b) in self.used.iter_mut().zip(other.used.iter()) {
            *a += b;
        }
        self.unused += other.unused;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let mut w = WideBusStats::new(4);
        for u in [1usize, 2, 2, 3, 4, 4, 0] {
            w.record(u);
        }
        let sum: f64 = (1..=4).map(|k| w.fraction_used(k)).sum::<f64>() + w.fraction_unused();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(w.total(), 7);
        assert_eq!(w.count_used(2), 2);
        assert_eq!(w.count_unused(), 1);
    }

    #[test]
    fn mean_useful_words() {
        let mut w = WideBusStats::new(4);
        w.record(4);
        w.record(2);
        assert!((w.mean_useful_words() - 3.0).abs() < 1e-12);
        assert_eq!(WideBusStats::new(4).mean_useful_words(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = WideBusStats::new(4);
        a.record(1);
        let mut b = WideBusStats::new(4);
        b.record(0);
        b.record(4);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_used(4), 1);
        assert_eq!(a.count_unused(), 1);
    }

    #[test]
    #[should_panic(expected = "more useful words")]
    fn too_many_words_panics() {
        let mut w = WideBusStats::new(4);
        w.record(5);
    }

    #[test]
    #[should_panic(expected = "line sizes must match")]
    fn merge_mismatched_panics() {
        let mut a = WideBusStats::new(4);
        a.merge(&WideBusStats::new(8));
    }
}

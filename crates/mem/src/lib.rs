//! Memory-hierarchy timing models for the SDV simulator.
//!
//! This crate provides the structures behind Table 1's memory system:
//!
//! * [`Cache`]: a set-associative, write-back, write-allocate cache with LRU
//!   replacement (used for the L1 instruction cache, L1 data cache and the
//!   unified L2),
//! * [`DataMemory`]: the L1-D → L2 → main-memory timing path with a bounded
//!   number of outstanding misses (MSHRs),
//! * [`InstMemory`]: the instruction-fetch path (L1-I → L2 → memory),
//! * [`PortSet`]: the L1 data-cache ports, either *scalar* (one word per
//!   access) or *wide* (one full cache line per access, §3.7 of the paper),
//!   with the occupancy accounting behind Figure 12,
//! * [`WideBusStats`]: the useful-words-per-line accounting behind Figure 13.
//!
//! ```
//! use sdv_mem::{DataMemory, MemHierarchyConfig};
//!
//! let mut dmem = DataMemory::new(&MemHierarchyConfig::table1());
//! let first = dmem.access(0x8000, false, 0).expect("mshr available");
//! assert!(first > 1, "cold miss goes to memory");
//! let again = dmem.access(0x8000, false, first).expect("mshr available");
//! assert_eq!(again, first + 1, "second access hits in L1");
//! ```

pub mod cache;
pub mod hierarchy;
pub mod port;
pub mod stats;

pub use cache::{Cache, CacheConfig, CacheModel, CacheStats, WayPredictStats};
pub use hierarchy::{DataMemory, InstMemory, MemHierarchyConfig};
pub use port::{PortKind, PortSet, PortStats};
pub use stats::WideBusStats;

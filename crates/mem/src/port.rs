//! L1 data-cache ports.
//!
//! The paper compares three memory front-ends (§3.7, §4.3):
//!
//! * `xpnoIM`: `x` scalar ports, each serving one word per access,
//! * `xpIM`:   `x` *wide* ports, each bringing a whole cache line so that all
//!   pending loads to that line can be served by a single access,
//! * `xpV`:    wide ports plus dynamic vectorization.
//!
//! [`PortSet`] models the structural hazard (how many accesses can start per
//! cycle) and collects the occupancy statistics of Figure 12.

use std::fmt;

/// The kind of L1 data-cache port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// One word per access.
    Scalar,
    /// One full cache line per access (a "wide bus").
    Wide,
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortKind::Scalar => write!(f, "scalar"),
            PortKind::Wide => write!(f, "wide"),
        }
    }
}

/// Occupancy counters for a port set (Figure 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Number of port-grants issued (accesses started).
    pub grants: u64,
    /// Number of cycles during which the port set was observed.
    pub cycles: u64,
    /// Number of accesses that could not start because every port was busy.
    pub conflicts: u64,
}

impl PortStats {
    /// Average fraction of ports busy per cycle (the paper's "port occupancy").
    #[must_use]
    pub fn occupancy(&self, ports: usize) -> f64 {
        if self.cycles == 0 || ports == 0 {
            0.0
        } else {
            self.grants as f64 / (self.cycles as f64 * ports as f64)
        }
    }
}

/// A set of identical L1 data-cache ports.
///
/// Each port can start at most one access per cycle; the caller advances the
/// model with [`PortSet::begin_cycle`] once per simulated cycle and then
/// requests grants with [`PortSet::try_acquire`].
///
/// ```
/// use sdv_mem::{PortKind, PortSet};
///
/// let mut ports = PortSet::new(PortKind::Wide, 2);
/// ports.begin_cycle();
/// assert!(ports.try_acquire());
/// assert!(ports.try_acquire());
/// assert!(!ports.try_acquire(), "only two ports");
/// ports.begin_cycle();
/// assert!(ports.try_acquire());
/// ```
#[derive(Debug, Clone)]
pub struct PortSet {
    kind: PortKind,
    count: usize,
    used_this_cycle: usize,
    stats: PortStats,
}

impl PortSet {
    /// Creates a set of `count` ports of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn new(kind: PortKind, count: usize) -> Self {
        assert!(count > 0, "a processor needs at least one data-cache port");
        PortSet {
            kind,
            count,
            used_this_cycle: 0,
            stats: PortStats::default(),
        }
    }

    /// The port kind.
    #[must_use]
    pub fn kind(&self) -> PortKind {
        self.kind
    }

    /// Number of ports.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of words a single access can return (1 for scalar ports,
    /// `line_words` for wide ports).
    #[must_use]
    pub fn words_per_access(&self, line_words: usize) -> usize {
        match self.kind {
            PortKind::Scalar => 1,
            PortKind::Wide => line_words,
        }
    }

    /// Starts a new cycle: all ports become available again.
    pub fn begin_cycle(&mut self) {
        self.used_this_cycle = 0;
        self.stats.cycles += 1;
    }

    /// Bulk-charges `n` idle cycles to the occupancy statistics, exactly as
    /// if [`PortSet::begin_cycle`] had been called `n` times with no grant in
    /// between.  Used by the macro-stepping main loop to skip over stall
    /// windows while keeping Figure 12's occupancy denominator bit-identical
    /// to the per-cycle path.
    pub fn add_idle_cycles(&mut self, n: u64) {
        self.stats.cycles += n;
    }

    /// Tries to start an access this cycle.  Returns `false` (and records a
    /// conflict) if every port has already been used.
    pub fn try_acquire(&mut self) -> bool {
        if self.used_this_cycle < self.count {
            self.used_this_cycle += 1;
            self.stats.grants += 1;
            true
        } else {
            self.stats.conflicts += 1;
            false
        }
    }

    /// Number of ports still free this cycle.
    #[must_use]
    pub fn free_this_cycle(&self) -> usize {
        self.count - self.used_this_cycle
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> PortStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_limited_per_cycle() {
        let mut p = PortSet::new(PortKind::Scalar, 1);
        p.begin_cycle();
        assert!(p.try_acquire());
        assert!(!p.try_acquire());
        assert_eq!(p.free_this_cycle(), 0);
        p.begin_cycle();
        assert_eq!(p.free_this_cycle(), 1);
        assert!(p.try_acquire());
        assert_eq!(p.stats().grants, 2);
        assert_eq!(p.stats().conflicts, 1);
        assert_eq!(p.stats().cycles, 2);
    }

    #[test]
    fn occupancy_accounts_ports_and_cycles() {
        let mut p = PortSet::new(PortKind::Wide, 2);
        for used in [2usize, 1, 0, 1] {
            p.begin_cycle();
            for _ in 0..used {
                assert!(p.try_acquire());
            }
        }
        // 4 grants over 4 cycles * 2 ports = 0.5 occupancy.
        assert!((p.stats().occupancy(2) - 0.5).abs() < 1e-12);
        assert_eq!(PortStats::default().occupancy(2), 0.0);
    }

    #[test]
    fn words_per_access_depends_on_kind() {
        assert_eq!(PortSet::new(PortKind::Scalar, 1).words_per_access(4), 1);
        assert_eq!(PortSet::new(PortKind::Wide, 1).words_per_access(4), 4);
    }

    #[test]
    #[should_panic(expected = "at least one data-cache port")]
    fn zero_ports_panics() {
        let _ = PortSet::new(PortKind::Scalar, 0);
    }
}

//! Set-associative cache state (tags only — the simulator is timing-directed,
//! data values live in the functional emulator).
//!
//! Two interchangeable lookup models drive the same tag array:
//!
//! * [`CacheModel::FastPath`] (the default) keeps a per-set MRU **way
//!   predictor** — the predicted way is checked first, so the steady-state hit
//!   touches one tag instead of scanning the set — and compact per-set **age
//!   ranks** (a `0..ways` recency permutation per set) in place of the global
//!   `stamp`/`last_used` counters, so victim selection on a miss is a small
//!   `u8` max-scan instead of a full-set `min_by_key` over 64-bit stamps.
//! * [`CacheModel::NaiveScan`] is the original global-timestamp LRU scan,
//!   retained as a reference oracle: both models produce identical
//!   hit/miss/writeback/eviction sequences and [`CacheStats`] on any access
//!   stream (pinned by a property test in `tests/cache_properties.rs`).

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// 64 KB, 2-way, 32-byte lines: the paper's L1 data cache.
    #[must_use]
    pub fn l1d_table1() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 32,
            ways: 2,
        }
    }

    /// 64 KB, 2-way, 64-byte lines: the paper's L1 instruction cache.
    #[must_use]
    pub fn l1i_table1() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 64,
            ways: 2,
        }
    }

    /// 256 KB, 4-way, 32-byte lines: the paper's unified L2.
    #[must_use]
    pub fn l2_table1() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            line_bytes: 32,
            ways: 4,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sized, or not divisible into sets).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(self.size_bytes > 0 && self.line_bytes > 0 && self.ways > 0);
        let sets = self.size_bytes / (self.line_bytes * self.ways);
        assert!(
            sets > 0,
            "cache too small for its line size and associativity"
        );
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        sets
    }
}

/// Which lookup implementation a [`Cache`] uses (results are identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheModel {
    /// Way-predicted hit path with per-set age-rank LRU (the default).
    #[default]
    FastPath,
    /// The original full-set scan with global LRU stamps, kept as a
    /// reference oracle for equivalence tests.
    NaiveScan,
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate over all accesses (0 if the cache was never accessed).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Way-predictor accuracy counters (only advanced by [`CacheModel::FastPath`]).
///
/// Cache misses are not counted in either bucket: there is no way to predict
/// for a line that is absent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WayPredictStats {
    /// Hits served by the predicted way (single tag compare).
    pub predicted_hits: u64,
    /// Hits found in a different way than predicted (fell back to the scan).
    pub scan_hits: u64,
}

impl WayPredictStats {
    /// Total hits the predictor was consulted for.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.predicted_hits + self.scan_hits
    }

    /// Fraction of hits served by the predicted way (0 if there were none).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.predicted_hits as f64 / self.total() as f64
        }
    }
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Address of a dirty line that had to be written back, if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Global LRU stamp ([`CacheModel::NaiveScan`] only).
    last_used: u64,
    /// Per-set recency rank, 0 = MRU ([`CacheModel::FastPath`] only).  The
    /// valid lines of a set always hold a permutation of `0..valid_count`.
    age: u8,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// ```
/// use sdv_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 32, ways: 2 });
/// assert!(!c.access(0x1000, false).hit);
/// assert!(c.access(0x1000, false).hit);
/// assert!(c.access(0x1008, false).hit, "same line");
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    sets: usize,
    stamp: u64,
    stats: CacheStats,
    model: CacheModel,
    /// Per-set predicted (MRU) way.
    pred: Vec<u8>,
    way_stats: WayPredictStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache using the default fast-path model.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        Cache::with_model(cfg, CacheModel::default())
    }

    /// Creates an empty cache driven by the given lookup model.
    #[must_use]
    pub fn with_model(cfg: CacheConfig, model: CacheModel) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    last_used: 0,
                    age: 0,
                };
                sets * cfg.ways
            ],
            sets,
            stamp: 0,
            stats: CacheStats::default(),
            model,
            pred: vec![0; sets],
            way_stats: WayPredictStats::default(),
        }
    }

    /// The geometry of this cache.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// The lookup model driving this cache.
    #[must_use]
    pub fn model(&self) -> CacheModel {
        self.model
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Way-predictor accuracy counters (all-zero under [`CacheModel::NaiveScan`]).
    #[must_use]
    pub fn way_predict_stats(&self) -> WayPredictStats {
        self.way_stats
    }

    /// The line-aligned address containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes as u64) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / (self.cfg.line_bytes as u64 * self.sets as u64)
    }

    /// Checks for a hit without changing any state (no LRU update, no fill).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lines[set * self.cfg.ways..(set + 1) * self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Performs one access: on a miss the line is allocated (write-allocate),
    /// possibly evicting a victim whose writeback address is reported.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        if self.try_hit(addr, is_write) {
            AccessOutcome {
                hit: true,
                writeback: None,
            }
        } else {
            self.allocate_miss(addr, is_write)
        }
    }

    /// The hit half of an access: on a hit, counts it, updates the replacement
    /// state and the dirty bit, and returns `true`; on a miss nothing is
    /// counted and no state changes — the caller decides whether to follow up
    /// with [`Self::allocate_miss`] (the hierarchy skips it when no MSHR is
    /// free).
    pub fn try_hit(&mut self, addr: u64, is_write: bool) -> bool {
        match self.model {
            CacheModel::FastPath => self.try_hit_fast(addr, is_write),
            CacheModel::NaiveScan => self.try_hit_naive(addr, is_write),
        }
    }

    /// The miss half of an access: counts the miss, selects a victim (first
    /// invalid way, else LRU) and fills the line.  Must only be called after
    /// [`Self::try_hit`] returned `false` for the same address.
    pub fn allocate_miss(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.stats.accesses += 1;
        self.stats.misses += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways;
        let base = set * ways;

        // Victim: the first invalid way, else the LRU way.
        let victim_idx = match self.model {
            CacheModel::FastPath => {
                let mut victim = 0;
                let mut victim_age = 0u8;
                for (i, line) in self.lines[base..base + ways].iter().enumerate() {
                    if !line.valid {
                        victim = i;
                        break;
                    }
                    if line.age >= victim_age {
                        victim = i;
                        victim_age = line.age;
                    }
                }
                victim
            }
            CacheModel::NaiveScan => {
                let slice = &self.lines[base..base + ways];
                slice
                    .iter()
                    .enumerate()
                    .find(|(_, l)| !l.valid)
                    .map(|(i, _)| i)
                    .unwrap_or_else(|| {
                        slice
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, l)| l.last_used)
                            .map(|(i, _)| i)
                            .expect("ways > 0")
                    })
            }
        };

        let mut writeback = None;
        {
            let victim = &self.lines[base + victim_idx];
            if victim.valid && victim.dirty {
                self.stats.writebacks += 1;
                // Reconstruct the victim's line address from its tag and set.
                let line_bytes = self.cfg.line_bytes as u64;
                writeback = Some((victim.tag * self.sets as u64 + set as u64) * line_bytes);
            }
        }
        if self.model == CacheModel::FastPath {
            // The filled line becomes MRU: every other valid line ages.
            for line in &mut self.lines[base..base + ways] {
                if line.valid {
                    line.age += 1;
                }
            }
            self.pred[set] = victim_idx as u8;
        }
        // (NaiveScan fills at the stamp the preceding `try_hit` bumped to,
        // exactly like the pre-split single `access`.)
        self.lines[base + victim_idx] = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_used: self.stamp,
            age: 0,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Counts one access as a hit without touching the tag array.
    ///
    /// Used by the instruction path's last-line buffer: when the previous
    /// access resolved the same line, that line is present and already MRU, so
    /// re-walking the set (and the way predictor) is pure overhead — only the
    /// counters need to advance to stay bit-identical with a full lookup.
    pub fn count_repeat_hit(&mut self) {
        self.stats.accesses += 1;
        self.stats.hits += 1;
    }

    fn try_hit_fast(&mut self, addr: u64, is_write: bool) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways;
        let base = set * ways;

        // Predicted way first: the steady state is one tag compare.
        let pred = self.pred[set] as usize;
        let hit_way = {
            let line = &self.lines[base + pred];
            if line.valid && line.tag == tag {
                self.way_stats.predicted_hits += 1;
                Some(pred)
            } else {
                let mut found = None;
                for (i, line) in self.lines[base..base + ways].iter().enumerate() {
                    if i != pred && line.valid && line.tag == tag {
                        found = Some(i);
                        break;
                    }
                }
                if let Some(way) = found {
                    self.way_stats.scan_hits += 1;
                    self.pred[set] = way as u8;
                }
                found
            }
        };
        let Some(way) = hit_way else {
            return false;
        };
        self.stats.accesses += 1;
        self.stats.hits += 1;
        // Promote to MRU: lines more recent than the hit line age by one.
        let old_age = self.lines[base + way].age;
        if old_age != 0 {
            for line in &mut self.lines[base..base + ways] {
                if line.valid && line.age < old_age {
                    line.age += 1;
                }
            }
            self.lines[base + way].age = 0;
        }
        self.lines[base + way].dirty |= is_write;
        true
    }

    fn try_hit_naive(&mut self, addr: u64, is_write: bool) -> bool {
        // The stamp advances once per logical access; a follow-up
        // `allocate_miss` fills at this already-bumped value, exactly like the
        // pre-split single `access` did.
        self.stamp += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways;
        let base = set * ways;
        for line in &mut self.lines[base..base + ways] {
            if line.valid && line.tag == tag {
                line.last_used = self.stamp;
                line.dirty |= is_write;
                self.stats.accesses += 1;
                self.stats.hits += 1;
                return true;
            }
        }
        false
    }

    /// Invalidates every line (used on context-switch style resets in tests).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
            line.dirty = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 32,
            ways: 2,
        })
    }

    #[test]
    fn table1_geometries_are_valid() {
        assert_eq!(CacheConfig::l1d_table1().sets(), 1024);
        assert_eq!(CacheConfig::l1i_table1().sets(), 512);
        assert_eq!(CacheConfig::l2_table1().sets(), 2048);
    }

    #[test]
    fn cold_miss_then_hit_within_line() {
        let mut c = small();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x11f, false).hit, "same 32-byte line");
        assert!(!c.access(0x120, false).hit, "next line misses");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut c = small(); // 4 sets, 2 ways

        // Three distinct lines mapping to the same set (stride = sets*line = 128).
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch so 0x080 becomes LRU
        c.access(0x100, false); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small();
        c.access(0x000, true); // dirty
        c.access(0x080, false);
        let out = c.access(0x100, false); // evicts one of them (0x000 is LRU)
        assert_eq!(out.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x080, false);
        let out = c.access(0x100, false);
        assert!(!out.hit);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x000, true); // hit, now dirty
        c.access(0x080, false);
        let out = c.access(0x100, false);
        assert_eq!(out.writeback, Some(0x000));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x080, false);
        // Probing 0x000 must not make it MRU.
        assert!(c.probe(0x000));
        c.access(0x100, false); // should evict 0x000 (the true LRU)
        assert!(!c.probe(0x000));
        assert!(c.probe(0x080));
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = small();
        c.access(0x0, true);
        c.flush();
        assert!(!c.probe(0x0));
        assert!(!c.access(0x0, false).hit);
        assert_eq!(
            c.access(0x80, false).writeback,
            None,
            "flushed lines are not written back"
        );
    }

    #[test]
    fn line_addr_masks_low_bits() {
        let c = small();
        assert_eq!(c.line_addr(0x10f), 0x100);
        assert_eq!(c.line_addr(0x100), 0x100);
    }

    #[test]
    fn miss_rate() {
        let mut c = small();
        c.access(0x0, false);
        c.access(0x0, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    /// Every unit test above, replayed against the reference model: the two
    /// implementations must agree access by access.
    #[test]
    fn naive_scan_matches_fast_path_on_the_unit_streams() {
        let cfg = CacheConfig {
            size_bytes: 256,
            line_bytes: 32,
            ways: 2,
        };
        let stream: &[(u64, bool)] = &[
            (0x000, true),
            (0x080, false),
            (0x000, false),
            (0x100, false),
            (0x080, true),
            (0x180, false),
            (0x000, false),
            (0x11f, false),
            (0x120, false),
        ];
        let mut fast = Cache::with_model(cfg, CacheModel::FastPath);
        let mut naive = Cache::with_model(cfg, CacheModel::NaiveScan);
        for &(addr, is_write) in stream {
            assert_eq!(
                fast.access(addr, is_write),
                naive.access(addr, is_write),
                "outcome diverged at {addr:#x}"
            );
        }
        assert_eq!(fast.stats(), naive.stats());
    }

    #[test]
    fn way_predictor_counters_on_a_known_stream() {
        // 4 sets × 2 ways, 32-byte lines.  Set 0 holds lines 0x000/0x080.
        let mut c = small();
        assert_eq!(c.model(), CacheModel::FastPath);
        c.access(0x000, false); // miss; fills way 0, predictor -> way 0
        c.access(0x008, false); // predicted hit (same line, way 0)
        c.access(0x010, false); // predicted hit
        c.access(0x080, false); // miss; fills way 1, predictor -> way 1
        c.access(0x088, false); // predicted hit (way 1)
        c.access(0x000, false); // hit in way 0, predictor said way 1: scan hit
        c.access(0x000, false); // predicted hit again (predictor retrained)
        let wp = c.way_predict_stats();
        assert_eq!(wp.predicted_hits, 4);
        assert_eq!(wp.scan_hits, 1);
        assert_eq!(wp.total(), 5);
        assert!((wp.hit_rate() - 0.8).abs() < 1e-12);
        // The cache-level counters are unaffected by prediction accuracy.
        assert_eq!(c.stats().accesses, 7);
        assert_eq!(c.stats().hits, 5);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn naive_model_never_consults_the_predictor() {
        let cfg = CacheConfig {
            size_bytes: 256,
            line_bytes: 32,
            ways: 2,
        };
        let mut c = Cache::with_model(cfg, CacheModel::NaiveScan);
        c.access(0x0, false);
        c.access(0x0, false);
        assert_eq!(c.way_predict_stats(), WayPredictStats::default());
        assert_eq!(c.way_predict_stats().hit_rate(), 0.0);
    }

    #[test]
    fn count_repeat_hit_matches_a_real_repeat_access() {
        let mut real = small();
        let mut short = small();
        real.access(0x40, false);
        short.access(0x40, false);
        let out = real.access(0x48, false);
        assert!(out.hit);
        short.count_repeat_hit();
        assert_eq!(real.stats(), short.stats());
        // Replacement state also agrees: both evict the same victim next.
        real.access(0x0c0, false);
        real.access(0x140, false);
        short.access(0x0c0, false);
        short.access(0x140, false);
        assert_eq!(real.probe(0x40), short.probe(0x40));
        assert_eq!(real.probe(0x0c0), short.probe(0x0c0));
    }
}

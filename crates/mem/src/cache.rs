//! Set-associative cache state (tags only — the simulator is timing-directed,
//! data values live in the functional emulator).

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// 64 KB, 2-way, 32-byte lines: the paper's L1 data cache.
    #[must_use]
    pub fn l1d_table1() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 32,
            ways: 2,
        }
    }

    /// 64 KB, 2-way, 64-byte lines: the paper's L1 instruction cache.
    #[must_use]
    pub fn l1i_table1() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 64,
            ways: 2,
        }
    }

    /// 256 KB, 4-way, 32-byte lines: the paper's unified L2.
    #[must_use]
    pub fn l2_table1() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            line_bytes: 32,
            ways: 4,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sized, or not divisible into sets).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(self.size_bytes > 0 && self.line_bytes > 0 && self.ways > 0);
        let sets = self.size_bytes / (self.line_bytes * self.ways);
        assert!(
            sets > 0,
            "cache too small for its line size and associativity"
        );
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        sets
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate over all accesses (0 if the cache was never accessed).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Address of a dirty line that had to be written back, if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_used: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// ```
/// use sdv_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 32, ways: 2 });
/// assert!(!c.access(0x1000, false).hit);
/// assert!(c.access(0x1000, false).hit);
/// assert!(c.access(0x1008, false).hit, "same line");
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    sets: usize,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    last_used: 0
                };
                sets * cfg.ways
            ],
            sets,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry of this cache.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The line-aligned address containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes as u64) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / (self.cfg.line_bytes as u64 * self.sets as u64)
    }

    /// Checks for a hit without changing any state (no LRU update, no fill).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lines[set * self.cfg.ways..(set + 1) * self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Performs one access: on a miss the line is allocated (write-allocate),
    /// possibly evicting a victim whose writeback address is reported.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.stamp += 1;
        self.stats.accesses += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways;
        let base = set * ways;

        // Hit path.
        for line in &mut self.lines[base..base + ways] {
            if line.valid && line.tag == tag {
                line.last_used = self.stamp;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return AccessOutcome {
                    hit: true,
                    writeback: None,
                };
            }
        }

        // Miss: pick an invalid way or the LRU way.
        self.stats.misses += 1;
        let victim_idx = {
            let slice = &self.lines[base..base + ways];
            slice
                .iter()
                .enumerate()
                .find(|(_, l)| !l.valid)
                .map(|(i, _)| i)
                .unwrap_or_else(|| {
                    slice
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.last_used)
                        .map(|(i, _)| i)
                        .expect("ways > 0")
                })
        };
        let victim = &mut self.lines[base + victim_idx];
        let mut writeback = None;
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            // Reconstruct the victim's line address from its tag and set.
            let line_bytes = self.cfg.line_bytes as u64;
            writeback = Some((victim.tag * self.sets as u64 + set as u64) * line_bytes);
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_used: self.stamp,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Invalidates every line (used on context-switch style resets in tests).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
            line.dirty = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 32,
            ways: 2,
        })
    }

    #[test]
    fn table1_geometries_are_valid() {
        assert_eq!(CacheConfig::l1d_table1().sets(), 1024);
        assert_eq!(CacheConfig::l1i_table1().sets(), 512);
        assert_eq!(CacheConfig::l2_table1().sets(), 2048);
    }

    #[test]
    fn cold_miss_then_hit_within_line() {
        let mut c = small();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x11f, false).hit, "same 32-byte line");
        assert!(!c.access(0x120, false).hit, "next line misses");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut c = small(); // 4 sets, 2 ways

        // Three distinct lines mapping to the same set (stride = sets*line = 128).
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch so 0x080 becomes LRU
        c.access(0x100, false); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small();
        c.access(0x000, true); // dirty
        c.access(0x080, false);
        let out = c.access(0x100, false); // evicts one of them (0x000 is LRU)
        assert_eq!(out.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x080, false);
        let out = c.access(0x100, false);
        assert!(!out.hit);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x000, true); // hit, now dirty
        c.access(0x080, false);
        let out = c.access(0x100, false);
        assert_eq!(out.writeback, Some(0x000));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x080, false);
        // Probing 0x000 must not make it MRU.
        assert!(c.probe(0x000));
        c.access(0x100, false); // should evict 0x000 (the true LRU)
        assert!(!c.probe(0x000));
        assert!(c.probe(0x080));
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = small();
        c.access(0x0, true);
        c.flush();
        assert!(!c.probe(0x0));
        assert!(!c.access(0x0, false).hit);
        assert_eq!(
            c.access(0x80, false).writeback,
            None,
            "flushed lines are not written back"
        );
    }

    #[test]
    fn line_addr_masks_low_bits() {
        let c = small();
        assert_eq!(c.line_addr(0x10f), 0x100);
        assert_eq!(c.line_addr(0x100), 0x100);
    }

    #[test]
    fn miss_rate() {
        let mut c = small();
        c.access(0x0, false);
        c.access(0x0, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}

//! Deterministic fault injection for the store's I/O layer.
//!
//! [`FaultPlan`] implements [`StoreIo`] by delegating to a real filesystem
//! while injecting failures at *named points* from an explicit or seeded
//! schedule: process crashes after a temp write, before a rename, or while
//! holding a shard lock; torn (short) writes; single-bit flips; and
//! transient `EIO` / `ENOSPC` errors.  Everything is counted and triggered
//! by operation index, so a test that fails replays identically.
//!
//! Crash faults are sticky: once one fires, the plan is *dead* and every
//! subsequent operation fails — the test then reopens the directory with a
//! real-I/O [`crate::Store`] to model a process restart, exactly like a real
//! crash-recovery cycle (the OS releases advisory locks with the process;
//! here, dropping the lock file handle does the same).

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

use crate::io::{RealIo, StoreIo};

/// The I/O operations a fault can attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Whole-file reads (shard loads, scans).
    Read,
    /// Whole-file writes (temp files on the atomic-replace path).
    Write,
    /// The atomic `rename` publishing a temp file as the live shard.
    Rename,
    /// Shard writer-lock acquisition.
    Lock,
}

/// What happens when an injection fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The process dies *before* the operation takes effect (a rename that
    /// never happens, a lock never acquired).
    Crash,
    /// The operation completes, then the process dies (the named
    /// "after temp write" point).
    CrashAfter,
    /// Only the first `keep` bytes land, then the process dies (a torn /
    /// short write).  Meaningful for [`IoOp::Write`].
    Torn {
        /// Bytes that make it to disk before the crash.
        keep: usize,
    },
    /// One bit (index modulo the payload's bit length) is flipped and the
    /// write *succeeds* — silent media corruption.
    BitFlip {
        /// Which bit of the written buffer to flip.
        bit: u64,
    },
    /// The operation fails with `EIO`; the process lives (transient error).
    Eio,
    /// The operation fails with `ENOSPC`; the process lives (disk full).
    Enospc,
}

/// A [`StoreIo`] that injects faults from a deterministic schedule.
///
/// Build one with the named-point constructors
/// ([`FaultPlan::crash_after_temp_write`], …), compose arbitrary schedules
/// with [`FaultPlan::with_fault`], or derive a pseudo-random one from a seed
/// with [`FaultPlan::seeded`].
pub struct FaultPlan {
    inner: RealIo,
    /// `(op, nth occurrence)` → fault to fire there (0-based, counted while
    /// the plan is alive).
    schedule: Mutex<HashMap<(IoOp, u64), Fault>>,
    counters: Mutex<HashMap<IoOp, u64>>,
    dead: AtomicBool,
    /// When set, every mutating operation fails `PermissionDenied` — an
    /// unwritable store directory.
    unwritable: bool,
    faults_fired: AtomicU64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultPlan {
    /// A plan with no faults scheduled (behaves exactly like [`RealIo`]).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan {
            inner: RealIo,
            schedule: Mutex::new(HashMap::new()),
            counters: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            unwritable: false,
            faults_fired: AtomicU64::new(0),
        }
    }

    /// Schedules `fault` at the `nth` (0-based) occurrence of `op`.
    #[must_use]
    pub fn with_fault(self, op: IoOp, nth: u64, fault: Fault) -> Self {
        self.schedule
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert((op, nth), fault);
        self
    }

    /// Named point: the temp file lands, then the process dies before the
    /// rename.
    #[must_use]
    pub fn crash_after_temp_write(nth: u64) -> Self {
        Self::new().with_fault(IoOp::Write, nth, Fault::CrashAfter)
    }

    /// Named point: the process dies with the temp file written but the
    /// rename never issued.
    #[must_use]
    pub fn crash_before_rename(nth: u64) -> Self {
        Self::new().with_fault(IoOp::Rename, nth, Fault::Crash)
    }

    /// Named point: the process dies while holding the shard writer lock
    /// (the OS — here, the dropped handle — releases it).
    #[must_use]
    pub fn crash_mid_lock(nth: u64) -> Self {
        Self::new().with_fault(IoOp::Lock, nth, Fault::Crash)
    }

    /// Named point: the `nth` write is torn after `keep` bytes.
    #[must_use]
    pub fn torn_write(nth: u64, keep: usize) -> Self {
        Self::new().with_fault(IoOp::Write, nth, Fault::Torn { keep })
    }

    /// An always-unwritable store directory: every mutating operation fails
    /// with `PermissionDenied`; reads pass through.
    #[must_use]
    pub fn unwritable() -> Self {
        FaultPlan {
            unwritable: true,
            ..Self::new()
        }
    }

    /// Derives a small schedule (1–3 faults over the first `ops` operations)
    /// from `seed` via SplitMix64 — the "seeded schedule" entry point: the
    /// same seed always yields the same faults at the same points.
    #[must_use]
    pub fn seeded(seed: u64, ops: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = Self::new();
        let n_faults = 1 + next() % 3;
        for _ in 0..n_faults {
            let op = match next() % 4 {
                0 => IoOp::Read,
                1 => IoOp::Write,
                2 => IoOp::Rename,
                _ => IoOp::Lock,
            };
            let nth = next() % ops.max(1);
            let fault = match next() % 6 {
                0 => Fault::Crash,
                1 => Fault::CrashAfter,
                2 => Fault::Torn {
                    keep: (next() % 64) as usize,
                },
                3 => Fault::BitFlip { bit: next() },
                4 => Fault::Eio,
                _ => Fault::Enospc,
            };
            plan = plan.with_fault(op, nth, fault);
        }
        plan
    }

    /// Whether a crash fault has fired (the simulated process is dead).
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// How many scheduled faults have fired so far.
    #[must_use]
    pub fn faults_fired(&self) -> u64 {
        self.faults_fired.load(Ordering::SeqCst)
    }

    /// The fault due at this call of `op`, if any (advances the op counter).
    fn due(&self, op: IoOp) -> Option<Fault> {
        let nth = {
            let mut counters = self
                .counters
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let slot = counters.entry(op).or_insert(0);
            let nth = *slot;
            *slot += 1;
            nth
        };
        let fault = self
            .schedule
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&(op, nth));
        if fault.is_some() {
            self.faults_fired.fetch_add(1, Ordering::SeqCst);
        }
        fault
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.is_dead() {
            return Err(dead_err());
        }
        Ok(())
    }

    fn check_writable(&self) -> io::Result<()> {
        if self.unwritable {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "simulated unwritable store directory",
            ));
        }
        Ok(())
    }

    fn die(&self) -> io::Error {
        self.dead.store(true, Ordering::SeqCst);
        dead_err()
    }
}

fn dead_err() -> io::Error {
    io::Error::other("simulated crash: process is dead")
}

fn transient(fault: Fault) -> io::Error {
    match fault {
        Fault::Eio => io::Error::other("simulated EIO"),
        Fault::Enospc => io::Error::new(io::ErrorKind::StorageFull, "simulated ENOSPC"),
        _ => unreachable!("only transient faults"),
    }
}

impl StoreIo for FaultPlan {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        match self.due(IoOp::Read) {
            None | Some(Fault::Torn { .. } | Fault::BitFlip { .. }) => self.inner.read(path),
            Some(Fault::Crash | Fault::CrashAfter) => Err(self.die()),
            Some(f @ (Fault::Eio | Fault::Enospc)) => Err(transient(f)),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        self.check_writable()?;
        match self.due(IoOp::Write) {
            None => self.inner.write(path, bytes),
            Some(Fault::Crash) => Err(self.die()),
            Some(Fault::CrashAfter) => {
                self.inner.write(path, bytes)?;
                Err(self.die())
            }
            Some(Fault::Torn { keep }) => {
                self.inner.write(path, &bytes[..keep.min(bytes.len())])?;
                Err(self.die())
            }
            Some(Fault::BitFlip { bit }) => {
                let mut corrupted = bytes.to_vec();
                if !corrupted.is_empty() {
                    let bit = bit % (corrupted.len() as u64 * 8);
                    corrupted[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                self.inner.write(path, &corrupted)
            }
            Some(f @ (Fault::Eio | Fault::Enospc)) => Err(transient(f)),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.check_writable()?;
        match self.due(IoOp::Rename) {
            None | Some(Fault::Torn { .. } | Fault::BitFlip { .. }) => self.inner.rename(from, to),
            Some(Fault::Crash) => Err(self.die()),
            Some(Fault::CrashAfter) => {
                self.inner.rename(from, to)?;
                Err(self.die())
            }
            Some(f @ (Fault::Eio | Fault::Enospc)) => Err(transient(f)),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.check_writable()?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        // `mkdir -p` on an existing directory touches nothing: it succeeds
        // even on a read-only filesystem, so an unwritable plan still opens
        // an existing store (the graceful-degradation scenario).
        if self.inner.file_len(path).is_ok() {
            return Ok(());
        }
        self.check_writable()?;
        self.inner.create_dir_all(path)
    }

    fn lock(&self, path: &Path) -> io::Result<fs::File> {
        self.check_alive()?;
        self.check_writable()?;
        match self.due(IoOp::Lock) {
            None | Some(Fault::Torn { .. } | Fault::BitFlip { .. }) => self.inner.lock(path),
            Some(Fault::Crash | Fault::CrashAfter) => {
                // Model dying while holding the lock: acquire it for real,
                // then drop the handle (the kernel releases a crashed
                // process's advisory locks the same way).
                let held = self.inner.lock(path)?;
                drop(held);
                Err(self.die())
            }
            Some(f @ (Fault::Eio | Fault::Enospc)) => Err(transient(f)),
        }
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.check_alive()?;
        self.inner.read_dir(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.check_alive()?;
        self.inner.file_len(path)
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        self.check_alive()?;
        self.inner.modified(path)
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("dead", &self.is_dead())
            .field("unwritable", &self.unwritable)
            .field("faults_fired", &self.faults_fired())
            .finish_non_exhaustive()
    }
}

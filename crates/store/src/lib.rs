//! A sharded, mergeable, concurrency-safe, self-healing result store.
//!
//! The simulation layer persists `content-hash → serialized result` entries so
//! repeated experiment runs (and CI jobs seeding developer machines) reuse
//! earlier sessions instead of re-simulating.  This crate provides the storage
//! substrate: it knows nothing about simulators or statistics — keys are
//! opaque 128-bit content hashes and values are opaque byte payloads — which
//! keeps it reusable and keeps the dependency arrow pointing the right way
//! (`sdv-sim` layers its serialization *on top* of the store).
//!
//! # Layout
//!
//! A store is a directory of up to 256 *shard* files, `shard-00.bin` …
//! `shard-ff.bin`, where an entry lives in the shard named by the top byte of
//! its key.  Each shard file is a small versioned binary blob (version 2;
//! version-1 files, which lack the per-entry `crc32`, are still readable):
//!
//! ```text
//! magic "SDVS" | version u32 | fingerprint u64 | count u64
//!   count × ( key_lo u64 | key_hi u64 | payload_len u32 | crc32 u32 | payload )
//! ```
//!
//! The `fingerprint` identifies the *producer behaviour* (for the simulator:
//! a hash of what two canonical cells measure with the current build).  A
//! store is always opened for one fingerprint; shard files written by a
//! different producer are invisible to readers, replaced on write, and
//! reclaimed by [`Store::gc`].
//!
//! # Durability and self-healing
//!
//! All file I/O goes through the [`StoreIo`] trait ([`RealIo`] in
//! production), so every failure path is provable under the deterministic
//! [`FaultPlan`] injector.  The per-entry CRC32 localizes corruption to the
//! entry it hit: readers silently serve the intact remainder of a damaged
//! shard, [`Store::verify`] reports damage at entry granularity, and
//! [`Store::repair`] salvages the intact entries, quarantines the damaged
//! bytes under `quarantine/`, and atomically rewrites the shard — losing
//! only provably-corrupt entries, never the shard.
//!
//! # Concurrency
//!
//! * **Readers are lock-free**: they only ever `read()` shard files, which are
//!   replaced atomically (write-temp + `rename`), so a reader sees either the
//!   old or the new shard, never a torn one.  Loaded shards are memoized
//!   in-process behind per-shard `RwLock`s.
//! * **Writers serialize per shard** through an OS advisory lock on a sibling
//!   `shard-XX.lock` file: a write is *read–merge–write* under the lock, so
//!   two processes populating the same store concurrently both land all of
//!   their entries.  The kernel owns lock lifetime — a crashed writer's lock
//!   is released automatically, with no staleness heuristics or stealing.
//!
//! # Example
//!
//! ```
//! use sdv_store::Store;
//!
//! let dir = std::env::temp_dir().join(format!("sdv-store-doc-{}", std::process::id()));
//! let store = Store::open(&dir, 0xfeed).unwrap();
//! store.put_batch(&[((0x42u128 << 120) | 7, b"payload".to_vec())]).unwrap();
//! assert_eq!(store.get((0x42u128 << 120) | 7).as_deref(), Some(&b"payload"[..]));
//! assert!(store.verify().unwrap().is_ok());
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod fault;
pub mod format;
pub mod io;

use std::collections::HashMap;
use std::io::{self as stdio, ErrorKind};
use std::path::{Path, PathBuf};
use std::sync::{Arc, PoisonError, RwLock};

pub use fault::{Fault, FaultPlan, IoOp};
pub use format::{
    crc32, scan_shard, serialize_shard, serialize_shard_v1, ShardFault, ShardScan,
    MIN_READ_VERSION, STORE_VERSION,
};
pub use io::{ObservedIo, RealIo, StoreIo};
pub use sdv_obs::{Obs, ObsLevel};

/// Number of shard files a store fans out over (keyed by the key's top byte).
pub const SHARDS: usize = 256;
/// Age (by file mtime) beyond which a leftover `.tmp.*` file is presumed
/// abandoned by a crashed writer and reclaimed by [`Store::gc`].  A live
/// shard write holds its temp file for milliseconds, so a healthy one never
/// comes close to this; anything younger is presumed in flight and left
/// alone (gc must never race a live writer's rename).
pub const GC_TEMP_MAX_AGE: std::time::Duration = std::time::Duration::from_secs(30);

/// The in-memory form of one shard: opaque payloads keyed by content hash.
type ShardEntries = HashMap<u128, Vec<u8>>;

/// The index of the shard holding `key`: its most significant byte.
#[must_use]
pub fn shard_of(key: u128) -> usize {
    (key >> 120) as usize
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:02x}.bin"))
}

// -------------------------------------------------------------- write locks

/// An exclusive per-shard writer lock: an OS advisory lock on a sibling
/// `.lock` file, released when the handle drops.  The kernel owns the lock's
/// lifetime, so a crashed holder releases automatically — no staleness
/// heuristics, no stealing, no ownership races.  The zero-byte lock *files*
/// stay on disk permanently; they are never deleted, because removing a name
/// while another writer holds the inode's lock would let a third writer lock
/// a fresh inode under the same name and break mutual exclusion.
struct ShardLock {
    _file: std::fs::File,
}

// ------------------------------------------------------------------ reports

/// What [`Store::put_batch`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PutReport {
    /// Entries that were new to the store.
    pub inserted: u64,
    /// Entries whose key was already present (the new payload wins).
    pub updated: u64,
    /// Entries discarded from shard files written by a different producer
    /// fingerprint (their results are stale by definition).
    pub discarded_stale: u64,
}

/// What [`Store::merge_from`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Source shard files read.
    pub shards_read: u64,
    /// Entries newly inserted into the destination.
    pub inserted: u64,
    /// Entries whose key the destination already held.
    pub updated: u64,
    /// Source entries skipped because their shard was written by a different
    /// producer fingerprint.
    pub skipped_stale: u64,
}

impl std::fmt::Display for MergeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} shard files read: {} entries inserted, {} already present, {} stale skipped",
            self.shards_read, self.inserted, self.updated, self.skipped_stale
        )
    }
}

/// What [`Store::gc`] reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Shard files kept (their fingerprint matched).
    pub kept_shards: u64,
    /// Entries across the kept shard files.
    pub kept_entries: u64,
    /// Stale shard files deleted (foreign fingerprint, foreign version, or
    /// unparseable).
    pub removed_shards: u64,
    /// Entries across the deleted shard files (0 for unparseable files).
    pub removed_entries: u64,
    /// Leftover temp files deleted (only ones older than the writer
    /// abandonment threshold — live writers' pending temps survive, and
    /// lock files are never touched).
    pub removed_strays: u64,
}

impl std::fmt::Display for GcReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kept {} shard files ({} entries); removed {} stale shard files \
             ({} entries) and {} stray temp/lock files",
            self.kept_shards,
            self.kept_entries,
            self.removed_shards,
            self.removed_entries,
            self.removed_strays
        )
    }
}

/// The outcome of a structural [`Store::verify`] pass.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Shard files parsed with the store's fingerprint.
    pub shards: u64,
    /// Intact entries across those shards.
    pub entries: u64,
    /// Structurally valid shard files with a foreign fingerprint (stale but
    /// harmless — [`Store::gc`] reclaims them).
    pub stale_shards: u64,
    /// Entries lost to localized damage (CRC mismatch, truncation,
    /// duplicates) across all readable shards — what [`Store::repair`]
    /// would quarantine.
    pub corrupt_entries: u64,
    /// Readable shard files still in the legacy CRC-less format (version 1);
    /// [`Store::repair`] upgrades them.
    pub legacy_shards: u64,
    /// Structural problems found; empty for a healthy store.
    pub errors: Vec<String>,
}

impl VerifyReport {
    /// `true` when no structural problem was found.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} shard files, {} entries, {} stale shard files: {}",
            self.shards,
            self.entries,
            self.stale_shards,
            if self.is_ok() {
                "OK".to_string()
            } else {
                format!(
                    "{} error(s), {} corrupt entr{}",
                    self.errors.len(),
                    self.corrupt_entries,
                    if self.corrupt_entries == 1 {
                        "y"
                    } else {
                        "ies"
                    }
                )
            }
        )?;
        if self.legacy_shards > 0 {
            write!(
                f,
                " ({} legacy v1 shard file(s); run repair to upgrade)",
                self.legacy_shards
            )?;
        }
        for e in &self.errors {
            write!(f, "\n  - {e}")?;
        }
        Ok(())
    }
}

/// What [`Store::repair`] salvaged, quarantined, and rewrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Shard files examined.
    pub scanned_shards: u64,
    /// Shard files that were already clean at the current version.
    pub clean_shards: u64,
    /// Damaged or legacy shard files atomically rewritten.
    pub repaired_shards: u64,
    /// Intact entries carried over into rewritten shards.
    pub recovered_entries: u64,
    /// Entries lost to damage (their bytes are in `quarantine/`).
    pub quarantined_entries: u64,
    /// Damaged bytes moved under `quarantine/`.
    pub quarantined_bytes: u64,
    /// Files whose header was unreadable, moved whole into `quarantine/`.
    pub quarantined_files: u64,
    /// Legacy version-1 shard files upgraded to the current format.
    pub upgraded_shards: u64,
}

impl RepairReport {
    /// `true` when nothing needed repair.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.repaired_shards == 0 && self.quarantined_files == 0
    }
}

impl std::fmt::Display for RepairReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scanned {} shard files: {} clean, {} repaired ({} entries recovered, \
             {} quarantined, {} damaged bytes), {} unreadable file(s) quarantined, \
             {} legacy shard(s) upgraded",
            self.scanned_shards,
            self.clean_shards,
            self.repaired_shards,
            self.recovered_entries,
            self.quarantined_entries,
            self.quarantined_bytes,
            self.quarantined_files,
            self.upgraded_shards
        )
    }
}

/// Aggregate size/occupancy statistics for a store directory.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Shard files carrying the store's fingerprint.
    pub shards: u64,
    /// Intact entries across those shards.
    pub entries: u64,
    /// Total payload bytes across those entries.
    pub payload_bytes: u64,
    /// Total size of all shard files on disk (stale ones included).
    pub file_bytes: u64,
    /// Structurally valid shard files with a foreign fingerprint.
    pub stale_shards: u64,
    /// Entries across the stale shards.
    pub stale_entries: u64,
    /// Entry count of the fullest live shard.
    pub largest_shard_entries: u64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entries ({} payload bytes) across {} shard files \
             ({} bytes on disk; fullest shard holds {}); \
             {} stale shard files carrying {} entries",
            self.entries,
            self.payload_bytes,
            self.shards,
            self.file_bytes,
            self.largest_shard_entries,
            self.stale_shards,
            self.stale_entries
        )
    }
}

// -------------------------------------------------------------------- store

/// A handle on one store directory, opened for one producer fingerprint.
///
/// The handle may be shared freely across threads; see the crate docs for the
/// concurrency model.
pub struct Store {
    dir: PathBuf,
    fingerprint: u64,
    io: Arc<dyn StoreIo>,
    /// Per-shard memo of the last loaded disk state (`None` = not loaded).
    shards: Vec<RwLock<Option<ShardEntries>>>,
    /// Observability handle; defaults to `Off` (every call is one enum
    /// compare).  [`Store::set_obs`] swaps in a live handle and wraps the
    /// I/O seam in [`io::ObservedIo`].
    obs: Arc<Obs>,
}

impl Store {
    /// Opens (creating if necessary) the store directory `dir` for entries
    /// produced under `fingerprint`, on the real filesystem.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the directory.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u64) -> stdio::Result<Self> {
        Self::open_with_io(dir, fingerprint, Arc::new(RealIo))
    }

    /// Opens the store through an explicit [`StoreIo`] implementation —
    /// the seam fault-injection tests use to prove every recovery path.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the directory.
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        fingerprint: u64,
        io: Arc<dyn StoreIo>,
    ) -> stdio::Result<Self> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        Ok(Store {
            dir,
            fingerprint,
            io,
            shards: (0..SHARDS).map(|_| RwLock::new(None)).collect(),
            obs: Arc::new(Obs::default()),
        })
    }

    /// Attaches an observability handle: subsequent filesystem calls are
    /// counted per operation through an [`io::ObservedIo`] wrapper (lock
    /// waits get a histogram and, under tracing, spans), and
    /// [`Store::repair`] reports what it salvaged as events.  Observation
    /// only — behaviour and on-disk bytes are unchanged.
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        self.io = Arc::new(io::ObservedIo::new(Arc::clone(&self.io), Arc::clone(&obs)));
        self.obs = obs;
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The producer fingerprint this handle reads and writes.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Reads a shard file's raw bytes; `Ok(None)` when it does not exist.
    fn read_shard_bytes(&self, path: &Path) -> stdio::Result<Option<Vec<u8>>> {
        match self.io.read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Takes the writer lock for `shard` (blocking).
    fn lock_shard(&self, shard: usize) -> stdio::Result<ShardLock> {
        let file = self
            .io
            .lock(&self.dir.join(format!("shard-{shard:02x}.lock")))?;
        Ok(ShardLock { _file: file })
    }

    /// Whether a temp file at `path` is old enough (by mtime) to be treated
    /// as abandoned by a crashed writer.  `false` when the file is gone or
    /// its age cannot be determined — never presume abandonment without
    /// evidence.
    fn is_stale(&self, path: &Path) -> bool {
        self.io
            .modified(path)
            .ok()
            .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
            .is_some_and(|age| age >= GC_TEMP_MAX_AGE)
    }

    /// Loads the shard holding `key` (once) and returns the entry's payload.
    ///
    /// Shard files written under a different fingerprint, or unreadable ones,
    /// read as empty; a damaged shard serves its intact entries — stale or
    /// corrupt data can only ever cause a miss.
    #[must_use]
    pub fn get(&self, key: u128) -> Option<Vec<u8>> {
        let slot = &self.shards[shard_of(key)];
        {
            let loaded = slot.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(entries) = loaded.as_ref() {
                return entries.get(&key).cloned();
            }
        }
        let mut loaded = slot.write().unwrap_or_else(PoisonError::into_inner);
        if loaded.is_none() {
            *loaded = Some(self.load_shard(shard_of(key)));
        }
        loaded.as_ref().expect("just loaded").get(&key).cloned()
    }

    /// Reads a shard's live entries from disk (empty on absence, foreign
    /// fingerprint, or unreadable header; intact entries of a damaged shard
    /// are served).
    fn load_shard(&self, shard: usize) -> ShardEntries {
        match self.read_shard_bytes(&shard_path(&self.dir, shard)) {
            Ok(Some(bytes)) => match scan_shard(&bytes) {
                Ok(scan) if scan.fingerprint == self.fingerprint => scan.entries,
                _ => HashMap::new(),
            },
            _ => HashMap::new(),
        }
    }

    /// Inserts a batch of entries, merging with whatever each touched shard
    /// already holds on disk (a read–merge–write per shard under the shard's
    /// writer lock).  Untouched shards are not rewritten, and a batch that
    /// adds nothing new to a shard leaves its file untouched.  A damaged
    /// shard is healed in passing: its damaged bytes are quarantined and its
    /// intact entries merge with the batch, so writing never silently drops
    /// salvageable data.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error some shards of the batch may already
    /// have been written (each individual shard stays consistent).
    pub fn put_batch(&self, entries: &[(u128, Vec<u8>)]) -> stdio::Result<PutReport> {
        let mut by_shard: HashMap<usize, Vec<&(u128, Vec<u8>)>> = HashMap::new();
        for entry in entries {
            by_shard.entry(shard_of(entry.0)).or_default().push(entry);
        }
        let mut report = PutReport::default();
        let mut shards: Vec<usize> = by_shard.keys().copied().collect();
        shards.sort_unstable(); // deterministic lock order
        for shard in shards {
            let path = shard_path(&self.dir, shard);
            let _lock = self.lock_shard(shard)?;
            let (mut merged, on_disk_fresh) = match self.read_shard_bytes(&path)? {
                Some(bytes) => match scan_shard(&bytes) {
                    Ok(scan) if scan.fingerprint == self.fingerprint => {
                        if !scan.faults.is_empty() {
                            self.quarantine_ranges(shard, &bytes, &scan.faults)?;
                        }
                        let fresh = scan.is_clean();
                        (scan.entries, fresh)
                    }
                    Ok(scan) => {
                        report.discarded_stale += scan.entries.len() as u64;
                        (HashMap::new(), false)
                    }
                    Err(_) => {
                        self.quarantine_file(shard, &path)?;
                        (HashMap::new(), false)
                    }
                },
                None => (HashMap::new(), false),
            };
            let mut changed = !on_disk_fresh;
            for (key, payload) in &by_shard[&shard] {
                match merged.insert(*key, payload.clone()) {
                    None => {
                        report.inserted += 1;
                        changed = true;
                    }
                    Some(old) => {
                        report.updated += 1;
                        changed |= old != *payload;
                    }
                }
            }
            if changed {
                self.write_shard_atomic(shard, &path, &serialize_shard(self.fingerprint, &merged))?;
            }
            *self.shards[shard]
                .write()
                .unwrap_or_else(PoisonError::into_inner) = Some(merged);
        }
        Ok(report)
    }

    /// Writes shard bytes via the atomic write-temp + rename protocol.
    fn write_shard_atomic(&self, shard: usize, path: &Path, bytes: &[u8]) -> stdio::Result<()> {
        let tmp = self
            .dir
            .join(format!("shard-{shard:02x}.tmp.{}", std::process::id()));
        self.io.write(&tmp, bytes)?;
        self.io.rename(&tmp, path)
    }

    /// Merges every live entry of the store directory `src` into this store.
    ///
    /// Source shards written under a different fingerprint are skipped (their
    /// results are stale for this producer); unreadable source shards are
    /// skipped silently, and damaged ones contribute their intact entries.
    /// `merge(A, B)` and `merge(B, A)` into empty stores produce the same
    /// entry *set* whenever A and B agree on shared keys — which
    /// content-hashed deterministic results always do.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from reading `src` or writing this store.
    pub fn merge_from(&self, src: &Path) -> stdio::Result<MergeReport> {
        let mut report = MergeReport::default();
        for shard in 0..SHARDS {
            let Some(bytes) = self.read_shard_bytes(&shard_path(src, shard))? else {
                continue;
            };
            report.shards_read += 1;
            let Ok(scan) = scan_shard(&bytes) else {
                continue;
            };
            if scan.fingerprint != self.fingerprint {
                report.skipped_stale += scan.entries.len() as u64;
                continue;
            }
            let batch: Vec<(u128, Vec<u8>)> = scan.entries.into_iter().collect();
            let put = self.put_batch(&batch)?;
            report.inserted += put.inserted;
            report.updated += put.updated;
        }
        Ok(report)
    }

    /// Every live entry of the store (the shards carrying this handle's
    /// fingerprint), read fresh from disk.  Damaged shards contribute their
    /// intact entries.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from reading shard files.
    pub fn entries(&self) -> stdio::Result<HashMap<u128, Vec<u8>>> {
        let mut out = HashMap::new();
        for shard in 0..SHARDS {
            let Some(bytes) = self.read_shard_bytes(&shard_path(&self.dir, shard))? else {
                continue;
            };
            if let Ok(scan) = scan_shard(&bytes) {
                if scan.fingerprint == self.fingerprint {
                    out.extend(scan.entries);
                }
            }
        }
        Ok(out)
    }

    /// Deletes shard files whose fingerprint differs from `keep` (plus
    /// unreadable shards and abandoned temp files; lock files and the
    /// `quarantine/` directory are never touched) and reports what was
    /// reclaimed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from listing or deleting files.
    pub fn gc(&self, keep: u64) -> stdio::Result<GcReport> {
        let mut report = GcReport::default();
        for path in self.io.read_dir(&self.dir)? {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if !name.starts_with("shard-") {
                continue;
            }
            if name.ends_with(".lock") {
                // Never delete lock files: a writer may hold the OS lock on
                // that inode right now, and a fresh inode under the same name
                // would let a third writer in beside it.
                continue;
            }
            if !name.ends_with(".bin") {
                // A leftover `.tmp.<pid>` of a crashed writer.  Only reclaim
                // provably old ones: a concurrent writer's pending temp file
                // must survive a gc that races it.
                if self.is_stale(&path) {
                    self.io.remove_file(&path)?;
                    report.removed_strays += 1;
                }
                continue;
            }
            let Some(bytes) = self.read_shard_bytes(&path)? else {
                continue;
            };
            match scan_shard(&bytes) {
                Ok(scan) if scan.fingerprint == keep => {
                    report.kept_shards += 1;
                    report.kept_entries += scan.entries.len() as u64;
                }
                Ok(scan) => {
                    self.io.remove_file(&path)?;
                    report.removed_shards += 1;
                    report.removed_entries += scan.entries.len() as u64;
                }
                Err(_) => {
                    self.io.remove_file(&path)?;
                    report.removed_shards += 1;
                }
            }
        }
        for slot in &self.shards {
            *slot.write().unwrap_or_else(PoisonError::into_inner) = None;
        }
        Ok(report)
    }

    /// Verifies every shard file of the store at per-entry granularity:
    /// magic, version, entry framing, per-entry CRC, no trailing bytes, and
    /// every key living in the shard its top byte names.  Stale-but-valid
    /// shards (foreign fingerprint) are counted, not flagged.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; structural problems are *reported*, not
    /// returned as errors.
    pub fn verify(&self) -> stdio::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        for shard in 0..SHARDS {
            let path = shard_path(&self.dir, shard);
            let Some(bytes) = self.read_shard_bytes(&path)? else {
                continue;
            };
            match scan_shard(&bytes) {
                Err(e) => report.errors.push(format!("{}: {e}", path.display())),
                Ok(scan) => {
                    for fault in &scan.faults {
                        report.errors.push(format!(
                            "{}: {} [bytes {}..{}]",
                            path.display(),
                            fault.what,
                            fault.range.0,
                            fault.range.1
                        ));
                    }
                    report.corrupt_entries += scan.corrupt_entries();
                    if scan.version < STORE_VERSION {
                        report.legacy_shards += 1;
                    }
                    for key in scan.entries.keys() {
                        if shard_of(*key) != shard {
                            report.errors.push(format!(
                                "{}: key {key:#034x} belongs in shard {:02x}",
                                path.display(),
                                shard_of(*key)
                            ));
                        }
                    }
                    if scan.fingerprint == self.fingerprint {
                        report.shards += 1;
                        report.entries += scan.entries.len() as u64;
                    } else {
                        report.stale_shards += 1;
                    }
                }
            }
        }
        Ok(report)
    }

    /// Repairs every damaged or legacy shard file: salvages the intact
    /// entries, quarantines the damaged bytes under `quarantine/`, and
    /// atomically rewrites the shard at the current format version — losing
    /// only provably-corrupt entries, never the shard.  Files whose header is
    /// unreadable are moved whole into `quarantine/`.  Shards are repaired
    /// under their writer lock, and each file's own fingerprint is preserved
    /// (repair heals stale shards without adopting them).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; damage itself is repaired, not reported as
    /// an error.
    pub fn repair(&self) -> stdio::Result<RepairReport> {
        let mut report = RepairReport::default();
        for shard in 0..SHARDS {
            let path = shard_path(&self.dir, shard);
            if !self.io.exists(&path) {
                continue;
            }
            let _lock = self.lock_shard(shard)?;
            // Re-read under the lock: the pre-lock existence probe may have
            // raced a writer.
            let Some(bytes) = self.read_shard_bytes(&path)? else {
                continue;
            };
            report.scanned_shards += 1;
            match scan_shard(&bytes) {
                Ok(scan) if scan.is_clean() => report.clean_shards += 1,
                Ok(scan) => {
                    report.quarantined_bytes +=
                        self.quarantine_ranges(shard, &bytes, &scan.faults)?;
                    report.quarantined_entries += scan.corrupt_entries();
                    report.recovered_entries += scan.entries.len() as u64;
                    if scan.version < STORE_VERSION && scan.faults.is_empty() {
                        report.upgraded_shards += 1;
                    }
                    self.write_shard_atomic(
                        shard,
                        &path,
                        &serialize_shard(scan.fingerprint, &scan.entries),
                    )?;
                    report.repaired_shards += 1;
                    *self.shards[shard]
                        .write()
                        .unwrap_or_else(PoisonError::into_inner) = None;
                }
                Err(_) => {
                    self.quarantine_file(shard, &path)?;
                    report.quarantined_files += 1;
                    report.quarantined_bytes += bytes.len() as u64;
                    *self.shards[shard]
                        .write()
                        .unwrap_or_else(PoisonError::into_inner) = None;
                }
            }
        }
        self.obs.counter("store.repair.runs", 1);
        self.obs
            .counter("store.repair.repaired_shards", report.repaired_shards);
        self.obs
            .counter("store.repair.recovered_entries", report.recovered_entries);
        self.obs.counter(
            "store.repair.quarantined_entries",
            report.quarantined_entries,
        );
        self.obs
            .counter("store.repair.quarantined_bytes", report.quarantined_bytes);
        self.obs
            .counter("store.repair.quarantined_files", report.quarantined_files);
        if !report.is_clean() {
            self.obs.instant(
                "store repair",
                "store",
                &[
                    ("dir", self.dir.display().to_string()),
                    ("repaired_shards", report.repaired_shards.to_string()),
                    ("recovered_entries", report.recovered_entries.to_string()),
                    (
                        "quarantined_entries",
                        report.quarantined_entries.to_string(),
                    ),
                    ("quarantined_files", report.quarantined_files.to_string()),
                ],
            );
        }
        Ok(report)
    }

    /// The first free `quarantine/shard-XX[.N].bad` name.
    fn quarantine_slot(&self, shard: usize) -> stdio::Result<PathBuf> {
        let qdir = self.dir.join("quarantine");
        self.io.create_dir_all(&qdir)?;
        for n in 0u32.. {
            let name = if n == 0 {
                format!("shard-{shard:02x}.bad")
            } else {
                format!("shard-{shard:02x}.{n}.bad")
            };
            let candidate = qdir.join(name);
            if !self.io.exists(&candidate) {
                return Ok(candidate);
            }
        }
        unreachable!("some quarantine slot is free")
    }

    /// Writes the damaged byte ranges of a shard into `quarantine/`;
    /// returns how many bytes were preserved.
    fn quarantine_ranges(
        &self,
        shard: usize,
        bytes: &[u8],
        faults: &[ShardFault],
    ) -> stdio::Result<u64> {
        let mut damaged = Vec::new();
        for fault in faults {
            damaged.extend_from_slice(&bytes[fault.range.0..fault.range.1]);
        }
        if damaged.is_empty() {
            return Ok(0);
        }
        let slot = self.quarantine_slot(shard)?;
        self.io.write(&slot, &damaged)?;
        Ok(damaged.len() as u64)
    }

    /// Moves a wholly-unreadable shard file into `quarantine/`.
    fn quarantine_file(&self, shard: usize, path: &Path) -> stdio::Result<()> {
        let slot = self.quarantine_slot(shard)?;
        self.io.rename(path, &slot)
    }

    /// Aggregate occupancy statistics (reads every shard file).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from reading shard files.
    pub fn stats(&self) -> stdio::Result<StoreStats> {
        let mut stats = StoreStats::default();
        for shard in 0..SHARDS {
            let path = shard_path(&self.dir, shard);
            let Some(bytes) = self.read_shard_bytes(&path)? else {
                continue;
            };
            stats.file_bytes += bytes.len() as u64;
            let Ok(scan) = scan_shard(&bytes) else {
                continue;
            };
            if scan.fingerprint == self.fingerprint {
                stats.shards += 1;
                stats.entries += scan.entries.len() as u64;
                stats.payload_bytes += scan.entries.values().map(|p| p.len() as u64).sum::<u64>();
                stats.largest_shard_entries =
                    stats.largest_shard_entries.max(scan.entries.len() as u64);
            } else {
                stats.stale_shards += 1;
                stats.stale_entries += scan.entries.len() as u64;
            }
        }
        Ok(stats)
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("fingerprint", &format_args!("{:#018x}", self.fingerprint))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sdv-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(shard: u8, low: u64) -> u128 {
        (u128::from(shard) << 120) | u128::from(low)
    }

    #[test]
    fn round_trips_across_shards_and_reopens() {
        let dir = tmp_dir("roundtrip");
        let store = Store::open(&dir, 1).unwrap();
        let batch: Vec<(u128, Vec<u8>)> = (0..50u64)
            .map(|i| (key((i * 7) as u8, i), vec![i as u8; (i % 13) as usize]))
            .collect();
        let put = store.put_batch(&batch).unwrap();
        assert_eq!(put.inserted, 50);
        assert_eq!(put.updated, 0);
        for (k, v) in &batch {
            assert_eq!(store.get(*k).as_ref(), Some(v));
        }
        // A fresh handle reads the same data from disk.
        let again = Store::open(&dir, 1).unwrap();
        for (k, v) in &batch {
            assert_eq!(again.get(*k).as_ref(), Some(v));
        }
        assert_eq!(again.entries().unwrap().len(), 50);
        assert!(store.get(key(9, 0xdead)).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_land_in_the_shard_their_top_byte_names() {
        let dir = tmp_dir("shards");
        let store = Store::open(&dir, 1).unwrap();
        store
            .put_batch(&[
                (key(0x00, 1), vec![1]),
                (key(0xab, 2), vec![2]),
                (key(0xff, 3), vec![3]),
            ])
            .unwrap();
        for shard in [0x00, 0xab, 0xff] {
            assert!(shard_path(&dir, shard).exists(), "shard {shard:02x}");
        }
        let shard_files = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".bin")
            })
            .count();
        assert_eq!(shard_files, 3, "only touched shards get files");
        let stats = store.stats().unwrap();
        assert_eq!(stats.shards, 3);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.largest_shard_entries, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrites_are_merges_not_replacements() {
        let dir = tmp_dir("merge-write");
        let a = Store::open(&dir, 1).unwrap();
        a.put_batch(&[(key(5, 1), vec![1])]).unwrap();
        // A second handle (fresh memo, same dir) adds a different entry to the
        // same shard; the first entry must survive.
        let b = Store::open(&dir, 1).unwrap();
        let put = b.put_batch(&[(key(5, 2), vec![2])]).unwrap();
        assert_eq!(put.inserted, 1);
        let c = Store::open(&dir, 1).unwrap();
        assert_eq!(c.get(key(5, 1)), Some(vec![1]));
        assert_eq!(c.get(key(5, 2)), Some(vec![2]));
        // Re-putting identical content does not grow anything.
        let put = c.put_batch(&[(key(5, 1), vec![1])]).unwrap();
        assert_eq!(put.inserted, 0);
        assert_eq!(put.updated, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_fingerprints_are_invisible_and_replaced() {
        let dir = tmp_dir("fingerprint");
        let old = Store::open(&dir, 1).unwrap();
        old.put_batch(&[(key(7, 1), vec![1]), (key(8, 2), vec![2])])
            .unwrap();
        let new = Store::open(&dir, 2).unwrap();
        assert!(new.get(key(7, 1)).is_none(), "stale entries never hit");
        assert!(new.entries().unwrap().is_empty());
        // Writing shard 7 under the new fingerprint discards the stale file's
        // contents; shard 8 stays stale until gc.
        let put = new.put_batch(&[(key(7, 3), vec![3])]).unwrap();
        assert_eq!(put.discarded_stale, 1);
        let stats = new.stats().unwrap();
        assert_eq!((stats.shards, stats.entries), (1, 1));
        assert_eq!((stats.stale_shards, stats.stale_entries), (1, 1));
        let gc = new.gc(2).unwrap();
        assert_eq!(gc.kept_shards, 1);
        assert_eq!(gc.removed_shards, 1);
        assert_eq!(gc.removed_entries, 1);
        assert!(new.get(key(8, 2)).is_none());
        assert_eq!(new.stats().unwrap().stale_shards, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_from_unions_two_stores() {
        let dir_a = tmp_dir("merge-a");
        let dir_b = tmp_dir("merge-b");
        let a = Store::open(&dir_a, 1).unwrap();
        let b = Store::open(&dir_b, 1).unwrap();
        a.put_batch(&[(key(1, 1), vec![1]), (key(2, 2), vec![2])])
            .unwrap();
        b.put_batch(&[(key(2, 2), vec![2]), (key(3, 3), vec![3])])
            .unwrap();
        let report = a.merge_from(&dir_b).unwrap();
        assert_eq!(report.inserted, 1);
        assert_eq!(report.updated, 1);
        assert_eq!(report.skipped_stale, 0);
        assert_eq!(a.entries().unwrap().len(), 3);
        assert!(report.to_string().contains("1 entries inserted"));
        // Merging a store written under a different fingerprint imports nothing.
        let foreign_dir = tmp_dir("merge-f");
        let foreign = Store::open(&foreign_dir, 9).unwrap();
        foreign.put_batch(&[(key(4, 4), vec![4])]).unwrap();
        let report = a.merge_from(&foreign_dir).unwrap();
        assert_eq!(report.inserted, 0);
        assert_eq!(report.skipped_stale, 1);
        for d in [&dir_a, &dir_b, &foreign_dir] {
            fs::remove_dir_all(d).unwrap();
        }
    }

    #[test]
    fn verify_flags_corruption_and_misplaced_keys() {
        let dir = tmp_dir("verify");
        let store = Store::open(&dir, 1).unwrap();
        store
            .put_batch(&[(key(1, 1), vec![1]), (key(2, 2), vec![2])])
            .unwrap();
        let report = store.verify().unwrap();
        assert!(report.is_ok(), "{report}");
        assert_eq!((report.shards, report.entries), (2, 2));
        // Truncate one shard: verify must flag it at entry granularity.
        let victim = shard_path(&dir, 1);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() - 1]).unwrap();
        let report = store.verify().unwrap();
        assert!(!report.is_ok());
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.corrupt_entries, 1);
        assert!(report.to_string().contains("error"), "{report}");
        // A key stored in the wrong shard is also flagged.
        let mut wrong = HashMap::new();
        wrong.insert(key(9, 9), vec![9]);
        fs::write(shard_path(&dir, 2), serialize_shard(1, &wrong)).unwrap();
        let report = store.verify().unwrap();
        assert!(report
            .errors
            .iter()
            .any(|e| e.contains("belongs in shard 09")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_shards_serve_their_intact_entries() {
        let dir = tmp_dir("salvage-read");
        let store = Store::open(&dir, 1).unwrap();
        let batch: Vec<(u128, Vec<u8>)> =
            (0..8u64).map(|i| (key(3, i), vec![i as u8; 4])).collect();
        store.put_batch(&batch).unwrap();
        // Flip a payload bit of one entry on disk.
        let path = shard_path(&dir, 3);
        let mut bytes = fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 2] ^= 0x10; // payload of the last (highest-key) entry
        fs::write(&path, bytes).unwrap();
        let fresh = Store::open(&dir, 1).unwrap();
        assert!(fresh.get(key(3, 7)).is_none(), "the hit entry is gone");
        for i in 0..7u64 {
            assert_eq!(fresh.get(key(3, i)), Some(vec![i as u8; 4]), "entry {i}");
        }
        assert_eq!(fresh.entries().unwrap().len(), 7);
        let report = fresh.verify().unwrap();
        assert_eq!(report.corrupt_entries, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_salvages_quarantines_and_rewrites() {
        let dir = tmp_dir("repair");
        let store = Store::open(&dir, 1).unwrap();
        let batch: Vec<(u128, Vec<u8>)> =
            (0..10u64).map(|i| (key(4, i), vec![i as u8; 5])).collect();
        store.put_batch(&batch).unwrap();
        store.put_batch(&[(key(5, 1), vec![42])]).unwrap();
        // Corrupt two entries of shard 4 and make shard 6 header-unreadable.
        let path = shard_path(&dir, 4);
        let mut bytes = fs::read(&path).unwrap();
        bytes[24 + 24 + 1] ^= 0x01; // entry 0 payload
        bytes[24 + 29 * 3 + 24 + 2] ^= 0x01; // entry 3 payload
        fs::write(&path, bytes).unwrap();
        fs::write(shard_path(&dir, 6), b"not a shard at all").unwrap();

        let fresh = Store::open(&dir, 1).unwrap();
        let report = fresh.repair().unwrap();
        assert_eq!(report.scanned_shards, 3);
        assert_eq!(report.clean_shards, 1);
        assert_eq!(report.repaired_shards, 1);
        assert_eq!(report.recovered_entries, 8);
        assert_eq!(report.quarantined_entries, 2);
        assert_eq!(report.quarantined_files, 1);
        assert!(report.quarantined_bytes > 0);
        assert!(!report.is_clean());
        assert!(report.to_string().contains("2 quarantined"));

        // Post-repair: verify is clean, the survivors read back, the damaged
        // bytes are preserved under quarantine/.
        let after = Store::open(&dir, 1).unwrap();
        let verify = after.verify().unwrap();
        assert!(verify.is_ok(), "{verify}");
        assert_eq!(verify.corrupt_entries, 0);
        assert_eq!(after.entries().unwrap().len(), 9);
        assert!(after.get(key(4, 0)).is_none());
        assert!(after.get(key(4, 3)).is_none());
        assert_eq!(after.get(key(4, 5)), Some(vec![5u8; 5]));
        assert!(dir.join("quarantine").join("shard-04.bad").exists());
        assert!(dir.join("quarantine").join("shard-06.bad").exists());
        // A second repair pass finds nothing to do.
        assert!(after.repair().unwrap().is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_v1_shards_read_and_upgrade() {
        let dir = tmp_dir("v1-upgrade");
        fs::create_dir_all(&dir).unwrap();
        let mut entries = HashMap::new();
        entries.insert(key(2, 1), vec![1, 2, 3]);
        entries.insert(key(2, 2), vec![4]);
        fs::write(shard_path(&dir, 2), serialize_shard_v1(1, &entries)).unwrap();
        let store = Store::open(&dir, 1).unwrap();
        assert_eq!(store.get(key(2, 1)), Some(vec![1, 2, 3]), "v1 readable");
        let verify = store.verify().unwrap();
        assert!(verify.is_ok());
        assert_eq!(verify.legacy_shards, 1);
        assert!(verify.to_string().contains("legacy"));
        let report = store.repair().unwrap();
        assert_eq!(report.upgraded_shards, 1);
        assert_eq!(report.recovered_entries, 2);
        let bytes = fs::read(shard_path(&dir, 2)).unwrap();
        let scan = scan_shard(&bytes).unwrap();
        assert!(scan.is_clean(), "upgraded to the current version");
        assert_eq!(store.verify().unwrap().legacy_shards, 0);
        assert_eq!(store.get(key(2, 2)), Some(vec![4]), "entries survive");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_batch_heals_damaged_shards_instead_of_discarding() {
        let dir = tmp_dir("put-heal");
        let store = Store::open(&dir, 1).unwrap();
        let batch: Vec<(u128, Vec<u8>)> =
            (0..6u64).map(|i| (key(7, i), vec![i as u8; 3])).collect();
        store.put_batch(&batch).unwrap();
        let path = shard_path(&dir, 7);
        let mut bytes = fs::read(&path).unwrap();
        bytes[24 + 24] ^= 0xff; // corrupt entry 0's payload
        fs::write(&path, bytes).unwrap();
        let fresh = Store::open(&dir, 1).unwrap();
        fresh.put_batch(&[(key(7, 99), vec![9])]).unwrap();
        // Intact survivors + the new entry; damage quarantined, file healed.
        let entries = fresh.entries().unwrap();
        assert_eq!(entries.len(), 6, "5 survivors + 1 new");
        assert!(fresh.verify().unwrap().is_ok());
        assert!(dir.join("quarantine").join("shard-07.bad").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_lose_no_entries() {
        let dir = tmp_dir("concurrent");
        let threads = 8;
        let per_thread = 40u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let dir = dir.clone();
                scope.spawn(move || {
                    let store = Store::open(&dir, 1).unwrap();
                    // Every thread hits the same few shards to force lock
                    // contention and read–merge–write races.
                    let batch: Vec<(u128, Vec<u8>)> = (0..per_thread)
                        .map(|i| (key((i % 4) as u8, t * 1_000 + i), vec![t as u8]))
                        .collect();
                    store.put_batch(&batch).unwrap();
                });
            }
        });
        let store = Store::open(&dir, 1).unwrap();
        assert_eq!(
            store.entries().unwrap().len() as u64,
            threads * per_thread,
            "read–merge–write under the shard lock must not lose entries"
        );
        assert!(store.verify().unwrap().is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_repair_and_writers_lose_no_entries() {
        let dir = tmp_dir("concurrent-repair");
        let seed = Store::open(&dir, 1).unwrap();
        let baseline: Vec<(u128, Vec<u8>)> = (0..40u64)
            .map(|i| (key((i % 4) as u8, i), vec![7]))
            .collect();
        seed.put_batch(&baseline).unwrap();
        // Corrupt one entry so the repairers have real work.
        let path = shard_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 1] ^= 0x08;
        fs::write(&path, bytes).unwrap();
        let threads = 4u64;
        let per_thread = 25u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let dir = dir.clone();
                scope.spawn(move || {
                    let store = Store::open(&dir, 1).unwrap();
                    let batch: Vec<(u128, Vec<u8>)> = (0..per_thread)
                        .map(|i| (key((i % 4) as u8, 1_000 + t * 100 + i), vec![t as u8]))
                        .collect();
                    store.put_batch(&batch).unwrap();
                });
            }
            for _ in 0..2 {
                let dir = dir.clone();
                scope.spawn(move || {
                    let store = Store::open(&dir, 1).unwrap();
                    store.repair().unwrap();
                });
            }
        });
        let store = Store::open(&dir, 1).unwrap();
        let entries = store.entries().unwrap();
        // Exactly one baseline entry was corrupted; whether a writer healed
        // the shard before or after a repairer quarantined it, every other
        // entry and all new ones survive.
        assert!(
            entries.len() as u64 >= 40 - 1 + threads * per_thread,
            "lost entries: only the corrupted one may go ({} left)",
            entries.len()
        );
        assert!(store.verify().unwrap().is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// [`GC_TEMP_MAX_AGE`] is the exact staleness threshold: a temp file is
    /// live strictly below it, reclaimable at or beyond it, and a missing
    /// file is never presumed abandoned.
    #[test]
    fn gc_temp_max_age_is_the_staleness_threshold() {
        let dir = tmp_dir("gc-threshold");
        fs::create_dir_all(&dir).unwrap();
        let store = Store::open(&dir, 1).unwrap();
        let path = dir.join("shard-00.tmp.1");
        fs::write(&path, b"half a write").unwrap();
        assert!(!store.is_stale(&path), "a fresh temp file is presumed live");

        let backdate = |by: std::time::Duration| {
            let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_times(fs::FileTimes::new().set_modified(std::time::SystemTime::now() - by))
                .unwrap();
        };
        backdate(GC_TEMP_MAX_AGE - std::time::Duration::from_secs(5));
        assert!(
            !store.is_stale(&path),
            "just under the threshold is still live"
        );
        backdate(GC_TEMP_MAX_AGE + std::time::Duration::from_secs(5));
        assert!(store.is_stale(&path), "past the threshold is reclaimable");

        assert!(
            !store.is_stale(&dir.join("never-existed.tmp.2")),
            "absence of evidence is not abandonment"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Backdates a file's mtime past the writer-abandonment threshold.
    fn age(path: &Path) {
        let old =
            std::time::SystemTime::now() - (GC_TEMP_MAX_AGE + std::time::Duration::from_secs(30));
        let f = fs::OpenOptions::new().write(true).open(path).unwrap();
        f.set_times(fs::FileTimes::new().set_modified(old)).unwrap();
    }

    #[test]
    fn gc_reclaims_abandoned_temps_but_never_locks() {
        let dir = tmp_dir("gc-strays");
        let store = Store::open(&dir, 1).unwrap();
        store.put_batch(&[(key(1, 1), vec![1])]).unwrap();
        fs::write(dir.join("shard-02.tmp.999"), b"half a write").unwrap();
        fs::write(dir.join("shard-03.tmp.998"), b"in flight").unwrap();
        fs::write(dir.join("unrelated.txt"), b"left alone").unwrap();
        age(&dir.join("shard-02.tmp.999"));
        age(&dir.join("shard-01.lock"));
        let report = store.gc(1).unwrap();
        assert_eq!(report.removed_strays, 1, "only the abandoned temp goes");
        assert_eq!(report.kept_shards, 1);
        assert!(
            dir.join("shard-03.tmp.998").exists(),
            "a fresh temp may belong to a live writer and must survive gc"
        );
        assert!(
            dir.join("shard-01.lock").exists(),
            "lock files are never deleted, however old: a held OS lock lives \
             on the inode, and a fresh inode under the same name would break \
             mutual exclusion"
        );
        assert!(dir.join("unrelated.txt").exists());
        assert!(report.to_string().contains("stray"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_lock_files_from_dead_writers_do_not_block() {
        let dir = tmp_dir("dead-lock");
        let store = Store::open(&dir, 1).unwrap();
        // A crashed writer leaves the lock *file* behind, but the OS released
        // its advisory lock with the process — a new writer must sail through.
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("shard-05.lock"), b"").unwrap();
        store.put_batch(&[(key(5, 1), vec![1])]).unwrap();
        assert_eq!(store.get(key(5, 1)), Some(vec![1]));
        // Acquisition is a real OS lock: while one handle holds it, a second
        // try_lock on the same file fails; after release it succeeds.
        let held = store.lock_shard(6).unwrap();
        let probe = fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join("shard-06.lock"))
            .unwrap();
        assert!(
            probe.try_lock().is_err(),
            "the shard lock is held, so a contender must not acquire"
        );
        drop(held);
        assert!(probe.try_lock().is_ok(), "released on drop");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_is_healthy() {
        let dir = tmp_dir("empty");
        let store = Store::open(&dir, 1).unwrap();
        assert!(store.verify().unwrap().is_ok());
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 0);
        assert!(stats.to_string().contains("0 entries"));
        assert!(store.entries().unwrap().is_empty());
        assert!(format!("{store:?}").contains("Store"));
        assert!(store.repair().unwrap().is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Shard-file binary format: serialization, checksums, and a fault-tolerant
//! scanner.
//!
//! # Layout (version 2, current)
//!
//! ```text
//! magic "SDVS" | version u32 | fingerprint u64 | count u64
//!   count × ( key_lo u64 | key_hi u64 | payload_len u32 | crc32 u32 | payload )
//! ```
//!
//! The per-entry CRC32 (IEEE polynomial) covers `key_lo | key_hi |
//! payload_len | payload` — everything the entry claims — so a bit flip
//! anywhere in an entry is attributable to *that entry*, and
//! [`crate::Store::repair`] can salvage its neighbours.  Version 1 files
//! (identical layout minus the `crc32` field) are still read; entries from
//! them simply carry no per-entry integrity data until a repair rewrites the
//! shard at the current version.
//!
//! # Scanning
//!
//! [`scan_shard`] is deliberately *lenient*: an unreadable header is fatal
//! for the file, but any damage past the header is recorded as a
//! [`ShardFault`] with its byte range, the damaged entry is skipped, and
//! scanning continues wherever framing allows.  Corrupt bytes can therefore
//! only ever cost the entries they landed in.

use std::collections::HashMap;

pub(crate) const MAGIC: &[u8; 4] = b"SDVS";
/// Bump whenever the shard-file layout changes; older readable versions are
/// listed in [`MIN_READ_VERSION`]..=[`STORE_VERSION`].
pub const STORE_VERSION: u32 = 2;
/// Oldest shard-file version [`scan_shard`] still understands.
pub const MIN_READ_VERSION: u32 = 1;

// -------------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3 polynomial, reflected), the same function `zlib` and
/// `cksum -o 3` compute — table-driven, table built at compile time.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    !bytes.iter().fold(!0u32, |crc, &b| {
        (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize]
    })
}

/// The bytes an entry's CRC covers: its full framing plus payload.
fn entry_crc(key: u128, payload: &[u8]) -> u32 {
    let mut buf = Vec::with_capacity(20 + payload.len());
    buf.extend_from_slice(&(key as u64).to_le_bytes());
    buf.extend_from_slice(&((key >> 64) as u64).to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    crc32(&buf)
}

// ------------------------------------------------------------ serialization

/// Serializes entries as a current-version shard file.
///
/// Entry order is deterministic (sorted by key) so byte-identical content
/// produces byte-identical files — CI cache stability, golden fixtures, and
/// the truncation property tests all rely on this.
#[must_use]
pub fn serialize_shard(fingerprint: u64, entries: &HashMap<u128, Vec<u8>>) -> Vec<u8> {
    serialize_with_version(STORE_VERSION, fingerprint, entries)
}

/// Serializes entries in the legacy CRC-less version-1 layout.
///
/// Only for tests and fixtures proving that old shards stay readable; the
/// store itself always writes the current version.
#[must_use]
pub fn serialize_shard_v1(fingerprint: u64, entries: &HashMap<u128, Vec<u8>>) -> Vec<u8> {
    serialize_with_version(1, fingerprint, entries)
}

fn serialize_with_version(
    version: u32,
    fingerprint: u64,
    entries: &HashMap<u128, Vec<u8>>,
) -> Vec<u8> {
    let mut keys: Vec<&u128> = entries.keys().collect();
    keys.sort_unstable();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for key in keys {
        let payload = &entries[key];
        out.extend_from_slice(&(*key as u64).to_le_bytes());
        out.extend_from_slice(&((key >> 64) as u64).to_le_bytes());
        out.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("payload fits u32")
                .to_le_bytes(),
        );
        if version >= 2 {
            out.extend_from_slice(&entry_crc(*key, payload).to_le_bytes());
        }
        out.extend_from_slice(payload);
    }
    out
}

// ----------------------------------------------------------------- scanning

/// One localized defect found while scanning a shard file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFault {
    /// Human-readable description (`entry 3: crc mismatch …`).
    pub what: String,
    /// The byte range `[start, end)` of the damaged region in the file —
    /// what [`crate::Store::repair`] quarantines.
    pub range: (usize, usize),
    /// How many entries this fault definitely cost (0 for trailing garbage).
    pub entries_lost: u64,
}

/// The outcome of leniently scanning one shard file.
#[derive(Debug, Clone, Default)]
pub struct ShardScan {
    /// The file's format version (1 or 2).
    pub version: u32,
    /// The producer fingerprint the file was written under.
    pub fingerprint: u64,
    /// Every entry whose bytes checked out.
    pub entries: HashMap<u128, Vec<u8>>,
    /// Localized damage found past the header; empty for a healthy file.
    pub faults: Vec<ShardFault>,
}

impl ShardScan {
    /// `true` when the file parsed without a single fault at the current
    /// format version (version-1 files are readable but not *clean* — a
    /// repair pass upgrades them).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty() && self.version == STORE_VERSION
    }

    /// Total entries lost to faults (corrupt, truncated, or duplicate).
    #[must_use]
    pub fn corrupt_entries(&self) -> u64 {
        self.faults.iter().map(|f| f.entries_lost).sum()
    }

    /// Total damaged bytes across all fault ranges.
    #[must_use]
    pub fn quarantine_bytes(&self) -> u64 {
        self.faults
            .iter()
            .map(|f| (f.range.1 - f.range.0) as u64)
            .sum()
    }
}

/// A bounds-checked little-endian reader that remembers its position.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let (head, rest) = self
            .buf
            .split_at_checked(n)
            .ok_or_else(|| format!("truncated at a {n}-byte field ({} left)", self.buf.len()))?;
        self.buf = rest;
        self.pos += n;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Leniently parses a shard file.
///
/// # Errors
///
/// `Err` only when the *header* is unreadable (too short, bad magic, or an
/// unknown version) — then nothing in the file can be trusted and repair
/// quarantines it whole.  All damage past the header comes back as
/// [`ShardScan::faults`] alongside every entry that survived.
pub fn scan_shard(bytes: &[u8]) -> Result<ShardScan, String> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err("bad magic".into());
    }
    let version = c.u32()?;
    if !(MIN_READ_VERSION..=STORE_VERSION).contains(&version) {
        return Err(format!(
            "version {version}, expected {MIN_READ_VERSION}..={STORE_VERSION}"
        ));
    }
    let fingerprint = c.u64()?;
    let count = c.u64()?;
    let mut scan = ShardScan {
        version,
        fingerprint,
        ..ShardScan::default()
    };
    for i in 0..count {
        let start = c.pos;
        let framing = (|| {
            let lo = c.u64()?;
            let hi = c.u64()?;
            let len = c.u32()?;
            let stored_crc = if version >= 2 { Some(c.u32()?) } else { None };
            let payload = c.take(len as usize)?;
            Ok::<_, String>((lo, hi, stored_crc, payload))
        })();
        let (lo, hi, stored_crc, payload) = match framing {
            Ok(parts) => parts,
            Err(e) => {
                // Framing is gone: nothing after this point can be trusted
                // to start where an entry starts, so the rest of the file is
                // one quarantined region.
                scan.faults.push(ShardFault {
                    what: format!("entry {i}: {e}"),
                    range: (start, bytes.len()),
                    entries_lost: count - i,
                });
                return Ok(scan);
            }
        };
        let key = (u128::from(hi) << 64) | u128::from(lo);
        if let Some(stored) = stored_crc {
            let computed = entry_crc(key, payload);
            if stored != computed {
                scan.faults.push(ShardFault {
                    what: format!(
                        "entry {i}: crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
                    ),
                    range: (start, c.pos),
                    entries_lost: 1,
                });
                continue;
            }
        }
        if scan.entries.insert(key, payload.to_vec()).is_some() {
            scan.faults.push(ShardFault {
                what: format!("entry {i}: duplicate key {key:#034x}"),
                range: (start, c.pos),
                entries_lost: 1,
            });
        }
    }
    if !c.buf.is_empty() {
        scan.faults.push(ShardFault {
            what: format!("{} trailing bytes after {count} entries", c.buf.len()),
            range: (c.pos, bytes.len()),
            entries_lost: 0,
        });
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value and a couple of zlib-verified ones.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"hello"), 0x3610_a686);
    }

    #[test]
    fn clean_round_trip_both_versions() {
        let mut entries = HashMap::new();
        entries.insert(1u128 << 120 | 7, vec![1, 2, 3]);
        entries.insert(1u128 << 120 | 9, vec![]);
        for (bytes, version) in [
            (serialize_shard(0xfeed, &entries), STORE_VERSION),
            (serialize_shard_v1(0xfeed, &entries), 1),
        ] {
            let scan = scan_shard(&bytes).unwrap();
            assert_eq!(scan.version, version);
            assert_eq!(scan.fingerprint, 0xfeed);
            assert_eq!(scan.entries, entries);
            assert!(scan.faults.is_empty());
            assert_eq!(scan.is_clean(), version == STORE_VERSION);
        }
    }

    #[test]
    fn bit_flip_loses_exactly_one_entry() {
        let mut entries = HashMap::new();
        for i in 0..5u128 {
            entries.insert(1u128 << 120 | i, vec![i as u8; 8]);
        }
        let mut bytes = serialize_shard(1, &entries);
        // Flip one payload bit of entry 1 (header 24, each entry 24 framing
        // + 8 payload).
        let victim = 24 + 32 + 24 + 2;
        bytes[victim] ^= 0x40;
        let scan = scan_shard(&bytes).unwrap();
        assert_eq!(scan.faults.len(), 1, "{:?}", scan.faults);
        assert_eq!(scan.corrupt_entries(), 1);
        assert_eq!(scan.entries.len(), 4, "neighbours survive");
        assert!(scan.faults[0].what.contains("crc mismatch"));
    }

    #[test]
    fn truncation_keeps_every_fully_intact_entry() {
        let mut entries = HashMap::new();
        for i in 0..4u128 {
            entries.insert(2u128 << 120 | i, vec![0xab; 6]);
        }
        let bytes = serialize_shard(1, &entries);
        let header = 24;
        let per_entry = 8 + 8 + 4 + 4 + 6;
        // Cut in the middle of entry 2: entries 0 and 1 survive.
        let cut = header + 2 * per_entry + 3;
        let scan = scan_shard(&bytes[..cut]).unwrap();
        assert_eq!(scan.entries.len(), 2);
        assert_eq!(scan.corrupt_entries(), 2, "entry 2 and the unseen entry 3");
        assert_eq!(scan.faults[0].range, (header + 2 * per_entry, cut));
    }

    #[test]
    fn header_damage_is_fatal() {
        let bytes = serialize_shard(1, &HashMap::new());
        assert!(scan_shard(&bytes[..3]).is_err(), "short header");
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(scan_shard(&bad).is_err(), "bad magic");
        let mut future = bytes;
        future[4] = 99;
        assert!(scan_shard(&future).is_err(), "unknown version");
    }

    #[test]
    fn trailing_bytes_are_a_fault_not_a_loss() {
        let mut entries = HashMap::new();
        entries.insert(7u128, vec![1]);
        let mut bytes = serialize_shard(1, &entries);
        bytes.extend_from_slice(b"junk");
        let scan = scan_shard(&bytes).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.corrupt_entries(), 0);
        assert_eq!(scan.faults.len(), 1);
        assert!(scan.faults[0].what.contains("trailing"));
        assert_eq!(scan.quarantine_bytes(), 4);
    }
}

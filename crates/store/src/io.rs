//! The store's I/O seam: every filesystem touch goes through [`StoreIo`].
//!
//! Production code uses [`RealIo`] (a zero-cost veneer over `std::fs`); tests
//! swap in [`crate::fault::FaultPlan`] to inject crashes, torn writes, bit
//! flips, and resource-exhaustion errors at named points — deterministically,
//! so every recovery path is provable by property test rather than waiting
//! for a real disk to misbehave.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Filesystem operations the store performs, as an injectable trait.
///
/// The default implementation is [`RealIo`].  Implementations must be
/// thread-safe: the store shares one handle across all writer threads.
pub trait StoreIo: Send + Sync {
    /// Reads a whole file (`std::fs::read`).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes a whole file, creating or truncating it (`std::fs::write`).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` onto `to` (`std::fs::rename`).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Deletes a file (`std::fs::remove_file`).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates a directory and all parents (`std::fs::create_dir_all`).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Opens (creating if necessary) `path` and takes the OS advisory lock on
    /// it, blocking until the current holder releases.  The lock is released
    /// when the returned handle drops — including when the holder crashes,
    /// which is the property the whole locking scheme rests on.
    ///
    /// # Errors
    /// Propagates the underlying open or lock failure.
    fn lock(&self, path: &Path) -> io::Result<fs::File>;

    /// Lists the entries of a directory (paths, any order).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// A file's size in bytes.
    ///
    /// # Errors
    /// Propagates the underlying metadata failure.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// A file's last-modified time.
    ///
    /// # Errors
    /// Propagates the underlying metadata failure.
    fn modified(&self, path: &Path) -> io::Result<SystemTime>;

    /// Whether a file exists (default: probes via [`StoreIo::file_len`]).
    fn exists(&self, path: &Path) -> bool {
        self.file_len(path).is_ok()
    }
}

/// The production [`StoreIo`]: plain `std::fs`, no interposition.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn lock(&self, path: &Path) -> io::Result<fs::File> {
        let file = fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        // Blocks until the current holder releases (or its process dies).
        file.lock()?;
        Ok(file)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        fs::read_dir(path)?
            .map(|item| item.map(|e| e.path()))
            .collect()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        fs::metadata(path).map(|m| m.len())
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        fs::metadata(path)?.modified()
    }
}

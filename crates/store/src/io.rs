//! The store's I/O seam: every filesystem touch goes through [`StoreIo`].
//!
//! Production code uses [`RealIo`] (a zero-cost veneer over `std::fs`); tests
//! swap in [`crate::fault::FaultPlan`] to inject crashes, torn writes, bit
//! flips, and resource-exhaustion errors at named points — deterministically,
//! so every recovery path is provable by property test rather than waiting
//! for a real disk to misbehave.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

use sdv_obs::Obs;

/// Filesystem operations the store performs, as an injectable trait.
///
/// The default implementation is [`RealIo`].  Implementations must be
/// thread-safe: the store shares one handle across all writer threads.
pub trait StoreIo: Send + Sync {
    /// Reads a whole file (`std::fs::read`).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes a whole file, creating or truncating it (`std::fs::write`).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` onto `to` (`std::fs::rename`).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Deletes a file (`std::fs::remove_file`).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates a directory and all parents (`std::fs::create_dir_all`).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Opens (creating if necessary) `path` and takes the OS advisory lock on
    /// it, blocking until the current holder releases.  The lock is released
    /// when the returned handle drops — including when the holder crashes,
    /// which is the property the whole locking scheme rests on.
    ///
    /// # Errors
    /// Propagates the underlying open or lock failure.
    fn lock(&self, path: &Path) -> io::Result<fs::File>;

    /// Lists the entries of a directory (paths, any order).
    ///
    /// # Errors
    /// Propagates the underlying I/O failure.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// A file's size in bytes.
    ///
    /// # Errors
    /// Propagates the underlying metadata failure.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// A file's last-modified time.
    ///
    /// # Errors
    /// Propagates the underlying metadata failure.
    fn modified(&self, path: &Path) -> io::Result<SystemTime>;

    /// Whether a file exists (default: probes via [`StoreIo::file_len`]).
    fn exists(&self, path: &Path) -> bool {
        self.file_len(path).is_ok()
    }
}

/// The production [`StoreIo`]: plain `std::fs`, no interposition.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn lock(&self, path: &Path) -> io::Result<fs::File> {
        let file = fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        // Blocks until the current holder releases (or its process dies).
        file.lock()?;
        Ok(file)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        fs::read_dir(path)?
            .map(|item| item.map(|e| e.path()))
            .collect()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        fs::metadata(path).map(|m| m.len())
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        fs::metadata(path)?.modified()
    }
}

/// Bucket bounds (µs) for the lock-wait histogram: 100µs, 1ms, 10ms, 100ms,
/// 1s.  An uncontended advisory lock lands in the first bucket; anything in
/// the last two means writers are genuinely serializing on a shard.
pub const LOCK_WAIT_BOUNDS_MICROS: [f64; 5] = [100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0];

/// A counting decorator over any [`StoreIo`]: every call increments
/// `store.io.<op>.calls` (and `.errors` on failure) in the attached
/// [`Obs`] registry, and [`StoreIo::lock`] additionally records how long the
/// advisory lock blocked — a histogram plus, under tracing, a span per wait.
///
/// Pure observation: results and errors pass through untouched, so stacking
/// this over a [`crate::fault::FaultPlan`] observes the injected faults too.
pub struct ObservedIo {
    inner: Arc<dyn StoreIo>,
    obs: Arc<Obs>,
}

impl ObservedIo {
    /// Wraps `inner`, reporting into `obs`.
    #[must_use]
    pub fn new(inner: Arc<dyn StoreIo>, obs: Arc<Obs>) -> Self {
        ObservedIo { inner, obs }
    }

    fn count<T>(&self, op: &str, result: io::Result<T>) -> io::Result<T> {
        self.obs.counter(&format!("store.io.{op}.calls"), 1);
        if result.is_err() {
            self.obs.counter(&format!("store.io.{op}.errors"), 1);
        }
        result
    }
}

impl StoreIo for ObservedIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.count("read", self.inner.read(path))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.obs.counter("store.io.write.bytes", bytes.len() as u64);
        self.count("write", self.inner.write(path, bytes))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.count("rename", self.inner.rename(from, to))
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.count("remove_file", self.inner.remove_file(path))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.count("create_dir_all", self.inner.create_dir_all(path))
    }

    fn lock(&self, path: &Path) -> io::Result<fs::File> {
        let t0 = self.obs.now_micros();
        let result = self.inner.lock(path);
        let waited = self.obs.now_micros().saturating_sub(t0);
        self.obs.observe(
            "store.io.lock_wait_micros",
            &LOCK_WAIT_BOUNDS_MICROS,
            waited as f64,
        );
        self.obs.span(
            "lock wait",
            "store",
            t0,
            &[("path", path.display().to_string())],
        );
        self.count("lock", result)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.count("read_dir", self.inner.read_dir(path))
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.count("file_len", self.inner.file_len(path))
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        self.count("modified", self.inner.modified(path))
    }
}

//! Configuration of the dynamic-vectorization hardware.

/// Sizing of the structures the mechanism adds to the processor.
///
/// The defaults reproduce Table 1 and the storage accounting of §4.1:
/// 128 vector registers of 4 × 64-bit elements, a 4-way × 512-set Table of
/// Loads and a 4-way × 64-set VRMT, for a total of ~56 KB of extra storage
/// (4 KB + 4608 B + 48 KB = 57 856 B, which the paper rounds to 56 KB).
///
/// ```
/// use sdv_core::DvConfig;
///
/// let cfg = DvConfig::default();
/// assert_eq!(cfg.extra_storage_bytes(), 57_856);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DvConfig {
    /// Number of vector registers (paper: 128).
    pub vector_registers: usize,
    /// Elements per vector register (paper: 4).
    pub vector_length: usize,
    /// Bytes per vector element (paper: 8).
    pub element_bytes: usize,
    /// Sets in the Table of Loads (paper: 512).
    pub tl_sets: usize,
    /// Associativity of the Table of Loads (paper: 4).
    pub tl_ways: usize,
    /// Confidence needed before a load is vectorized (paper: 2).
    pub confidence_threshold: u8,
    /// Sets in the Vector Register Map Table (paper: 64).
    pub vrmt_sets: usize,
    /// Associativity of the VRMT (paper: 4).
    pub vrmt_ways: usize,
    /// When `true`, vector registers, TL and VRMT capacities are treated as
    /// unlimited.  Used for the "unbounded resources" measurement of Figure 3.
    pub unbounded: bool,
}

impl Default for DvConfig {
    fn default() -> Self {
        DvConfig {
            vector_registers: 128,
            vector_length: 4,
            element_bytes: 8,
            tl_sets: 512,
            tl_ways: 4,
            confidence_threshold: 2,
            vrmt_sets: 64,
            vrmt_ways: 4,
            unbounded: false,
        }
    }
}

impl DvConfig {
    /// The configuration used for Figure 3: unlimited vector registers, TL and VRMT.
    #[must_use]
    pub fn unbounded() -> Self {
        DvConfig {
            unbounded: true,
            ..DvConfig::default()
        }
    }

    /// Bytes of storage used by the vector register file
    /// (paper: 4 elements × 8 bytes × 128 registers = 4 KB).
    #[must_use]
    pub fn vector_file_bytes(&self) -> usize {
        self.vector_registers * self.vector_length * self.element_bytes
    }

    /// Bytes of storage used by the VRMT, at the paper's 18 bytes per entry.
    #[must_use]
    pub fn vrmt_bytes(&self) -> usize {
        self.vrmt_sets * self.vrmt_ways * 18
    }

    /// Bytes of storage used by the Table of Loads, at the paper's 24 bytes per entry.
    #[must_use]
    pub fn tl_bytes(&self) -> usize {
        self.tl_sets * self.tl_ways * 24
    }

    /// Total extra storage required by the mechanism (§4.1 quotes ~56 KB).
    #[must_use]
    pub fn extra_storage_bytes(&self) -> usize {
        self.vector_file_bytes() + self.vrmt_bytes() + self.tl_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_the_paper() {
        let cfg = DvConfig::default();
        assert_eq!(cfg.vector_file_bytes(), 4 * 1024);
        assert_eq!(cfg.vrmt_bytes(), 4608);
        assert_eq!(cfg.tl_bytes(), 49152);
        // 57 856 bytes, which §4.1 rounds down to "56 Kbytes".
        assert_eq!(cfg.extra_storage_bytes(), 57_856);
        assert!(cfg.extra_storage_bytes() >= 56 * 1024);
    }

    #[test]
    fn unbounded_preset() {
        let cfg = DvConfig::unbounded();
        assert!(cfg.unbounded);
        assert_eq!(cfg.vector_length, 4);
        assert!(!DvConfig::default().unbounded);
    }
}

//! The vectorization decision engine.
//!
//! [`VectorizationEngine`] owns the Table of Loads, the VRMT, the vector
//! register file and the speculative/committed logical-register maps, and
//! implements the decode- and commit-time rules of §3.2–§3.6.  It is entirely
//! timing-agnostic: the pipeline model (`sdv-uarch`) feeds it events and uses
//! the returned [`DecodeOutcome`] to decide what to do with each instruction.

use crate::config::DvConfig;
use crate::stats::DvStats;
use crate::tl::TableOfLoads;
use crate::vreg::{VectorRegisterFile, VregId};
use crate::vrmt::{LoadPattern, Operand, Vrmt, VrmtEntry};
use sdv_isa::{ArchReg, OpClass, NUM_ARCH_REGS};

/// What a vector instance computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorOpKind {
    /// A vectorized load: elements are fetched from memory following `pattern`.
    Load {
        /// The predicted address pattern.
        pattern: LoadPattern,
    },
    /// A vectorized arithmetic operation of the given class.
    Arith {
        /// Functional-unit class of the operation.
        class: OpClass,
    },
}

/// A newly created vector instance that must be dispatched to the vector data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewVectorInstance {
    /// Destination vector register.
    pub vreg: VregId,
    /// PC of the owning static instruction.
    pub pc: u64,
    /// What to compute.
    pub kind: VectorOpKind,
    /// First element index to compute (elements below it are never produced;
    /// Figure 9 reports how often this is non-zero).
    pub start_offset: usize,
    /// First source operand (element-aligned with the destination).
    pub src1: Operand,
    /// Second source operand.
    pub src2: Operand,
}

/// The decision taken for one decoded scalar instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// Execute in scalar mode (not vectorized, vectorization impossible, or a
    /// validation just failed).
    Scalar,
    /// The instruction was turned into a validation of `offset` in `vreg`
    /// (§3.2).  It must not execute; it completes once the element is ready
    /// and, at commit, sets the element's V flag.
    Validation {
        /// The vector register being validated.
        vreg: VregId,
        /// The element being validated.
        offset: usize,
        /// §3.2: "if the validated element is the last one of the vector, a
        /// new instance of the vectorized instruction is dispatched to the
        /// vector data-path".  For vectorized loads this follow-on instance
        /// continues the address pattern one vector length further, so the
        /// data is prefetched before the scalar stream reaches it.
        follow_on: Option<NewVectorInstance>,
    },
    /// The instruction triggered the creation of a new vector instance.  The
    /// scalar instruction itself behaves as a validation of element
    /// `instance.start_offset`, and `instance` must be dispatched to the
    /// vector data path.
    NewVector {
        /// The instance to launch.
        instance: NewVectorInstance,
    },
}

impl DecodeOutcome {
    /// Whether the instruction was executed in vector mode (validation or new instance).
    #[must_use]
    pub fn is_vectorized(&self) -> bool {
        !matches!(self, DecodeOutcome::Scalar)
    }

    /// The element this instruction validates, if it was vectorized.
    #[must_use]
    pub fn validated_element(&self) -> Option<(VregId, usize)> {
        match self {
            DecodeOutcome::Scalar => None,
            DecodeOutcome::Validation { vreg, offset, .. } => Some((*vreg, *offset)),
            DecodeOutcome::NewVector { instance } => Some((instance.vreg, instance.start_offset)),
        }
    }

    /// The vector instance that must be launched on the vector data path as a
    /// consequence of this decode, if any.
    #[must_use]
    pub fn instance_to_launch(&self) -> Option<&NewVectorInstance> {
        match self {
            DecodeOutcome::Scalar => None,
            DecodeOutcome::Validation { follow_on, .. } => follow_on.as_ref(),
            DecodeOutcome::NewVector { instance } => Some(instance),
        }
    }
}

/// The result of checking a committing store against the vector registers (§3.6).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreCheck {
    /// Vector registers whose address range contains the stored address.
    pub conflicting: Vec<VregId>,
    /// Whether the pipeline must squash the instructions following the store.
    pub squash: bool,
}

/// Everything the engine needs to know about a decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeContext {
    /// PC of the instruction.
    pub pc: u64,
    /// Operation class.
    pub class: OpClass,
    /// Destination architectural register, if any.
    pub dst: Option<ArchReg>,
    /// Source registers and their current architectural values (bit patterns).
    pub srcs: [Option<(ArchReg, u64)>; 2],
    /// Effective address (loads and stores).
    pub ea: Option<u64>,
    /// Memory access width in bytes (loads and stores).
    pub mem_width: Option<u64>,
}

impl DecodeContext {
    /// A load: `dst = mem[ea]` with an access of `width` bytes.
    #[must_use]
    pub fn load(pc: u64, dst: ArchReg, ea: u64, width: u64) -> Self {
        DecodeContext {
            pc,
            class: OpClass::Load,
            dst: Some(dst),
            srcs: [None, None],
            ea: Some(ea),
            mem_width: Some(width),
        }
    }

    /// An arithmetic instruction with up to two register sources
    /// (`(register, current value)` pairs).
    #[must_use]
    pub fn arith(pc: u64, class: OpClass, dst: ArchReg, srcs: [Option<(ArchReg, u64)>; 2]) -> Self {
        DecodeContext {
            pc,
            class,
            dst: Some(dst),
            srcs,
            ea: None,
            mem_width: None,
        }
    }

    /// Any other instruction (store, branch, jump, …); only its destination
    /// register (if any) matters to the engine.
    #[must_use]
    pub fn other(pc: u64, class: OpClass, dst: Option<ArchReg>) -> Self {
        DecodeContext {
            pc,
            class,
            dst,
            srcs: [None, None],
            ea: None,
            mem_width: None,
        }
    }
}

/// The speculative dynamic vectorization engine.
#[derive(Debug, Clone)]
pub struct VectorizationEngine {
    cfg: DvConfig,
    tl: TableOfLoads,
    vrmt: Vrmt,
    vrf: VectorRegisterFile,
    /// Speculative decode-time mapping: logical register → latest vector element.
    reg_map: Vec<Option<(VregId, usize)>>,
    /// Commit-time mapping: logical register → last committed vector element
    /// (used to set F flags when the next producer of the register commits).
    committed_map: Vec<Option<(VregId, usize)>>,
    /// Per-vector-register count of references from `reg_map` and
    /// `committed_map` combined, so the release scan's liveness check is O(1)
    /// per register instead of a walk over both maps.
    map_refs: Vec<u32>,
    /// Global Most Recent Backward Branch (PC of the last committed backward branch).
    gmrbb: u64,
    /// Backward-branch commits since the last full release scan (the scan is
    /// throttled because it walks every allocated register).
    release_pending: u32,
    /// Reusable buffers for the release scan (it runs on the decode/commit
    /// fast path, so it must not allocate per invocation).
    release_scratch: Vec<VregId>,
    reclaim_scratch: Vec<VregId>,
    stats: DvStats,
}

impl VectorizationEngine {
    /// Creates an engine with the given hardware sizing.
    #[must_use]
    pub fn new(cfg: &DvConfig) -> Self {
        VectorizationEngine {
            cfg: *cfg,
            tl: TableOfLoads::new(
                cfg.tl_sets,
                cfg.tl_ways,
                cfg.confidence_threshold,
                cfg.unbounded,
            ),
            vrmt: Vrmt::new(cfg.vrmt_sets, cfg.vrmt_ways, cfg.unbounded),
            vrf: VectorRegisterFile::new(cfg.vector_registers, cfg.vector_length, cfg.unbounded),
            reg_map: vec![None; NUM_ARCH_REGS],
            committed_map: vec![None; NUM_ARCH_REGS],
            map_refs: vec![0; cfg.vector_registers],
            gmrbb: 0,
            release_pending: 0,
            release_scratch: Vec::new(),
            reclaim_scratch: Vec::new(),
            stats: DvStats::default(),
        }
    }

    fn map_ref_inc(map_refs: &mut Vec<u32>, id: VregId) {
        let idx = id.index();
        if idx >= map_refs.len() {
            map_refs.resize(idx + 1, 0);
        }
        map_refs[idx] += 1;
    }

    fn map_ref_dec(map_refs: &mut [u32], id: VregId) {
        debug_assert!(map_refs.get(id.index()).is_some_and(|&c| c > 0));
        if let Some(c) = map_refs.get_mut(id.index()) {
            *c = c.saturating_sub(1);
        }
    }

    /// Writes a speculative-map slot, maintaining the reference counts.
    fn set_reg_map(&mut self, slot: usize, value: Option<(VregId, usize)>) {
        if let Some((old, _)) = self.reg_map[slot] {
            Self::map_ref_dec(&mut self.map_refs, old);
        }
        if let Some((new, _)) = value {
            Self::map_ref_inc(&mut self.map_refs, new);
        }
        self.reg_map[slot] = value;
    }

    /// Writes a committed-map slot, maintaining the reference counts.
    fn set_committed_map(&mut self, slot: usize, value: Option<(VregId, usize)>) {
        if let Some((old, _)) = self.committed_map[slot] {
            Self::map_ref_dec(&mut self.map_refs, old);
        }
        if let Some((new, _)) = value {
            Self::map_ref_inc(&mut self.map_refs, new);
        }
        self.committed_map[slot] = value;
    }

    /// The hardware configuration.
    #[must_use]
    pub fn config(&self) -> &DvConfig {
        &self.cfg
    }

    /// Event counters.
    #[must_use]
    pub fn stats(&self) -> &DvStats {
        &self.stats
    }

    /// The vector register file (element flags, usage statistics).
    #[must_use]
    pub fn vrf(&self) -> &VectorRegisterFile {
        &self.vrf
    }

    /// The Table of Loads.
    #[must_use]
    pub fn tl(&self) -> &TableOfLoads {
        &self.tl
    }

    /// The VRMT.
    #[must_use]
    pub fn vrmt(&self) -> &Vrmt {
        &self.vrmt
    }

    /// The PC held by the GMRBB register.
    #[must_use]
    pub fn gmrbb(&self) -> u64 {
        self.gmrbb
    }

    /// The vector element a logical register is currently (speculatively) mapped to.
    #[must_use]
    pub fn current_mapping(&self, reg: ArchReg) -> Option<(VregId, usize)> {
        self.reg_map[reg.flat_index()]
    }

    /// Batched form of [`Self::current_mapping`]: resolves both source
    /// operands of one instruction in a single call.  The pipeline's group
    /// dispatch uses this to take one mapping pass per instruction instead
    /// of re-querying each register for every predicate it evaluates.
    #[must_use]
    pub fn current_mappings(&self, srcs: [Option<ArchReg>; 2]) -> [Option<(VregId, usize)>; 2] {
        srcs.map(|reg| reg.and_then(|r| self.reg_map[r.flat_index()]))
    }

    /// Whether element `offset` of `vreg` has been computed (its R flag is set).
    #[must_use]
    pub fn element_ready(&self, vreg: VregId, offset: usize) -> bool {
        self.vrf.is_ready(vreg, offset)
    }

    /// Whether element `offset` of `vreg` has been poisoned by a mis-speculation.
    #[must_use]
    pub fn element_poisoned(&self, vreg: VregId, offset: usize) -> bool {
        self.vrf.is_poisoned(vreg, offset)
    }

    /// The allocation generation of `vreg`, used by the pipeline to detect
    /// that a register it was tracking has been released and re-allocated.
    #[must_use]
    pub fn vreg_generation(&self, vreg: VregId) -> u64 {
        self.vrf.generation(vreg)
    }

    /// Marks element `offset` of `vreg` as computed (called by the vector data path).
    pub fn set_element_ready(&mut self, vreg: VregId, offset: usize) {
        self.vrf.set_ready(vreg, offset);
    }

    // ------------------------------------------------------------- decode

    /// Processes one decoded instruction and decides whether it executes in
    /// scalar mode, validates a vector element, or spawns a new vector instance.
    pub fn decode(&mut self, ctx: &DecodeContext) -> DecodeOutcome {
        match ctx.class {
            OpClass::Load => self.decode_load(ctx),
            c if c.is_vectorizable() => self.decode_arith(ctx),
            _ => {
                // Stores, branches, jumps, nops: never vectorized.  A scalar
                // write to a register ends its association with a vector element.
                if let Some(dst) = ctx.dst {
                    self.set_reg_map(dst.flat_index(), None);
                }
                DecodeOutcome::Scalar
            }
        }
    }

    fn decode_load(&mut self, ctx: &DecodeContext) -> DecodeOutcome {
        let ea = ctx.ea.expect("load context carries an effective address");
        let width = ctx.mem_width.expect("load context carries a width");
        let dst = ctx.dst.expect("loads have a destination");
        self.stats.loads_observed += 1;
        let obs = self.tl.observe(ctx.pc, ea);

        if let Some(entry) = self.vrmt.lookup(ctx.pc).copied() {
            let vl = self.cfg.vector_length;
            if entry.offset < vl {
                let pattern = entry.load.expect("load VRMT entries carry a pattern");
                let expected = pattern.addr_of(entry.offset);
                let healthy = self.vrf.get(entry.vreg).is_allocated()
                    && !self.vrf.is_poisoned(entry.vreg, entry.offset);
                if healthy && expected == ea {
                    self.stats.load_validations += 1;
                    return self.validate_element(ctx.pc, entry, dst);
                }
                // Mis-speculation: the predicted address was wrong or the
                // register was invalidated.  Fall back to scalar and let a new
                // pattern be re-detected.
                self.stats.validation_failures += 1;
                if self.vrf.get(entry.vreg).is_allocated() {
                    self.vrf.poison_from(entry.vreg, entry.offset);
                }
                self.vrmt.invalidate_pc(ctx.pc);
                self.unmap_if_points_to(dst, entry.vreg);
            } else {
                // Every element has been validated: this instance starts the
                // next vector instance (or goes scalar if that fails).
                self.vrmt.invalidate_pc(ctx.pc);
            }
        }

        if obs.vectorize {
            if let Some(outcome) = self.new_load_instance(ctx.pc, dst, ea, obs.stride, width) {
                return outcome;
            }
        }
        self.set_reg_map(dst.flat_index(), None);
        DecodeOutcome::Scalar
    }

    fn decode_arith(&mut self, ctx: &DecodeContext) -> DecodeOutcome {
        let dst = ctx.dst.expect("vectorizable arithmetic has a destination");
        let current_ops = [
            self.describe_operand(ctx.srcs[0]),
            self.describe_operand(ctx.srcs[1]),
        ];
        let any_vector = current_ops.iter().any(Operand::is_vector);

        if let Some(entry) = self.vrmt.lookup(ctx.pc).copied() {
            let vl = self.cfg.vector_length;
            if entry.offset < vl {
                let healthy = self.vrf.get(entry.vreg).is_allocated()
                    && !self.vrf.is_poisoned(entry.vreg, entry.offset)
                    && self.sources_healthy(&entry, entry.offset);
                let matches = operands_match(&entry.src1, &current_ops[0])
                    && operands_match(&entry.src2, &current_ops[1]);
                if healthy && matches {
                    self.stats.arith_validations += 1;
                    return self.validate_element(ctx.pc, entry, dst);
                }
                self.stats.validation_failures += 1;
                if self.vrf.get(entry.vreg).is_allocated() {
                    self.vrf.poison_from(entry.vreg, entry.offset);
                }
                self.vrmt.invalidate_pc(ctx.pc);
                self.unmap_if_points_to(dst, entry.vreg);
            } else {
                self.vrmt.invalidate_pc(ctx.pc);
            }
        }

        if any_vector {
            if let Some(outcome) = self.new_arith_instance(ctx.pc, ctx.class, dst, current_ops) {
                return outcome;
            }
        }
        self.set_reg_map(dst.flat_index(), None);
        DecodeOutcome::Scalar
    }

    /// Turns the current scalar instance into a validation of
    /// `entry.offset` and advances the VRMT offset.  When the last element of
    /// a vectorized load is validated, a follow-on instance continuing the
    /// address pattern is created immediately (§3.2).
    fn validate_element(&mut self, pc: u64, entry: VrmtEntry, dst: ArchReg) -> DecodeOutcome {
        let offset = entry.offset;
        self.vrf.mark_used(entry.vreg, offset);
        self.set_reg_map(dst.flat_index(), Some((entry.vreg, offset)));
        if let Some(e) = self.vrmt.lookup_mut(pc) {
            e.offset = offset + 1;
        }
        let mut follow_on = None;
        if offset + 1 == self.cfg.vector_length {
            if let Some(pattern) = entry.load {
                follow_on = self.follow_on_load_instance(pc, pattern);
            }
        }
        DecodeOutcome::Validation {
            vreg: entry.vreg,
            offset,
            follow_on,
        }
    }

    /// Creates the next vector instance of a vectorized load, one vector
    /// length further along its address pattern.
    fn follow_on_load_instance(
        &mut self,
        pc: u64,
        pattern: LoadPattern,
    ) -> Option<NewVectorInstance> {
        let vl = self.cfg.vector_length;
        let next = LoadPattern {
            base_addr: pattern.addr_of(vl),
            ..pattern
        };
        let Some(vreg) = self.allocate_vreg(pc) else {
            self.stats.no_free_vreg += 1;
            return None;
        };
        let first = next.addr_of(0);
        let last = next.addr_of(vl - 1);
        let (lo, hi) = if first <= last {
            (first, last)
        } else {
            (last, first)
        };
        self.vrf.set_addr_range(vreg, lo, hi + next.width - 1);
        self.insert_vrmt(VrmtEntry {
            pc,
            vreg,
            offset: 0,
            src1: Operand::None,
            src2: Operand::None,
            load: Some(next),
        });
        self.stats.load_instances += 1;
        self.stats.elements_launched += vl as u64;
        Some(NewVectorInstance {
            vreg,
            pc,
            kind: VectorOpKind::Load { pattern: next },
            start_offset: 0,
            src1: Operand::None,
            src2: Operand::None,
        })
    }

    /// Allocates a vector register, reclaiming eligible registers first if the
    /// file is exhausted.
    fn allocate_vreg(&mut self, pc: u64) -> Option<VregId> {
        if let Some(vreg) = self.vrf.allocate(pc, self.gmrbb) {
            return Some(vreg);
        }
        self.release_registers();
        self.vrf.allocate(pc, self.gmrbb)
    }

    fn new_load_instance(
        &mut self,
        pc: u64,
        dst: ArchReg,
        ea: u64,
        stride: i64,
        width: u64,
    ) -> Option<DecodeOutcome> {
        let Some(vreg) = self.allocate_vreg(pc) else {
            self.stats.no_free_vreg += 1;
            return None;
        };
        let vl = self.cfg.vector_length;
        let pattern = LoadPattern {
            base_addr: ea,
            stride,
            width,
        };
        // Address range covered by the whole instance, for store coherence.
        let first = pattern.addr_of(0);
        let last = pattern.addr_of(vl - 1);
        let (lo, hi) = if first <= last {
            (first, last)
        } else {
            (last, first)
        };
        self.vrf.set_addr_range(vreg, lo, hi + width - 1);

        let entry = VrmtEntry {
            pc,
            vreg,
            offset: 1, // the triggering instance validates element 0
            src1: Operand::None,
            src2: Operand::None,
            load: Some(pattern),
        };
        self.insert_vrmt(entry);
        self.vrf.mark_used(vreg, 0);
        self.set_reg_map(dst.flat_index(), Some((vreg, 0)));
        self.stats.load_instances += 1;
        self.stats.elements_launched += vl as u64;
        Some(DecodeOutcome::NewVector {
            instance: NewVectorInstance {
                vreg,
                pc,
                kind: VectorOpKind::Load { pattern },
                start_offset: 0,
                src1: Operand::None,
                src2: Operand::None,
            },
        })
    }

    fn new_arith_instance(
        &mut self,
        pc: u64,
        class: OpClass,
        dst: ArchReg,
        ops: [Operand; 2],
    ) -> Option<DecodeOutcome> {
        let Some(vreg) = self.allocate_vreg(pc) else {
            self.stats.no_free_vreg += 1;
            return None;
        };
        let vl = self.cfg.vector_length;
        let start_offset = ops
            .iter()
            .map(Operand::offset)
            .max()
            .unwrap_or(0)
            .min(vl - 1);
        if start_offset != 0 {
            self.stats.instances_with_nonzero_offset += 1;
        }
        // Elements below the starting offset are never produced; mark them
        // done so the freeing rules of §3.3 still apply.
        for i in 0..start_offset {
            self.vrf.set_ready(vreg, i);
            self.vrf.set_free_flag(vreg, i);
        }
        let entry = VrmtEntry {
            pc,
            vreg,
            offset: start_offset + 1,
            src1: ops[0],
            src2: ops[1],
            load: None,
        };
        self.insert_vrmt(entry);
        self.vrf.mark_used(vreg, start_offset);
        self.set_reg_map(dst.flat_index(), Some((vreg, start_offset)));
        self.stats.arith_instances += 1;
        self.stats.elements_launched += (vl - start_offset) as u64;
        Some(DecodeOutcome::NewVector {
            instance: NewVectorInstance {
                vreg,
                pc,
                kind: VectorOpKind::Arith { class },
                start_offset,
                src1: ops[0],
                src2: ops[1],
            },
        })
    }

    fn insert_vrmt(&mut self, entry: VrmtEntry) {
        if let Some(evicted) = self.vrmt.insert(entry) {
            // The evicted instruction loses its mapping; its register will be
            // reclaimed by the freeing rules or the reference scan.
            let _ = evicted;
        }
    }

    fn describe_operand(&self, src: Option<(ArchReg, u64)>) -> Operand {
        match src {
            None => Operand::None,
            Some((reg, value)) => match self.reg_map[reg.flat_index()] {
                Some((vreg, offset)) if self.vrf.get(vreg).is_allocated() => {
                    Operand::Vector { reg, vreg, offset }
                }
                _ => Operand::Scalar { reg, value },
            },
        }
    }

    /// Whether the source elements this validation would rely on are allocated
    /// and not poisoned.
    fn sources_healthy(&self, entry: &VrmtEntry, offset: usize) -> bool {
        [&entry.src1, &entry.src2].into_iter().all(|op| match op {
            Operand::Vector { vreg, .. } => {
                self.vrf.get(*vreg).is_allocated() && !self.vrf.is_poisoned(*vreg, offset)
            }
            _ => true,
        })
    }

    fn unmap_if_points_to(&mut self, reg: ArchReg, vreg: VregId) {
        if let Some((mapped, _)) = self.reg_map[reg.flat_index()] {
            if mapped == vreg {
                self.set_reg_map(reg.flat_index(), None);
            }
        }
    }

    // ------------------------------------------------------------- commit

    /// Commits a validation of `offset` in `vreg`: sets its V flag, clears U,
    /// and frees the element previously architecturally mapped to `dst`.
    pub fn commit_validation(&mut self, vreg: VregId, offset: usize, dst: Option<ArchReg>) {
        if self.vrf.get(vreg).is_allocated() {
            self.vrf.validate(vreg, offset);
        }
        if let Some(dst) = dst {
            self.free_previous_committed(dst);
            self.set_committed_map(dst.flat_index(), Some((vreg, offset)));
        }
    }

    /// Commits a scalar instruction that writes `dst`: the previously committed
    /// vector element for `dst` (if any) receives its F flag (§3.3).
    pub fn commit_scalar_write(&mut self, dst: ArchReg) {
        self.free_previous_committed(dst);
        self.set_committed_map(dst.flat_index(), None);
    }

    fn free_previous_committed(&mut self, dst: ArchReg) {
        if let Some((vreg, offset)) = self.committed_map[dst.flat_index()] {
            if self.vrf.get(vreg).is_allocated() {
                self.vrf.set_free_flag(vreg, offset);
            }
        }
    }

    /// Checks a committing store against every vector register's address range
    /// (§3.6).  Conflicting registers have their VRMT entries invalidated and
    /// their unvalidated elements poisoned; the caller must squash the
    /// instructions following the store when `squash` is set.
    pub fn commit_store(&mut self, addr: u64, width: u64) -> StoreCheck {
        self.stats.stores_checked += 1;
        let conflicting = self.vrf.conflicting_registers(addr, width);
        if conflicting.is_empty() {
            return StoreCheck::default();
        }
        self.stats.store_conflicts += 1;
        for &vreg in &conflicting {
            let _ = self.vrmt.invalidate_vreg(vreg);
            // Elements that have not been validated yet may hold stale data.
            for offset in 0..self.cfg.vector_length {
                if !self.vrf.get(vreg).elements()[offset].valid {
                    self.vrf.poison_from(vreg, offset);
                    break;
                }
            }
            if self.map_references(vreg) {
                for slot in 0..self.reg_map.len() {
                    if matches!(self.reg_map[slot], Some((v, _)) if v == vreg) {
                        self.set_reg_map(slot, None);
                    }
                }
            }
        }
        StoreCheck {
            conflicting,
            squash: true,
        }
    }

    /// Commits a control instruction; taken backward branches update the GMRBB
    /// register (§3.3) and make loop-scoped vector registers eligible for release.
    ///
    /// The full release scan walks every allocated register, so it is throttled
    /// to run when the backward-branch PC changes (a different loop closed) or
    /// after a handful of commits of the same loop branch — registers are also
    /// reclaimed on demand when an allocation fails, so throttling never causes
    /// vectorization to starve.
    pub fn commit_control(&mut self, pc: u64, taken: bool, target: u64) {
        if taken && target <= pc {
            let changed = self.gmrbb != pc;
            self.gmrbb = pc;
            self.release_pending += 1;
            if changed || self.release_pending >= 8 {
                self.release_pending = 0;
                self.release_registers();
            }
        }
    }

    /// Applies the register freeing rules and reclaims registers that are no
    /// longer referenced by any table.  Returns the number of registers released.
    pub fn release_registers(&mut self) -> usize {
        let mut released = std::mem::take(&mut self.release_scratch);
        self.vrf.release_eligible_into(self.gmrbb, &mut released);
        for &id in &released {
            self.forget_register(id);
        }
        let reclaimed = released.len();
        self.release_scratch = released;

        // Reference scan: registers whose VRMT entry has been replaced and that
        // no logical register maps to any more can never be validated again;
        // reclaim them once the vector data path has finished with them.
        let mut candidates = std::mem::take(&mut self.reclaim_scratch);
        candidates.clear();
        candidates.extend(
            self.vrf
                .allocated_ids()
                .filter(|&id| !self.vrmt.references(id) && !self.map_references(id))
                .filter(|&id| {
                    self.vrf
                        .get(id)
                        .elements()
                        .iter()
                        .all(|e| (e.ready || e.poisoned) && !e.used)
                }),
        );
        for &id in &candidates {
            self.vrf.force_release(id);
            self.forget_register(id);
        }
        let reclaimed = reclaimed + candidates.len();
        self.reclaim_scratch = candidates;
        reclaimed
    }

    fn map_references(&self, id: VregId) -> bool {
        self.map_refs.get(id.index()).copied().unwrap_or(0) > 0
    }

    fn forget_register(&mut self, id: VregId) {
        let _ = self.vrmt.invalidate_vreg(id);
        if !self.map_references(id) {
            return;
        }
        for slot in 0..self.reg_map.len() {
            if matches!(self.reg_map[slot], Some((v, _)) if v == id) {
                self.set_reg_map(slot, None);
            }
        }
        for slot in 0..self.committed_map.len() {
            if matches!(self.committed_map[slot], Some((v, _)) if v == id) {
                self.set_committed_map(slot, None);
            }
        }
    }

    /// Finishes a run: releases every vector register so the element-usage
    /// statistics (Figure 15) account for work still in flight.
    pub fn finish(&mut self) {
        self.vrf.release_all();
    }

    /// Context switch (§3.2): the additional structures are simply invalidated.
    pub fn invalidate_all(&mut self) {
        self.tl.clear();
        self.vrmt.clear();
        self.vrf.release_all();
        self.reg_map.iter_mut().for_each(|m| *m = None);
        self.committed_map.iter_mut().for_each(|m| *m = None);
        self.map_refs.iter_mut().for_each(|c| *c = 0);
    }
}

fn operands_match(recorded: &Operand, current: &Operand) -> bool {
    match (recorded, current) {
        (Operand::None, Operand::None) => true,
        (Operand::Scalar { reg: r1, value: v1 }, Operand::Scalar { reg: r2, value: v2 }) => {
            r1 == r2 && v1 == v2
        }
        (Operand::Vector { vreg: a, .. }, Operand::Vector { vreg: b, .. }) => a == b,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> VectorizationEngine {
        VectorizationEngine::new(&DvConfig::default())
    }

    fn xr(n: u8) -> ArchReg {
        ArchReg::int(n)
    }

    /// Drives a strided load at `pc` until it vectorizes; returns the instance.
    ///
    /// With the paper's TL update rule (reset-on-change, threshold 2) a load
    /// with a non-zero stride vectorizes on its *fourth* dynamic instance: the
    /// second computes the initial stride and the third and fourth confirm it.
    fn vectorize_load(
        e: &mut VectorizationEngine,
        pc: u64,
        base: u64,
        stride: u64,
    ) -> NewVectorInstance {
        let dst = xr(1);
        for i in 0..3u64 {
            let out = e.decode(&DecodeContext::load(pc, dst, base + i * stride, 8));
            assert_eq!(out, DecodeOutcome::Scalar);
        }
        match e.decode(&DecodeContext::load(pc, dst, base + 3 * stride, 8)) {
            DecodeOutcome::NewVector { instance } => instance,
            other => panic!("expected NewVector, got {other:?}"),
        }
    }

    #[test]
    fn strided_load_vectorizes_once_confidence_reaches_two() {
        let mut e = engine();
        let inst = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        assert_eq!(inst.start_offset, 0);
        match inst.kind {
            VectorOpKind::Load { pattern } => {
                assert_eq!(pattern.base_addr, 0x8000 + 24);
                assert_eq!(pattern.stride, 8);
            }
            VectorOpKind::Arith { .. } => panic!("expected a load instance"),
        }
        assert_eq!(e.stats().load_instances, 1);
        // The destination register is now mapped to element 0.
        assert_eq!(e.current_mapping(xr(1)), Some((inst.vreg, 0)));
        // The whole 4-element range is registered for store coherence.
        let (lo, hi) = e.vrf().get(inst.vreg).addr_range().unwrap();
        assert_eq!(lo, 0x8018);
        assert_eq!(hi, 0x8018 + 3 * 8 + 7);
    }

    #[test]
    fn stride_zero_load_vectorizes_on_third_instance() {
        // Stride-0 loads (the most common case in Figure 1) reach confidence 2
        // one instance earlier because the TL entry is installed with stride 0.
        let mut e = engine();
        let dst = xr(1);
        assert_eq!(
            e.decode(&DecodeContext::load(0x1000, dst, 0x9000, 8)),
            DecodeOutcome::Scalar
        );
        assert_eq!(
            e.decode(&DecodeContext::load(0x1000, dst, 0x9000, 8)),
            DecodeOutcome::Scalar
        );
        assert!(matches!(
            e.decode(&DecodeContext::load(0x1000, dst, 0x9000, 8)),
            DecodeOutcome::NewVector { .. }
        ));
    }

    #[test]
    fn subsequent_instances_become_validations_then_roll_over() {
        let mut e = engine();
        let inst = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        let dst = xr(1);
        // Elements 1..3 validate against the same vector register.  The
        // validation of the last element carries a follow-on instance that
        // continues the pattern (§3.2).
        for k in 1..4usize {
            let ea = 0x8018 + (k as u64) * 8;
            match e.decode(&DecodeContext::load(0x1000, dst, ea, 8)) {
                DecodeOutcome::Validation {
                    vreg,
                    offset,
                    follow_on,
                } => {
                    assert_eq!(vreg, inst.vreg);
                    assert_eq!(offset, k);
                    assert_eq!(
                        follow_on.is_some(),
                        k == 3,
                        "follow-on only on the last element"
                    );
                    if let Some(next) = follow_on {
                        assert_ne!(next.vreg, inst.vreg);
                        assert_eq!(next.start_offset, 0);
                    }
                }
                other => panic!("expected validation of element {k}, got {other:?}"),
            }
        }
        // The next instance validates element 0 of the follow-on register.
        let out = e.decode(&DecodeContext::load(0x1000, dst, 0x8018 + 4 * 8, 8));
        assert!(matches!(out, DecodeOutcome::Validation { offset: 0, .. }));
        assert_eq!(e.stats().load_validations, 4);
        assert_eq!(e.stats().load_instances, 2);
    }

    #[test]
    fn wrong_address_fails_validation_and_goes_scalar() {
        let mut e = engine();
        let inst = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        let dst = xr(1);
        // Break the stride: the predicted address for element 1 is 0x8020.
        let out = e.decode(&DecodeContext::load(0x1000, dst, 0xf000, 8));
        assert_eq!(out, DecodeOutcome::Scalar);
        assert_eq!(e.stats().validation_failures, 1);
        assert!(e.vrf().is_poisoned(inst.vreg, 1));
        assert_eq!(e.current_mapping(dst), None);
        // The VRMT entry is gone, so the next instance is also scalar while the
        // TL re-learns the new pattern.
        let out = e.decode(&DecodeContext::load(0x1000, dst, 0xf008, 8));
        assert_eq!(out, DecodeOutcome::Scalar);
    }

    #[test]
    fn dependent_arith_is_vectorized_transitively() {
        let mut e = engine();
        let load = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        // add x2, x1, x3 where x1 is vector-mapped and x3 is a plain scalar.
        let ctx = DecodeContext::arith(
            0x1004,
            OpClass::IntAlu,
            xr(2),
            [Some((xr(1), 0)), Some((xr(3), 42))],
        );
        let out = e.decode(&ctx);
        let instance = match out {
            DecodeOutcome::NewVector { instance } => instance,
            other => panic!("expected NewVector, got {other:?}"),
        };
        assert_eq!(instance.start_offset, 0);
        assert_eq!(
            instance.kind,
            VectorOpKind::Arith {
                class: OpClass::IntAlu
            }
        );
        assert_eq!(instance.src1.vreg(), Some(load.vreg));
        assert!(matches!(instance.src2, Operand::Scalar { value: 42, .. }));
        assert_eq!(e.stats().arith_instances, 1);
        // A second instance with the same operands validates element 1.
        let out = e.decode(&ctx);
        assert!(matches!(out, DecodeOutcome::Validation { offset: 1, .. }));
        assert_eq!(e.stats().arith_validations, 1);
    }

    #[test]
    fn changed_scalar_operand_value_fails_validation() {
        let mut e = engine();
        let _ = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        let mk = |v: u64| {
            DecodeContext::arith(
                0x1004,
                OpClass::IntAlu,
                xr(2),
                [Some((xr(1), 0)), Some((xr(3), v))],
            )
        };
        assert!(matches!(e.decode(&mk(42)), DecodeOutcome::NewVector { .. }));
        // Same operands: validation.
        assert!(matches!(
            e.decode(&mk(42)),
            DecodeOutcome::Validation { .. }
        ));
        // The scalar register changed value: the recorded instance is stale.
        let out = e.decode(&mk(43));
        // A new instance is created immediately because x1 is still vector-mapped.
        assert!(matches!(out, DecodeOutcome::NewVector { .. }));
        assert_eq!(e.stats().validation_failures, 1);
        assert_eq!(e.stats().arith_instances, 2);
    }

    #[test]
    fn arith_with_no_vector_sources_stays_scalar() {
        let mut e = engine();
        let ctx = DecodeContext::arith(
            0x2000,
            OpClass::IntAlu,
            xr(5),
            [Some((xr(6), 1)), Some((xr(7), 2))],
        );
        assert_eq!(e.decode(&ctx), DecodeOutcome::Scalar);
        assert_eq!(e.stats().arith_instances, 0);
    }

    #[test]
    fn scalar_redefinition_breaks_the_mapping() {
        let mut e = engine();
        let _ = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        assert!(e.current_mapping(xr(1)).is_some());
        // A jump-and-link (non-vectorizable) writing x1 clears the mapping.
        let out = e.decode(&DecodeContext::other(0x1008, OpClass::Jump, Some(xr(1))));
        assert_eq!(out, DecodeOutcome::Scalar);
        assert_eq!(e.current_mapping(xr(1)), None);
        // A dependent add no longer vectorizes.
        let ctx = DecodeContext::arith(0x100c, OpClass::IntAlu, xr(2), [Some((xr(1), 0)), None]);
        assert_eq!(e.decode(&ctx), DecodeOutcome::Scalar);
    }

    #[test]
    fn validation_and_scalar_commit_set_flags() {
        let mut e = engine();
        let inst = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        // Element 0 is validated at commit.
        e.commit_validation(inst.vreg, 0, Some(xr(1)));
        assert!(e.vrf().get(inst.vreg).elements()[0].valid);
        assert!(!e.vrf().get(inst.vreg).elements()[0].used);
        // Element 1 commits next; committing it frees element 0 (next producer
        // of x1 committed).
        e.commit_validation(inst.vreg, 1, Some(xr(1)));
        assert!(e.vrf().get(inst.vreg).elements()[0].free);
        // A later scalar write to x1 frees element 1.
        e.commit_scalar_write(xr(1));
        assert!(e.vrf().get(inst.vreg).elements()[1].free);
    }

    #[test]
    fn store_conflict_invalidates_and_requests_squash() {
        let mut e = engine();
        let inst = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        // Commit element 0 so it stays valid.
        e.commit_validation(inst.vreg, 0, Some(xr(1)));
        let check = e.commit_store(0x8018, 8); // inside the register's range
        assert!(check.squash);
        assert_eq!(check.conflicting, vec![inst.vreg]);
        assert_eq!(e.stats().store_conflicts, 1);
        assert!(e.vrmt().is_empty(), "VRMT entry invalidated");
        assert!(
            e.vrf().is_poisoned(inst.vreg, 1),
            "unvalidated elements poisoned"
        );
        assert!(
            !e.vrf().get(inst.vreg).elements()[0].poisoned,
            "validated element untouched"
        );
        // A store far away does not conflict.
        let check = e.commit_store(0x20_0000, 8);
        assert!(!check.squash);
        assert_eq!(e.stats().stores_checked, 2);
    }

    #[test]
    fn backward_branch_updates_gmrbb_and_releases_registers() {
        let mut e = engine();
        let inst = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        // Finish the register: all elements computed, validated and freed.
        for i in 0..4 {
            e.set_element_ready(inst.vreg, i);
        }
        for i in 0..4 {
            e.commit_validation(inst.vreg, i, Some(xr(1)));
        }
        e.commit_scalar_write(xr(1)); // frees the last element

        // Clear the speculative map so nothing references the register.
        e.decode(&DecodeContext::other(0x1010, OpClass::Jump, Some(xr(1))));
        assert_eq!(e.vrf().allocated_count(), 1);
        e.commit_control(0x1020, true, 0x1000);
        assert_eq!(e.gmrbb(), 0x1020);
        assert_eq!(
            e.vrf().allocated_count(),
            0,
            "register released after the loop"
        );
        assert_eq!(e.vrf().usage().registers_released, 1);
    }

    #[test]
    fn forward_branches_do_not_touch_gmrbb() {
        let mut e = engine();
        e.commit_control(0x1000, true, 0x2000);
        assert_eq!(e.gmrbb(), 0);
        e.commit_control(0x1000, false, 0x900);
        assert_eq!(e.gmrbb(), 0);
    }

    #[test]
    fn no_free_register_falls_back_to_scalar() {
        let cfg = DvConfig {
            vector_registers: 1,
            ..DvConfig::default()
        };
        let mut e = VectorizationEngine::new(&cfg);
        let _ = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        // A second strided load cannot allocate a register.
        for i in 0..3u64 {
            e.decode(&DecodeContext::load(0x2000, xr(4), 0x9000 + i * 8, 8));
        }
        let out = e.decode(&DecodeContext::load(0x2000, xr(4), 0x9018, 8));
        assert_eq!(out, DecodeOutcome::Scalar);
        assert_eq!(e.stats().no_free_vreg, 1);
    }

    #[test]
    fn nonzero_start_offset_is_recorded() {
        let mut e = engine();
        let load = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        // Validate element 1 of the load so its mapping advances.
        let _ = e.decode(&DecodeContext::load(0x1000, xr(1), 0x8020, 8));
        assert_eq!(e.current_mapping(xr(1)), Some((load.vreg, 1)));
        // A consumer vectorized now starts at offset 1.
        let ctx = DecodeContext::arith(0x1100, OpClass::FpAdd, xr(2), [Some((xr(1), 0)), None]);
        let out = e.decode(&ctx);
        match out {
            DecodeOutcome::NewVector { instance } => assert_eq!(instance.start_offset, 1),
            other => panic!("expected NewVector, got {other:?}"),
        }
        assert_eq!(e.stats().instances_with_nonzero_offset, 1);
        assert!((e.stats().nonzero_offset_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unbounded_config_never_runs_out() {
        let mut e = VectorizationEngine::new(&DvConfig::unbounded());
        for j in 0..300u64 {
            let pc = 0x1000 + j * 4;
            for i in 0..4u64 {
                e.decode(&DecodeContext::load(
                    pc,
                    xr(1),
                    0x10_0000 + j * 0x100 + i * 8,
                    8,
                ));
            }
        }
        assert_eq!(e.stats().load_instances, 300);
        assert_eq!(e.stats().no_free_vreg, 0);
    }

    #[test]
    fn finish_accounts_for_in_flight_registers() {
        let mut e = engine();
        let inst = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        e.set_element_ready(inst.vreg, 0);
        e.finish();
        let usage = e.vrf().usage();
        assert_eq!(usage.registers_released, 1);
        assert_eq!(usage.computed_not_used + usage.computed_used, 1);
        assert_eq!(usage.not_computed, 3);
    }

    #[test]
    fn invalidate_all_clears_every_structure() {
        let mut e = engine();
        let _ = vectorize_load(&mut e, 0x1000, 0x8000, 8);
        e.invalidate_all();
        assert!(e.vrmt().is_empty());
        assert!(e.tl().is_empty());
        assert_eq!(e.vrf().allocated_count(), 0);
        assert_eq!(e.current_mapping(xr(1)), None);
    }

    #[test]
    fn decode_outcome_helpers() {
        let mut e = engine();
        let scalar = e.decode(&DecodeContext::load(0x1000, xr(1), 0x8000, 8));
        assert!(!scalar.is_vectorized());
        assert_eq!(scalar.validated_element(), None);
        let _ = e.decode(&DecodeContext::load(0x1000, xr(1), 0x8008, 8));
        let _ = e.decode(&DecodeContext::load(0x1000, xr(1), 0x8010, 8));
        let nv = e.decode(&DecodeContext::load(0x1000, xr(1), 0x8018, 8));
        assert!(nv.is_vectorized());
        let (vreg, off) = nv.validated_element().unwrap();
        assert_eq!(off, 0);
        let val = e.decode(&DecodeContext::load(0x1000, xr(1), 0x8020, 8));
        assert_eq!(val.validated_element(), Some((vreg, 1)));
    }
}

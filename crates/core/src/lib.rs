//! Speculative dynamic vectorization — the paper's contribution.
//!
//! This crate implements the hardware structures and decision logic that the
//! paper adds to an out-of-order superscalar processor (Figure 2, black and
//! grey boxes):
//!
//! * [`TableOfLoads`] (TL, Figure 4): per-static-load stride detection with a
//!   confidence counter; a load whose stride has repeated twice triggers
//!   vectorization.
//! * [`Vrmt`] (Vector Register Map Table, Figure 5): maps the PC of a
//!   vectorized instruction to its vector register, the next element to be
//!   validated, and the source operands it was vectorized with.
//! * [`VectorRegisterFile`] (Figure 8): 128 registers of 4 × 64-bit elements,
//!   each element carrying V/R/U/F flags, plus the per-register MRBB tag and
//!   address range used for store coherence (§3.6).
//! * [`VectorizationEngine`]: the decode-time decision logic (§3.2), the
//!   commit-time flag updates and register-freeing rules (§3.3), and the
//!   store coherence checks.
//!
//! The engine is deliberately independent of the pipeline model: `sdv-uarch`
//! drives it with decode/commit/store events and receives back what each
//! scalar instruction turned into (scalar execution, a validation, or a new
//! vector instance to launch on the vector data path).
//!
//! ```
//! use sdv_core::{DecodeContext, DecodeOutcome, DvConfig, VectorizationEngine};
//! use sdv_isa::{ArchReg, OpClass};
//!
//! let mut engine = VectorizationEngine::new(&DvConfig::default());
//! let dst = ArchReg::int(1);
//! // A load at PC 0x1000 walking an array with stride 8: once the stride has
//! // repeated twice (confidence 2) a vector instance is created.
//! let mut outcome = DecodeOutcome::Scalar;
//! for i in 0..4u64 {
//!     outcome = engine.decode(&DecodeContext::load(0x1000, dst, 0x8000 + i * 8, 8));
//! }
//! assert!(matches!(outcome, DecodeOutcome::NewVector { .. }));
//! // The next instance simply validates element 1 of the vector register.
//! let outcome = engine.decode(&DecodeContext::load(0x1000, dst, 0x8000 + 4 * 8, 8));
//! assert!(matches!(outcome, DecodeOutcome::Validation { offset: 1, .. }));
//! // A dependent add is vectorized transitively.
//! let add = DecodeContext::arith(0x1004, OpClass::IntAlu, ArchReg::int(2), [Some((dst, 0)), None]);
//! assert!(matches!(engine.decode(&add), DecodeOutcome::NewVector { .. }));
//! ```

pub mod config;
pub mod engine;
pub mod slotset;
pub mod stats;
pub mod tl;
pub mod vreg;
pub mod vrmt;

pub use config::DvConfig;
pub use engine::{
    DecodeContext, DecodeOutcome, NewVectorInstance, StoreCheck, VectorOpKind, VectorizationEngine,
};
pub use stats::DvStats;
pub use tl::{TableOfLoads, TlObservation};
pub use vreg::{ElementState, ElementUsage, VectorRegister, VectorRegisterFile, VregId};
pub use vrmt::{LoadPattern, Operand, Vrmt, VrmtEntry};

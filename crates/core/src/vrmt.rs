//! The Vector Register Map Table (Figure 5).

use crate::vreg::VregId;
use sdv_isa::ArchReg;

/// A source operand as recorded when an instruction was vectorized.
///
/// Later dynamic instances compare their current operands against this record:
/// a mismatch means the vectorized instance no longer corresponds to the
/// instruction's dataflow and a new vector instance must be generated (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// The operand slot is unused.
    None,
    /// A scalar register operand; the paper stores its *value* in the VRMT and
    /// re-compares it when the instruction is seen again.
    Scalar {
        /// The architectural register.
        reg: ArchReg,
        /// The value (bit pattern) the register held when the instruction was vectorized.
        value: u64,
    },
    /// A vector register operand.
    Vector {
        /// The architectural register that was mapped to a vector register.
        reg: ArchReg,
        /// The vector register it was mapped to.
        vreg: VregId,
        /// The element offset the mapping pointed at when the instruction was vectorized.
        offset: usize,
    },
}

impl Operand {
    /// Whether this operand is a vector register.
    #[must_use]
    pub fn is_vector(&self) -> bool {
        matches!(self, Operand::Vector { .. })
    }

    /// The element offset of a vector operand (0 otherwise).
    #[must_use]
    pub fn offset(&self) -> usize {
        match self {
            Operand::Vector { offset, .. } => *offset,
            _ => 0,
        }
    }

    /// The vector register of a vector operand, if any.
    #[must_use]
    pub fn vreg(&self) -> Option<VregId> {
        match self {
            Operand::Vector { vreg, .. } => Some(*vreg),
            _ => None,
        }
    }
}

/// Address-generation information kept for vectorized loads: the predicted
/// address of element 0 of the current vector instance and the stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadPattern {
    /// Predicted address of element 0 of the current vector instance.
    pub base_addr: u64,
    /// Stride in bytes between consecutive elements.
    pub stride: i64,
    /// Access width in bytes.
    pub width: u64,
}

impl LoadPattern {
    /// Predicted address of element `offset`.
    #[must_use]
    pub fn addr_of(&self, offset: usize) -> u64 {
        (self.base_addr as i64 + self.stride * offset as i64) as u64
    }
}

/// One VRMT entry (Figure 5): the owning PC, the associated vector register,
/// the next element to validate and the operands recorded at vectorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VrmtEntry {
    /// PC of the vectorized instruction.
    pub pc: u64,
    /// The vector register holding the speculative results.
    pub vreg: VregId,
    /// The element the *next* scalar instance will validate.
    pub offset: usize,
    /// First source operand as recorded at vectorization time.
    pub src1: Operand,
    /// Second source operand as recorded at vectorization time.
    pub src2: Operand,
    /// Load address pattern (present only for vectorized loads).
    pub load: Option<LoadPattern>,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    entry: VrmtEntry,
    last_used: u64,
}

/// The Vector Register Map Table: a set-associative table indexed by PC.
///
/// ```
/// use sdv_core::vrmt::{Operand, Vrmt, VrmtEntry};
/// use sdv_core::VectorRegisterFile;
///
/// let mut vrf = VectorRegisterFile::new(8, 4, false);
/// let vreg = vrf.allocate(0x1000, 0).unwrap();
/// let mut vrmt = Vrmt::new(64, 4, false);
/// vrmt.insert(VrmtEntry { pc: 0x1000, vreg, offset: 0, src1: Operand::None, src2: Operand::None, load: None });
/// assert!(vrmt.lookup(0x1000).is_some());
/// vrmt.invalidate_pc(0x1000);
/// assert!(vrmt.lookup(0x1000).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Vrmt {
    sets: Vec<Vec<Slot>>,
    ways: usize,
    unbounded: bool,
    stamp: u64,
    evictions: u64,
    /// Per-vector-register entry counts (indexed by [`VregId::index`]), so
    /// [`Vrmt::references`] is O(1) instead of a whole-table walk.
    refs: Vec<u32>,
}

impl Vrmt {
    /// Creates a VRMT with `sets` sets of `ways` entries; with `unbounded` the
    /// associativity limit is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or `ways` is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize, unbounded: bool) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "VRMT sets must be a non-zero power of two"
        );
        assert!(ways > 0, "VRMT must have at least one way");
        Vrmt {
            sets: vec![Vec::new(); sets],
            ways,
            unbounded,
            stamp: 0,
            evictions: 0,
            refs: Vec::new(),
        }
    }

    fn inc_ref(&mut self, vreg: VregId) {
        let idx = vreg.index();
        if idx >= self.refs.len() {
            self.refs.resize(idx + 1, 0);
        }
        self.refs[idx] += 1;
    }

    fn dec_ref(&mut self, vreg: VregId) {
        let idx = vreg.index();
        debug_assert!(self.refs.get(idx).is_some_and(|&c| c > 0));
        if let Some(c) = self.refs.get_mut(idx) {
            *c = c.saturating_sub(1);
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets.len() - 1)
    }

    /// Looks up the entry for `pc`, refreshing its LRU position.
    pub fn lookup(&mut self, pc: u64) -> Option<&VrmtEntry> {
        self.stamp += 1;
        let stamp = self.stamp;
        let idx = self.set_of(pc);
        self.sets[idx]
            .iter_mut()
            .find(|s| s.entry.pc == pc)
            .map(|s| {
                s.last_used = stamp;
                &s.entry
            })
    }

    /// Mutable lookup (used to advance the offset after a validation).
    pub fn lookup_mut(&mut self, pc: u64) -> Option<&mut VrmtEntry> {
        self.stamp += 1;
        let stamp = self.stamp;
        let idx = self.set_of(pc);
        self.sets[idx]
            .iter_mut()
            .find(|s| s.entry.pc == pc)
            .map(|s| {
                s.last_used = stamp;
                &mut s.entry
            })
    }

    /// Inserts (or replaces) the entry for `entry.pc`; returns an evicted
    /// entry if the set was full.
    pub fn insert(&mut self, entry: VrmtEntry) -> Option<VrmtEntry> {
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = if self.unbounded {
            usize::MAX
        } else {
            self.ways
        };
        let idx = self.set_of(entry.pc);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|s| s.entry.pc == entry.pc) {
            let old_vreg = set[pos].entry.vreg;
            set[pos].entry = entry;
            set[pos].last_used = stamp;
            self.dec_ref(old_vreg);
            self.inc_ref(entry.vreg);
            return None;
        }
        let slot = Slot {
            entry,
            last_used: stamp,
        };
        if set.len() < ways {
            set.push(slot);
            self.inc_ref(entry.vreg);
            None
        } else {
            self.evictions += 1;
            let victim = set
                .iter_mut()
                .min_by_key(|s| s.last_used)
                .expect("ways > 0");
            let old = victim.entry;
            *victim = slot;
            self.dec_ref(old.vreg);
            self.inc_ref(entry.vreg);
            Some(old)
        }
    }

    /// Removes the entry for `pc`, if present.
    pub fn invalidate_pc(&mut self, pc: u64) -> Option<VrmtEntry> {
        let idx = self.set_of(pc);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|s| s.entry.pc == pc)?;
        let removed = set.swap_remove(pos).entry;
        self.dec_ref(removed.vreg);
        Some(removed)
    }

    /// Removes every entry whose vector register is `vreg` (store-coherence
    /// invalidation, §3.6); returns the removed entries.
    pub fn invalidate_vreg(&mut self, vreg: VregId) -> Vec<VrmtEntry> {
        if !self.references(vreg) {
            return Vec::new();
        }
        let mut removed = Vec::new();
        for set in &mut self.sets {
            let mut i = 0;
            while i < set.len() {
                if set[i].entry.vreg == vreg {
                    removed.push(set.swap_remove(i).entry);
                } else {
                    i += 1;
                }
            }
        }
        if let Some(c) = self.refs.get_mut(vreg.index()) {
            *c = 0;
        }
        removed
    }

    /// Clears the table (context switch).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.refs.iter_mut().for_each(|c| *c = 0);
    }

    /// Number of entries stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries evicted by capacity conflicts.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterates over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = &VrmtEntry> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|slot| &slot.entry))
    }

    /// Whether any entry references `vreg` (O(1) via the reference counts).
    #[must_use]
    pub fn references(&self, vreg: VregId) -> bool {
        self.refs.get(vreg.index()).copied().unwrap_or(0) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vreg::VectorRegisterFile;

    fn ids(n: usize) -> Vec<VregId> {
        let mut vrf = VectorRegisterFile::new(n, 4, false);
        (0..n).map(|i| vrf.allocate(i as u64, 0).unwrap()).collect()
    }

    fn entry(pc: u64, vreg: VregId) -> VrmtEntry {
        VrmtEntry {
            pc,
            vreg,
            offset: 0,
            src1: Operand::None,
            src2: Operand::None,
            load: None,
        }
    }

    #[test]
    fn insert_lookup_and_offset_advance() {
        let v = ids(2);
        let mut t = Vrmt::new(64, 4, false);
        assert!(t.insert(entry(0x1000, v[0])).is_none());
        assert_eq!(t.lookup(0x1000).unwrap().vreg, v[0]);
        t.lookup_mut(0x1000).unwrap().offset = 3;
        assert_eq!(t.lookup(0x1000).unwrap().offset, 3);
        assert!(t.lookup(0x2000).is_none());
    }

    #[test]
    fn reinsert_same_pc_replaces_in_place() {
        let v = ids(2);
        let mut t = Vrmt::new(64, 4, false);
        t.insert(entry(0x1000, v[0]));
        assert!(t.insert(entry(0x1000, v[1])).is_none());
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(0x1000).unwrap().vreg, v[1]);
    }

    #[test]
    fn lru_eviction_reports_victim() {
        let v = ids(3);
        let mut t = Vrmt::new(1, 2, false);
        t.insert(entry(0x1000, v[0]));
        t.insert(entry(0x2000, v[1]));
        assert!(t.lookup(0x1000).is_some()); // make 0x2000 the LRU
        let evicted = t.insert(entry(0x3000, v[2])).expect("eviction");
        assert_eq!(evicted.pc, 0x2000);
        assert_eq!(t.evictions(), 1);
        assert!(t.lookup(0x2000).is_none());
    }

    #[test]
    fn unbounded_mode_never_evicts() {
        let v = ids(1);
        let mut t = Vrmt::new(1, 1, true);
        for pc in 0..50u64 {
            assert!(t.insert(entry(pc * 4, v[0])).is_none());
        }
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn invalidate_by_pc_and_by_vreg() {
        let v = ids(2);
        let mut t = Vrmt::new(64, 4, false);
        t.insert(entry(0x1000, v[0]));
        t.insert(entry(0x1004, v[0]));
        t.insert(entry(0x1008, v[1]));
        assert!(t.references(v[0]));
        let removed = t.invalidate_vreg(v[0]);
        assert_eq!(removed.len(), 2);
        assert!(!t.references(v[0]));
        assert_eq!(t.len(), 1);
        assert!(t.invalidate_pc(0x1008).is_some());
        assert!(t.invalidate_pc(0x1008).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn clear_empties() {
        let v = ids(1);
        let mut t = Vrmt::new(64, 4, false);
        t.insert(entry(0x1000, v[0]));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn load_pattern_addresses() {
        let p = LoadPattern {
            base_addr: 0x1000,
            stride: -8,
            width: 8,
        };
        assert_eq!(p.addr_of(0), 0x1000);
        assert_eq!(p.addr_of(2), 0x1000 - 16);
        let q = LoadPattern {
            base_addr: 0x1000,
            stride: 4,
            width: 4,
        };
        assert_eq!(q.addr_of(3), 0x100c);
    }

    #[test]
    fn operand_helpers() {
        let v = ids(1);
        let op = Operand::Vector {
            reg: sdv_isa::ArchReg::int(3),
            vreg: v[0],
            offset: 2,
        };
        assert!(op.is_vector());
        assert_eq!(op.offset(), 2);
        assert_eq!(op.vreg(), Some(v[0]));
        let s = Operand::Scalar {
            reg: sdv_isa::ArchReg::int(4),
            value: 7,
        };
        assert!(!s.is_vector());
        assert_eq!(s.offset(), 0);
        assert_eq!(s.vreg(), None);
        assert_eq!(Operand::None.vreg(), None);
    }
}

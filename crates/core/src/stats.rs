//! Counters collected by the vectorization engine.

/// Event counters for the dynamic-vectorization mechanism.
///
/// These are the raw counts behind Figures 3, 9, 14 and 15 and the §3.6
/// store-conflict statistic; percentages over total committed instructions are
/// computed by the simulation layer, which knows the denominator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DvStats {
    /// Dynamic loads observed by the Table of Loads.
    pub loads_observed: u64,
    /// New vector instances created for loads.
    pub load_instances: u64,
    /// New vector instances created for arithmetic instructions.
    pub arith_instances: u64,
    /// Scalar load instances turned into validations.
    pub load_validations: u64,
    /// Scalar arithmetic instances turned into validations.
    pub arith_validations: u64,
    /// Validations that failed (vectorization mis-speculations).
    pub validation_failures: u64,
    /// Instructions that could not be vectorized because no vector register was free.
    pub no_free_vreg: u64,
    /// New vector instances whose source operands had a non-zero starting offset (Figure 9).
    pub instances_with_nonzero_offset: u64,
    /// Stores checked against vector-register address ranges (§3.6).
    pub stores_checked: u64,
    /// Stores whose address fell inside the range of some vector register (§3.6).
    pub store_conflicts: u64,
    /// Vector elements scheduled for computation on the vector data path.
    pub elements_launched: u64,
}

impl DvStats {
    /// Total validations (loads + arithmetic).
    #[must_use]
    pub fn validations(&self) -> u64 {
        self.load_validations + self.arith_validations
    }

    /// Total vector instances created.
    #[must_use]
    pub fn vector_instances(&self) -> u64 {
        self.load_instances + self.arith_instances
    }

    /// Dynamic instructions executed in vector mode: validations plus the
    /// instances that triggered vector execution (the numerator of Figure 3).
    #[must_use]
    pub fn vector_mode_instructions(&self) -> u64 {
        self.validations() + self.vector_instances()
    }

    /// Fraction of stores that conflicted with a vector register
    /// (the paper reports 4.5 % for SpecInt and 2.5 % for SpecFP).
    #[must_use]
    pub fn store_conflict_rate(&self) -> f64 {
        if self.stores_checked == 0 {
            0.0
        } else {
            self.store_conflicts as f64 / self.stores_checked as f64
        }
    }

    /// Fraction of new vector instances whose source offsets were not all zero
    /// (Figure 9).
    #[must_use]
    pub fn nonzero_offset_rate(&self) -> f64 {
        let n = self.vector_instances();
        if n == 0 {
            0.0
        } else {
            self.instances_with_nonzero_offset as f64 / n as f64
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &DvStats) {
        self.loads_observed += other.loads_observed;
        self.load_instances += other.load_instances;
        self.arith_instances += other.arith_instances;
        self.load_validations += other.load_validations;
        self.arith_validations += other.arith_validations;
        self.validation_failures += other.validation_failures;
        self.no_free_vreg += other.no_free_vreg;
        self.instances_with_nonzero_offset += other.instances_with_nonzero_offset;
        self.stores_checked += other.stores_checked;
        self.store_conflicts += other.store_conflicts;
        self.elements_launched += other.elements_launched;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = DvStats {
            load_validations: 10,
            arith_validations: 20,
            load_instances: 4,
            arith_instances: 6,
            instances_with_nonzero_offset: 1,
            stores_checked: 200,
            store_conflicts: 9,
            ..DvStats::default()
        };
        assert_eq!(s.validations(), 30);
        assert_eq!(s.vector_instances(), 10);
        assert_eq!(s.vector_mode_instructions(), 40);
        assert!((s.store_conflict_rate() - 0.045).abs() < 1e-12);
        assert!((s.nonzero_offset_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators() {
        let s = DvStats::default();
        assert_eq!(s.store_conflict_rate(), 0.0);
        assert_eq!(s.nonzero_offset_rate(), 0.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = DvStats {
            loads_observed: 1,
            elements_launched: 4,
            ..DvStats::default()
        };
        let b = DvStats {
            loads_observed: 2,
            validation_failures: 3,
            ..DvStats::default()
        };
        a.merge(&b);
        assert_eq!(a.loads_observed, 3);
        assert_eq!(a.validation_failures, 3);
        assert_eq!(a.elements_launched, 4);
    }
}

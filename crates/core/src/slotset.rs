//! A dense ordered set of small slot indices, backed by a bitmap.
//!
//! The vector register file keeps two index sets on its hottest paths — the
//! free list (popped at every allocation) and the allocated set (walked by
//! every release scan and §3.6 store check).  Slot indices are small dense
//! integers, so a bitmap with a first-set-word hint beats a B-tree on every
//! operation the file performs while preserving the one property the
//! paper's semantics need: **ascending order**.  `pop_first` still returns
//! the lowest free slot (the original linear scan's choice) and iteration
//! still visits slots in index order, so swapping the backing structure is
//! invisible to every simulation statistic.

/// An ordered set of `u32` slot indices stored one bit per slot.
#[derive(Debug, Clone, Default)]
pub struct SlotSet {
    words: Vec<u64>,
    len: usize,
    /// Every word below this index is zero (lower bound on the first set
    /// bit's word).  Lowered on insert, advanced by first-bit scans, so
    /// `pop_first` stays O(1) amortised.
    first_hint: usize,
}

impl SlotSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        SlotSet::default()
    }

    /// Creates the set `{0, 1, …, n - 1}`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        SlotSet {
            words,
            len: n,
            first_hint: 0,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `slot` is a member.
    #[must_use]
    pub fn contains(&self, slot: u32) -> bool {
        let (word, bit) = (slot as usize / 64, slot as usize % 64);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Inserts `slot`; returns `true` if it was not already present.
    /// The bitmap grows on demand (unbounded register files).
    pub fn insert(&mut self, slot: u32) -> bool {
        let (word, bit) = (slot as usize / 64, slot as usize % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        self.len += 1;
        self.first_hint = self.first_hint.min(word);
        true
    }

    /// Removes `slot`; returns `true` if it was present.
    pub fn remove(&mut self, slot: u32) -> bool {
        let (word, bit) = (slot as usize / 64, slot as usize % 64);
        let Some(w) = self.words.get_mut(word) else {
            return false;
        };
        let mask = 1u64 << bit;
        if *w & mask == 0 {
            return false;
        }
        *w &= !mask;
        self.len -= 1;
        true
    }

    /// Removes and returns the smallest element.
    pub fn pop_first(&mut self) -> Option<u32> {
        if self.len == 0 {
            self.first_hint = self.words.len();
            return None;
        }
        while self.first_hint < self.words.len() {
            let w = self.words[self.first_hint];
            if w != 0 {
                let bit = w.trailing_zeros();
                self.words[self.first_hint] &= !(1u64 << bit);
                self.len -= 1;
                return Some((self.first_hint as u32) * 64 + bit);
            }
            self.first_hint += 1;
        }
        unreachable!("len > 0 implies a set bit at or above the hint");
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words
            .iter()
            .enumerate()
            .skip(self.first_hint)
            .flat_map(|(wi, &w)| {
                let base = wi as u32 * 64;
                std::iter::successors((w != 0).then_some(w), |&rest| {
                    let next = rest & (rest - 1);
                    (next != 0).then_some(next)
                })
                .map(move |rest| base + rest.trailing_zeros())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn mirrors_a_btree_set() {
        let mut slots = SlotSet::new();
        let mut tree: BTreeSet<u32> = BTreeSet::new();
        // A deterministic torture sequence mixing inserts, removes and pops
        // across word boundaries.
        let mut x = 7u32;
        for step in 0..4_000u32 {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            let slot = x % 300;
            match step % 4 {
                0 | 1 => {
                    assert_eq!(slots.insert(slot), tree.insert(slot));
                }
                2 => {
                    assert_eq!(slots.remove(slot), tree.remove(&slot));
                }
                _ => {
                    assert_eq!(slots.pop_first(), tree.pop_first());
                }
            }
            assert_eq!(slots.len(), tree.len());
        }
        assert_eq!(
            slots.iter().collect::<Vec<_>>(),
            tree.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn full_matches_a_range_and_pops_ascending() {
        let mut s = SlotSet::full(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.iter().collect::<Vec<_>>(), (0..130).collect::<Vec<_>>());
        for expected in 0..130 {
            assert_eq!(s.pop_first(), Some(expected));
        }
        assert_eq!(s.pop_first(), None);
        assert!(s.is_empty());
        s.insert(64);
        assert!(s.contains(64) && !s.contains(63));
        assert_eq!(s.pop_first(), Some(64));
    }
}

//! The Table of Loads (Figure 4): per-static-load stride detection.

/// The result of observing one dynamic load instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlObservation {
    /// The stride recorded for the load after this observation (bytes).
    pub stride: i64,
    /// The confidence counter after this observation.
    pub confidence: u8,
    /// Whether the load has reached the confidence threshold and should be
    /// vectorized (if it is not already).
    pub vectorize: bool,
}

#[derive(Debug, Clone, Copy)]
struct TlEntry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    last_used: u64,
}

/// The Table of Loads: a set-associative table indexed by load PC that stores
/// the last address, the current stride and a confidence counter (§3.2).
///
/// ```
/// use sdv_core::TableOfLoads;
///
/// let mut tl = TableOfLoads::new(512, 4, 2, false);
/// assert!(!tl.observe(0x1000, 0x8000).vectorize); // first instance
/// assert!(!tl.observe(0x1000, 0x8008).vectorize); // stride established
/// assert!(!tl.observe(0x1000, 0x8010).vectorize); // stride repeated once: confidence 1
/// assert!(tl.observe(0x1000, 0x8018).vectorize);  // stride repeated twice: confidence 2
/// ```
#[derive(Debug, Clone)]
pub struct TableOfLoads {
    sets: Vec<Vec<TlEntry>>,
    ways: usize,
    threshold: u8,
    unbounded: bool,
    stamp: u64,
    observations: u64,
    replacements: u64,
}

impl TableOfLoads {
    /// Creates a table with `sets` sets of `ways` entries; `threshold` is the
    /// confidence needed to trigger vectorization.  With `unbounded` the
    /// associativity limit is ignored (Figure 3's unlimited-resource study).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero (or not a power of two) or `ways` is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize, threshold: u8, unbounded: bool) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "TL sets must be a non-zero power of two"
        );
        assert!(ways > 0, "TL must have at least one way");
        TableOfLoads {
            sets: vec![Vec::new(); sets],
            ways,
            threshold,
            unbounded,
            stamp: 0,
            observations: 0,
            replacements: 0,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets.len() - 1)
    }

    /// Observes one dynamic instance of the load at `pc` accessing `addr`.
    ///
    /// Implements the update rule of §3.2: a table miss installs the entry
    /// with stride 0 and confidence 0; a hit computes the new stride, bumps
    /// the confidence when it matches the recorded stride and resets it to
    /// zero otherwise.  The last-address field is always updated.
    pub fn observe(&mut self, pc: u64, addr: u64) -> TlObservation {
        self.stamp += 1;
        self.observations += 1;
        let stamp = self.stamp;
        let threshold = self.threshold;
        let ways = if self.unbounded {
            usize::MAX
        } else {
            self.ways
        };
        let set_idx = self.set_of(pc);
        let set = &mut self.sets[set_idx];

        if let Some(e) = set.iter_mut().find(|e| e.pc == pc) {
            let new_stride = addr.wrapping_sub(e.last_addr) as i64;
            if new_stride == e.stride {
                e.confidence = e.confidence.saturating_add(1);
            } else {
                e.confidence = 0;
                e.stride = new_stride;
            }
            e.last_addr = addr;
            e.last_used = stamp;
            return TlObservation {
                stride: e.stride,
                confidence: e.confidence,
                vectorize: e.confidence >= threshold,
            };
        }

        // Miss: install a fresh entry, evicting the LRU way if needed.
        let entry = TlEntry {
            pc,
            last_addr: addr,
            stride: 0,
            confidence: 0,
            last_used: stamp,
        };
        if set.len() < ways {
            set.push(entry);
        } else {
            self.replacements += 1;
            let victim = set
                .iter_mut()
                .min_by_key(|e| e.last_used)
                .expect("ways > 0");
            *victim = entry;
        }
        TlObservation {
            stride: 0,
            confidence: 0,
            vectorize: false,
        }
    }

    /// Looks up the current stride prediction for `pc` without updating anything.
    #[must_use]
    pub fn peek(&self, pc: u64) -> Option<TlObservation> {
        let set = &self.sets[self.set_of(pc)];
        set.iter().find(|e| e.pc == pc).map(|e| TlObservation {
            stride: e.stride,
            confidence: e.confidence,
            vectorize: e.confidence >= self.threshold,
        })
    }

    /// Clears the whole table (context switches invalidate it, §3.2).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of dynamic loads observed.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of entries evicted because a set was full.
    #[must_use]
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Number of entries currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl() -> TableOfLoads {
        TableOfLoads::new(512, 4, 2, false)
    }

    #[test]
    fn three_instances_needed_for_vectorization() {
        let mut t = tl();
        let o1 = t.observe(0x1000, 0x8000);
        assert_eq!((o1.confidence, o1.vectorize), (0, false));
        let o2 = t.observe(0x1000, 0x8010);
        assert_eq!((o2.confidence, o2.vectorize), (0, false));
        assert_eq!(o2.stride, 0x10);
        let o3 = t.observe(0x1000, 0x8020);
        assert_eq!((o3.confidence, o3.vectorize), (1, false));
        let o4 = t.observe(0x1000, 0x8030);
        assert_eq!((o4.confidence, o4.vectorize), (2, true));
    }

    #[test]
    fn stride_zero_is_vectorizable_after_two_repeats() {
        // The paper's §2 observes that stride 0 (same address) is the most
        // common case; a stride-0 load reaches confidence 2 on its third
        // instance because the entry is installed with stride 0.
        let mut t = tl();
        assert!(!t.observe(0x2000, 0x9000).vectorize);
        assert!(!t.observe(0x2000, 0x9000).vectorize);
        assert!(t.observe(0x2000, 0x9000).vectorize);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut t = tl();
        for i in 0..4u64 {
            t.observe(0x1000, 0x8000 + i * 8);
        }
        assert!(t.peek(0x1000).unwrap().vectorize);
        // Break the pattern.
        let o = t.observe(0x1000, 0xf000);
        assert_eq!(o.confidence, 0);
        assert!(!o.vectorize);
        // Re-establish a new stride.
        let o = t.observe(0x1000, 0xf004);
        assert_eq!(o.confidence, 0);
        let o = t.observe(0x1000, 0xf008);
        assert_eq!(o.confidence, 1);
        let o = t.observe(0x1000, 0xf00c);
        assert!(o.vectorize);
        assert_eq!(o.stride, 4);
    }

    #[test]
    fn negative_strides_are_tracked() {
        let mut t = tl();
        t.observe(0x1000, 0x9000);
        t.observe(0x1000, 0x8ff8);
        t.observe(0x1000, 0x8ff0);
        let o = t.observe(0x1000, 0x8fe8);
        assert_eq!(o.stride, -8);
        assert!(o.vectorize);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut t = TableOfLoads::new(1, 2, 2, false);
        t.observe(0x1000, 1);
        t.observe(0x2000, 1);
        t.observe(0x1000, 2); // touch 0x1000 so 0x2000 is LRU
        t.observe(0x3000, 1); // evicts 0x2000
        assert!(t.peek(0x1000).is_some());
        assert!(t.peek(0x2000).is_none());
        assert!(t.peek(0x3000).is_some());
        assert_eq!(t.replacements(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unbounded_mode_never_evicts() {
        let mut t = TableOfLoads::new(1, 1, 2, true);
        for pc in 0..100u64 {
            t.observe(pc * 4, pc);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.replacements(), 0);
    }

    #[test]
    fn clear_empties_the_table() {
        let mut t = tl();
        t.observe(0x1000, 0x8000);
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert!(t.peek(0x1000).is_none());
        assert_eq!(t.observations(), 1, "statistics survive a clear");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = TableOfLoads::new(3, 4, 2, false);
    }
}

//! The vector register file with per-element V/R/U/F flags (Figure 8) and the
//! allocation / freeing rules of §3.3.

use crate::slotset::SlotSet;

/// Identifier of a vector register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VregId(u32);

impl VregId {
    /// The register's index within the file.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VregId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Per-element state: the four flags of Figure 8 plus a poison bit used to
/// propagate load mis-speculations to dependent elements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElementState {
    /// V: the element holds committed (validated) data.
    pub valid: bool,
    /// R: the element has been computed by a vector functional unit or loaded
    /// from memory.
    pub ready: bool,
    /// U: a validation of this element has been dispatched but not committed.
    pub used: bool,
    /// F: the element is no longer needed.
    pub free: bool,
    /// The element is known to be wrong (its producing speculation failed) and
    /// must never be validated.
    pub poisoned: bool,
}

/// One vector register: owner PC, MRBB tag, per-element state and, for loads,
/// the range of memory addresses the elements were fetched from (§3.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorRegister {
    allocated: bool,
    pc: u64,
    mrbb: u64,
    generation: u64,
    elements: Vec<ElementState>,
    addr_range: Option<(u64, u64)>,
}

impl VectorRegister {
    fn new(vector_length: usize) -> Self {
        VectorRegister {
            allocated: false,
            pc: 0,
            mrbb: 0,
            generation: 0,
            elements: vec![ElementState::default(); vector_length],
            addr_range: None,
        }
    }

    /// Allocation generation: incremented every time the register is
    /// (re-)allocated, so external bookkeeping can detect reallocation.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the register is currently allocated.
    #[must_use]
    pub fn is_allocated(&self) -> bool {
        self.allocated
    }

    /// PC of the instruction the register was allocated to.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The MRBB tag recorded at allocation time.
    #[must_use]
    pub fn mrbb(&self) -> u64 {
        self.mrbb
    }

    /// The per-element state.
    #[must_use]
    pub fn elements(&self) -> &[ElementState] {
        &self.elements
    }

    /// The memory address range covered by a vectorized load, if set.
    #[must_use]
    pub fn addr_range(&self) -> Option<(u64, u64)> {
        self.addr_range
    }

    /// Rule 1 of §3.3: every element has been computed and freed.
    fn all_ready_and_free(&self) -> bool {
        self.elements.iter().all(|e| e.ready && e.free)
    }

    /// Rule 2 of §3.3: every validated element is freed, all elements are
    /// computed, none is in use, and the owning loop has terminated
    /// (MRBB differs from the global MRBB).
    fn releasable_after_loop(&self, gmrbb: u64) -> bool {
        self.elements
            .iter()
            .all(|e| (!e.valid || e.free) && e.ready && !e.used)
            && self.mrbb != gmrbb
    }
}

/// Element-usage accounting for released registers (Figure 15).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElementUsage {
    /// Elements that were computed and validated ("comp. used").
    pub computed_used: u64,
    /// Elements that were computed but never validated ("comp. not used").
    pub computed_not_used: u64,
    /// Elements that were never computed ("not comp.").
    pub not_computed: u64,
    /// Number of registers released (the denominator of the averages).
    pub registers_released: u64,
}

impl ElementUsage {
    /// Average validated elements per released register.
    #[must_use]
    pub fn avg_computed_used(&self) -> f64 {
        self.avg(self.computed_used)
    }

    /// Average computed-but-unused elements per released register.
    #[must_use]
    pub fn avg_computed_not_used(&self) -> f64 {
        self.avg(self.computed_not_used)
    }

    /// Average never-computed elements per released register.
    #[must_use]
    pub fn avg_not_computed(&self) -> f64 {
        self.avg(self.not_computed)
    }

    fn avg(&self, n: u64) -> f64 {
        if self.registers_released == 0 {
            0.0
        } else {
            n as f64 / self.registers_released as f64
        }
    }

    /// Merges counts from another collector.
    pub fn merge(&mut self, other: &ElementUsage) {
        self.computed_used += other.computed_used;
        self.computed_not_used += other.computed_not_used;
        self.not_computed += other.not_computed;
        self.registers_released += other.registers_released;
    }
}

/// The vector register file.
///
/// ```
/// use sdv_core::VectorRegisterFile;
///
/// let mut vrf = VectorRegisterFile::new(4, 4, false);
/// let id = vrf.allocate(0x1000, 0).expect("register available");
/// vrf.set_ready(id, 0);
/// vrf.mark_used(id, 0);
/// vrf.validate(id, 0);
/// assert!(vrf.get(id).elements()[0].valid);
/// ```
#[derive(Debug, Clone)]
pub struct VectorRegisterFile {
    regs: Vec<VectorRegister>,
    vector_length: usize,
    unbounded: bool,
    usage: ElementUsage,
    allocation_failures: u64,
    /// Free list: indices of unallocated registers.  Kept ordered so that
    /// allocation always picks the lowest-numbered free register — the same
    /// choice the original linear scan made.
    free_set: SlotSet,
    /// Indices of allocated registers, ordered; every whole-file walk
    /// (release scans, store-coherence checks) iterates this instead of the
    /// backing array.
    allocated_set: SlotSet,
    /// Conservative union of every allocated register's address range: the
    /// §3.6 store check rejects stores outside it without walking the
    /// allocated set (the overwhelmingly common case).  Widened exactly on
    /// [`VectorRegisterFile::set_addr_range`]; releasing a ranged register
    /// only marks it stale (`addr_union_dirty`), and the next check rebuilds.
    addr_union: Option<(u64, u64)>,
    addr_union_dirty: bool,
    /// Reusable snapshot buffer for scans that release while iterating.
    scan_scratch: Vec<u32>,
}

impl VectorRegisterFile {
    /// Creates a file of `count` registers of `vector_length` elements each.
    /// With `unbounded`, allocation never fails (the file grows on demand).
    ///
    /// # Panics
    ///
    /// Panics if `count` or `vector_length` is zero.
    #[must_use]
    pub fn new(count: usize, vector_length: usize, unbounded: bool) -> Self {
        assert!(
            count > 0,
            "vector register file must have at least one register"
        );
        assert!(
            vector_length > 0,
            "vector length must be at least one element"
        );
        VectorRegisterFile {
            regs: (0..count)
                .map(|_| VectorRegister::new(vector_length))
                .collect(),
            vector_length,
            unbounded,
            usage: ElementUsage::default(),
            allocation_failures: 0,
            free_set: SlotSet::full(count),
            allocated_set: SlotSet::new(),
            addr_union: None,
            addr_union_dirty: false,
            scan_scratch: Vec::new(),
        }
    }

    /// The configured vector length.
    #[must_use]
    pub fn vector_length(&self) -> usize {
        self.vector_length
    }

    /// Number of registers currently allocated.
    #[must_use]
    pub fn allocated_count(&self) -> usize {
        self.allocated_set.len()
    }

    /// Number of registers currently free.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.regs.len() - self.allocated_count()
    }

    /// Number of allocation requests that failed for lack of a free register.
    #[must_use]
    pub fn allocation_failures(&self) -> u64 {
        self.allocation_failures
    }

    /// Element-usage statistics accumulated over released registers.
    #[must_use]
    pub fn usage(&self) -> &ElementUsage {
        &self.usage
    }

    /// Allocates a register for the instruction at `pc`, tagging it with the
    /// current MRBB.  Returns `None` when no register is free (§3.3: the
    /// instruction then continues in scalar mode).
    pub fn allocate(&mut self, pc: u64, mrbb: u64) -> Option<VregId> {
        let idx = match self.free_set.pop_first() {
            Some(i) => i as usize,
            None if self.unbounded => {
                self.regs.push(VectorRegister::new(self.vector_length));
                self.regs.len() - 1
            }
            None => {
                self.allocation_failures += 1;
                return None;
            }
        };
        self.allocated_set.insert(idx as u32);
        let vl = self.vector_length;
        let reg = &mut self.regs[idx];
        let generation = reg.generation + 1;
        *reg = VectorRegister::new(vl);
        reg.allocated = true;
        reg.pc = pc;
        reg.mrbb = mrbb;
        reg.generation = generation;
        Some(VregId(idx as u32))
    }

    /// The current allocation generation of `id` (see [`VectorRegister::generation`]).
    #[must_use]
    pub fn generation(&self, id: VregId) -> u64 {
        self.get(id).generation()
    }

    /// Borrows a register.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn get(&self, id: VregId) -> &VectorRegister {
        &self.regs[id.index()]
    }

    fn get_mut(&mut self, id: VregId) -> &mut VectorRegister {
        &mut self.regs[id.index()]
    }

    /// Records the address range covered by a vectorized load.
    pub fn set_addr_range(&mut self, id: VregId, first: u64, last: u64) {
        let range = (first.min(last), first.max(last));
        self.get_mut(id).addr_range = Some(range);
        // Widening the union is exact; narrowing happens lazily on release.
        self.addr_union = match self.addr_union {
            Some((lo, hi)) => Some((lo.min(range.0), hi.max(range.1))),
            None => Some(range),
        };
    }

    /// Marks element `offset` as computed (R flag).
    pub fn set_ready(&mut self, id: VregId, offset: usize) {
        self.get_mut(id).elements[offset].ready = true;
    }

    /// Whether element `offset` has been computed.
    #[must_use]
    pub fn is_ready(&self, id: VregId, offset: usize) -> bool {
        self.get(id).elements[offset].ready
    }

    /// Marks element `offset` as having a dispatched, uncommitted validation (U flag).
    pub fn mark_used(&mut self, id: VregId, offset: usize) {
        self.get_mut(id).elements[offset].used = true;
    }

    /// Commits a validation of element `offset`: sets V and clears U.
    pub fn validate(&mut self, id: VregId, offset: usize) {
        let e = &mut self.get_mut(id).elements[offset];
        e.valid = true;
        e.used = false;
    }

    /// Marks element `offset` as no longer needed (F flag).
    pub fn set_free_flag(&mut self, id: VregId, offset: usize) {
        self.get_mut(id).elements[offset].free = true;
    }

    /// Poisons elements `from..` of a register after a failed validation, so
    /// they are never validated or reused.
    pub fn poison_from(&mut self, id: VregId, from: usize) {
        for e in self.get_mut(id).elements[from..].iter_mut() {
            e.poisoned = true;
            e.used = false;
        }
    }

    /// Whether element `offset` has been poisoned by a mis-speculation.
    #[must_use]
    pub fn is_poisoned(&self, id: VregId, offset: usize) -> bool {
        self.get(id).elements[offset].poisoned
    }

    /// Releases `id` unconditionally, recording its element usage (used when a
    /// register is invalidated by a store conflict or at the end of a run).
    pub fn force_release(&mut self, id: VregId) {
        if self.regs[id.index()].allocated {
            self.record_usage(id);
            self.release_slot(id);
        }
    }

    /// Marks `id` unallocated and returns it to the free list.
    fn release_slot(&mut self, id: VregId) {
        if self.regs[id.index()].addr_range.is_some() {
            // The union may have narrowed; rebuild on the next store check.
            self.addr_union_dirty = true;
        }
        self.regs[id.index()].allocated = false;
        self.allocated_set.remove(id.0);
        self.free_set.insert(id.0);
    }

    /// Applies the two freeing rules of §3.3 to `id`; releases it and returns
    /// `true` if either rule holds.
    pub fn try_release(&mut self, id: VregId, gmrbb: u64) -> bool {
        let reg = &self.regs[id.index()];
        if !reg.allocated {
            return false;
        }
        if reg.all_ready_and_free() || reg.releasable_after_loop(gmrbb) {
            self.record_usage(id);
            self.release_slot(id);
            true
        } else {
            false
        }
    }

    /// Applies the freeing rules to every allocated register; returns the
    /// registers released.
    pub fn release_eligible(&mut self, gmrbb: u64) -> Vec<VregId> {
        let mut out = Vec::new();
        self.release_eligible_into(gmrbb, &mut out);
        out
    }

    /// Allocation-free form of [`VectorRegisterFile::release_eligible`]:
    /// clears `out` and fills it with the released registers, reusing an
    /// internal snapshot buffer for the walk.
    pub fn release_eligible_into(&mut self, gmrbb: u64, out: &mut Vec<VregId>) {
        out.clear();
        let mut ids = std::mem::take(&mut self.scan_scratch);
        ids.clear();
        ids.extend(self.allocated_set.iter());
        for &i in &ids {
            let id = VregId(i);
            if self.try_release(id, gmrbb) {
                out.push(id);
            }
        }
        self.scan_scratch = ids;
    }

    /// Registers (allocated, with an address range) whose range overlaps the
    /// store `[addr, addr + width)` — the §3.6 coherence check.  A lazily
    /// maintained union of all allocated ranges rejects non-overlapping
    /// stores (the overwhelmingly common case) in O(1); only stores inside
    /// the union walk the allocated set.
    #[must_use]
    pub fn conflicting_registers(&mut self, addr: u64, width: u64) -> Vec<VregId> {
        let end = addr + width.max(1) - 1;
        if self.addr_union_dirty {
            self.addr_union = self
                .allocated_set
                .iter()
                .filter_map(|i| self.regs[i as usize].addr_range)
                .reduce(|(lo0, hi0), (lo1, hi1)| (lo0.min(lo1), hi0.max(hi1)));
            self.addr_union_dirty = false;
        }
        match self.addr_union {
            Some((lo, hi)) if addr <= hi && end >= lo => {}
            _ => return Vec::new(),
        }
        self.allocated_set
            .iter()
            .filter_map(|i| {
                self.regs[i as usize]
                    .addr_range
                    .and_then(|(first, last)| (addr <= last && end >= first).then_some(VregId(i)))
            })
            .collect()
    }

    /// All currently allocated registers, in index order.
    pub fn allocated_ids(&self) -> impl Iterator<Item = VregId> + '_ {
        self.allocated_set.iter().map(VregId)
    }

    /// Releases every allocated register, recording usage (end of simulation).
    pub fn release_all(&mut self) {
        let ids: Vec<VregId> = self.allocated_ids().collect();
        for id in ids {
            self.force_release(id);
        }
    }

    fn record_usage(&mut self, id: VregId) {
        let reg = &self.regs[id.index()];
        for e in &reg.elements {
            if e.ready && e.valid {
                self.usage.computed_used += 1;
            } else if e.ready {
                self.usage.computed_not_used += 1;
            } else {
                self.usage.not_computed += 1;
            }
        }
        self.usage.registers_released += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file() -> VectorRegisterFile {
        VectorRegisterFile::new(4, 4, false)
    }

    #[test]
    fn allocation_and_exhaustion() {
        let mut vrf = file();
        let ids: Vec<_> = (0..4)
            .map(|i| vrf.allocate(0x1000 + i, 0).unwrap())
            .collect();
        assert_eq!(vrf.allocated_count(), 4);
        assert_eq!(vrf.free_count(), 0);
        assert!(vrf.allocate(0x2000, 0).is_none());
        assert_eq!(vrf.allocation_failures(), 1);
        vrf.force_release(ids[2]);
        assert_eq!(vrf.free_count(), 1);
        assert!(vrf.allocate(0x2000, 0).is_some());
    }

    #[test]
    fn unbounded_file_grows() {
        let mut vrf = VectorRegisterFile::new(1, 4, true);
        for pc in 0..10u64 {
            assert!(vrf.allocate(pc, 0).is_some());
        }
        assert_eq!(vrf.allocated_count(), 10);
        assert_eq!(vrf.allocation_failures(), 0);
    }

    #[test]
    fn freeing_rule_one_all_ready_and_free() {
        let mut vrf = file();
        let id = vrf.allocate(0x1000, 0xaaaa).unwrap();
        for i in 0..4 {
            vrf.set_ready(id, i);
            vrf.set_free_flag(id, i);
        }
        assert!(vrf.try_release(id, 0xaaaa), "rule 1 ignores the MRBB");
        assert_eq!(vrf.usage().registers_released, 1);
    }

    #[test]
    fn freeing_rule_one_requires_all_elements() {
        let mut vrf = file();
        let id = vrf.allocate(0x1000, 0).unwrap();
        for i in 0..3 {
            vrf.set_ready(id, i);
            vrf.set_free_flag(id, i);
        }
        vrf.set_ready(id, 3); // last element computed but not freed
        assert!(!vrf.try_release(id, 0));
    }

    #[test]
    fn freeing_rule_two_needs_loop_exit() {
        let mut vrf = file();
        let id = vrf.allocate(0x1000, 0x4000).unwrap();
        // Validate and free the first two elements, compute the rest.
        for i in 0..4 {
            vrf.set_ready(id, i);
        }
        for i in 0..2 {
            vrf.mark_used(id, i);
            vrf.validate(id, i);
            vrf.set_free_flag(id, i);
        }
        // GMRBB still equals the register's MRBB: the loop may still be running.
        assert!(!vrf.try_release(id, 0x4000));
        // Once another backward branch commits the loop is assumed finished.
        assert!(vrf.try_release(id, 0x5000));
    }

    #[test]
    fn freeing_rule_two_blocked_by_in_flight_validation() {
        let mut vrf = file();
        let id = vrf.allocate(0x1000, 0x4000).unwrap();
        for i in 0..4 {
            vrf.set_ready(id, i);
        }
        vrf.mark_used(id, 0); // validation dispatched but not committed
        assert!(!vrf.try_release(id, 0x9999));
        vrf.validate(id, 0);
        vrf.set_free_flag(id, 0);
        assert!(vrf.try_release(id, 0x9999));
    }

    #[test]
    fn usage_statistics_classify_elements() {
        let mut vrf = file();
        let id = vrf.allocate(0x1000, 0).unwrap();
        vrf.set_ready(id, 0);
        vrf.validate(id, 0); // computed + used
        vrf.set_ready(id, 1); // computed, not used
        vrf.set_ready(id, 2); // computed, not used

        // element 3 never computed
        vrf.force_release(id);
        let u = vrf.usage();
        assert_eq!(u.computed_used, 1);
        assert_eq!(u.computed_not_used, 2);
        assert_eq!(u.not_computed, 1);
        assert!((u.avg_computed_used() - 1.0).abs() < 1e-12);
        assert!((u.avg_not_computed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn store_conflict_detection() {
        let mut vrf = file();
        let a = vrf.allocate(0x1000, 0).unwrap();
        let b = vrf.allocate(0x1004, 0).unwrap();
        vrf.set_addr_range(a, 0x8000, 0x8018);
        vrf.set_addr_range(b, 0x9000, 0x9018);
        assert_eq!(vrf.conflicting_registers(0x8010, 8), vec![a]);
        assert_eq!(
            vrf.conflicting_registers(0x8fff, 8),
            vec![b],
            "touches first byte of b"
        );
        assert!(vrf.conflicting_registers(0x7000, 8).is_empty());
        let both = vrf.conflicting_registers(0x8018, 0x1000);
        assert_eq!(both, vec![a, b]);
    }

    #[test]
    fn poisoning_marks_trailing_elements() {
        let mut vrf = file();
        let id = vrf.allocate(0x1000, 0).unwrap();
        vrf.mark_used(id, 3);
        vrf.poison_from(id, 2);
        assert!(!vrf.is_poisoned(id, 1));
        assert!(vrf.is_poisoned(id, 2));
        assert!(vrf.is_poisoned(id, 3));
        assert!(!vrf.get(id).elements()[3].used, "poisoning clears U");
    }

    #[test]
    fn release_all_and_eligible() {
        let mut vrf = file();
        let a = vrf.allocate(0x1, 0).unwrap();
        let _b = vrf.allocate(0x2, 0).unwrap();
        for i in 0..4 {
            vrf.set_ready(a, i);
            vrf.set_free_flag(a, i);
        }
        let released = vrf.release_eligible(0);
        assert_eq!(released, vec![a]);
        vrf.release_all();
        assert_eq!(vrf.allocated_count(), 0);
        assert_eq!(vrf.usage().registers_released, 2);
    }

    #[test]
    fn free_list_allocates_lowest_index_first() {
        // The free list must reproduce the original linear scan's choice:
        // always the lowest-numbered free register.
        let mut vrf = file();
        let ids: Vec<_> = (0..4)
            .map(|i| vrf.allocate(0x1000 + i, 0).unwrap())
            .collect();
        vrf.force_release(ids[2]);
        vrf.force_release(ids[0]);
        let a = vrf.allocate(0x2000, 0).unwrap();
        assert_eq!(a, ids[0], "lowest free index is re-used first");
        let b = vrf.allocate(0x2004, 0).unwrap();
        assert_eq!(b, ids[2]);
        assert_eq!(vrf.allocated_count(), 4);
        assert_eq!(vrf.allocated_ids().count(), 4);
    }

    #[test]
    fn double_force_release_counts_once() {
        let mut vrf = file();
        let id = vrf.allocate(0x1, 0).unwrap();
        vrf.force_release(id);
        vrf.force_release(id);
        assert_eq!(vrf.usage().registers_released, 1);
    }
}

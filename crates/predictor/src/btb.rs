//! Branch target buffer.

/// A set-associative branch target buffer with LRU replacement.
///
/// ```
/// use sdv_predictor::Btb;
///
/// let mut btb = Btb::new(16, 2);
/// btb.insert(0x1000, 0x2000);
/// assert_eq!(btb.lookup(0x1000), Some(0x2000));
/// assert_eq!(btb.lookup(0x1004), None);
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    ways: usize,
    stamp: u64,
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    pc: u64,
    target: u64,
    last_used: u64,
}

impl Btb {
    /// Creates a BTB with `sets` sets (rounded up to a power of two) of
    /// `ways` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "BTB dimensions must be non-zero");
        let sets = sets.next_power_of_two();
        Btb {
            sets: vec![Vec::new(); sets],
            ways,
            stamp: 0,
        }
    }

    fn set_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets.len() - 1)
    }

    /// Looks up the predicted target for the control instruction at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.stamp += 1;
        let stamp = self.stamp;
        let idx = self.set_index(pc);
        let set = &mut self.sets[idx];
        for e in set.iter_mut() {
            if e.pc == pc {
                e.last_used = stamp;
                return Some(e.target);
            }
        }
        None
    }

    /// Inserts or updates the target for `pc`, evicting the LRU entry if the
    /// set is full.
    pub fn insert(&mut self, pc: u64, target: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = self.ways;
        let idx = self.set_index(pc);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.pc == pc) {
            e.target = target;
            e.last_used = stamp;
            return;
        }
        let entry = BtbEntry {
            pc,
            target,
            last_used: stamp,
        };
        if set.len() < ways {
            set.push(entry);
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|e| e.last_used)
                .expect("set is full, so non-empty");
            *victim = entry;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_update() {
        let mut btb = Btb::new(8, 2);
        btb.insert(0x1000, 0xaaaa);
        assert_eq!(btb.lookup(0x1000), Some(0xaaaa));
        btb.insert(0x1000, 0xbbbb);
        assert_eq!(btb.lookup(0x1000), Some(0xbbbb));
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut btb = Btb::new(1, 2);
        btb.insert(0x1000, 1);
        btb.insert(0x2000, 2);
        // Touch 0x1000 so 0x2000 becomes LRU.
        assert_eq!(btb.lookup(0x1000), Some(1));
        btb.insert(0x3000, 3);
        assert_eq!(btb.lookup(0x2000), None, "LRU entry evicted");
        assert_eq!(btb.lookup(0x1000), Some(1));
        assert_eq!(btb.lookup(0x3000), Some(3));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut btb = Btb::new(4, 1);
        btb.insert(0x1000, 1);
        btb.insert(0x1004, 2);
        btb.insert(0x1008, 3);
        btb.insert(0x100c, 4);
        assert_eq!(btb.lookup(0x1000), Some(1));
        assert_eq!(btb.lookup(0x1004), Some(2));
        assert_eq!(btb.lookup(0x1008), Some(3));
        assert_eq!(btb.lookup(0x100c), Some(4));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_ways_panics() {
        let _ = Btb::new(4, 0);
    }
}

//! Return address stack.

/// A bounded return-address stack.
///
/// When the stack overflows, the oldest entry is discarded (the common
/// hardware policy), so deeply nested call chains degrade gracefully.
///
/// ```
/// use sdv_predictor::ReturnAddressStack;
///
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(0x100);
/// ras.push(0x200);
/// assert_eq!(ras.pop(), Some(0x200));
/// assert_eq!(ras.pop(), Some(0x100));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: std::collections::VecDeque<u64>,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a stack holding at most `depth` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "RAS depth must be non-zero");
        ReturnAddressStack {
            entries: std::collections::VecDeque::with_capacity(depth),
            depth,
        }
    }

    /// Pushes the return address of a call.
    pub fn push(&mut self, return_pc: u64) {
        if self.entries.len() == self.depth {
            self.entries.pop_front();
        }
        self.entries.push_back(return_pc);
    }

    /// Pops the predicted target for a return instruction.
    pub fn pop(&mut self) -> Option<u64> {
        self.entries.pop_back()
    }

    /// Number of addresses currently on the stack.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(8);
        for pc in [1u64, 2, 3] {
            ras.push(pc);
        }
        assert_eq!(ras.len(), 3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert!(ras.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_depth_panics() {
        let _ = ReturnAddressStack::new(0);
    }
}

//! Branch prediction for the SDV timing model.
//!
//! The paper's processor configurations (Table 1) use a **gshare** predictor
//! with 64 K entries.  This crate provides that predictor, a branch target
//! buffer for predicting targets of taken branches, and a small return-address
//! stack for call/return pairs.  All three are composed by
//! [`BranchPredictor`], the front-end component used by `sdv-uarch`.
//!
//! ```
//! use sdv_predictor::{BranchPredictor, PredictorConfig};
//!
//! let mut bp = BranchPredictor::new(&PredictorConfig::default());
//! // A loop branch at PC 0x1040 that is always taken towards 0x1000.  Once
//! // the 16-bit global history saturates with "taken" outcomes the gshare
//! // index becomes stable and the branch is predicted correctly.
//! for _ in 0..40 {
//!     let p = bp.predict_branch(0x1040);
//!     bp.update_branch(0x1040, true, 0x1000);
//!     let _ = p;
//! }
//! assert!(bp.predict_branch(0x1040).taken);
//! assert_eq!(bp.predict_branch(0x1040).target, Some(0x1000));
//! ```

pub mod btb;
pub mod gshare;
pub mod ras;

pub use btb::Btb;
pub use gshare::Gshare;
pub use ras::ReturnAddressStack;

/// Configuration of the composite branch predictor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PredictorConfig {
    /// Number of 2-bit counters in the gshare table (must be a power of two).
    pub gshare_entries: usize,
    /// Number of global-history bits used to index gshare.
    pub history_bits: u32,
    /// Number of sets in the BTB.
    pub btb_sets: usize,
    /// Associativity of the BTB.
    pub btb_ways: usize,
    /// Depth of the return-address stack.
    pub ras_depth: usize,
}

impl Default for PredictorConfig {
    /// The configuration used throughout the paper: gshare with 64 K entries.
    fn default() -> Self {
        PredictorConfig {
            gshare_entries: 64 * 1024,
            history_bits: 16,
            btb_sets: 512,
            btb_ways: 4,
            ras_depth: 16,
        }
    }
}

/// A prediction for one conditional branch or jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional transfers).
    pub taken: bool,
    /// Predicted target, if the BTB (or RAS) knows one.
    pub target: Option<u64>,
}

/// The composite front-end predictor: gshare direction + BTB target + RAS.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    gshare: Gshare,
    btb: Btb,
    ras: ReturnAddressStack,
    lookups: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor from a configuration.
    #[must_use]
    pub fn new(cfg: &PredictorConfig) -> Self {
        BranchPredictor {
            gshare: Gshare::new(cfg.gshare_entries, cfg.history_bits),
            btb: Btb::new(cfg.btb_sets, cfg.btb_ways),
            ras: ReturnAddressStack::new(cfg.ras_depth),
            lookups: 0,
            mispredictions: 0,
        }
    }

    /// Predicts a conditional branch at `pc`.
    pub fn predict_branch(&mut self, pc: u64) -> Prediction {
        let taken = self.gshare.predict(pc);
        let target = if taken { self.btb.lookup(pc) } else { None };
        Prediction { taken, target }
    }

    /// Predicts an unconditional direct or indirect jump at `pc`.
    pub fn predict_jump(&mut self, pc: u64) -> Prediction {
        Prediction {
            taken: true,
            target: self.btb.lookup(pc),
        }
    }

    /// Predicts the target of a return instruction.
    pub fn predict_return(&mut self, pc: u64) -> Prediction {
        let target = self.ras.pop().or_else(|| self.btb.lookup(pc));
        Prediction {
            taken: true,
            target,
        }
    }

    /// Records a call so the matching return can be predicted.
    pub fn push_return_address(&mut self, return_pc: u64) {
        self.ras.push(return_pc);
    }

    /// Updates the direction predictor and the BTB with the actual outcome of
    /// a conditional branch.
    pub fn update_branch(&mut self, pc: u64, taken: bool, target: u64) {
        self.gshare.update(pc, taken);
        if taken {
            self.btb.insert(pc, target);
        }
    }

    /// Updates the BTB with the actual target of a jump.
    pub fn update_jump(&mut self, pc: u64, target: u64) {
        self.btb.insert(pc, target);
    }

    /// Records the outcome of one predicted control instruction for the
    /// aggregate accuracy counters.
    pub fn record_outcome(&mut self, correct: bool) {
        self.lookups += 1;
        if !correct {
            self.mispredictions += 1;
        }
    }

    /// Number of predictions whose outcome has been recorded.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of recorded mispredictions.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate over the recorded outcomes (0 when nothing recorded).
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_predictor_learns_a_loop() {
        let mut bp = BranchPredictor::new(&PredictorConfig::default());
        // The global history must saturate (16 taken outcomes) before the
        // gshare index for this branch becomes stable and trains up.
        for _ in 0..40 {
            bp.update_branch(0x1100, true, 0x1000);
        }
        let p = bp.predict_branch(0x1100);
        assert!(p.taken);
        assert_eq!(p.target, Some(0x1000));
    }

    #[test]
    fn not_taken_prediction_has_no_target() {
        let mut bp = BranchPredictor::new(&PredictorConfig::default());
        for _ in 0..10 {
            bp.update_branch(0x2000, false, 0x3000);
        }
        let p = bp.predict_branch(0x2000);
        assert!(!p.taken);
        assert_eq!(p.target, None);
    }

    #[test]
    fn returns_use_the_ras() {
        let mut bp = BranchPredictor::new(&PredictorConfig::default());
        bp.push_return_address(0x1234);
        bp.push_return_address(0x5678);
        assert_eq!(bp.predict_return(0x9000).target, Some(0x5678));
        assert_eq!(bp.predict_return(0x9000).target, Some(0x1234));
        // Empty RAS falls back to the BTB (which knows nothing here).
        assert_eq!(bp.predict_return(0x9000).target, None);
    }

    #[test]
    fn accuracy_counters() {
        let mut bp = BranchPredictor::new(&PredictorConfig::default());
        bp.record_outcome(true);
        bp.record_outcome(false);
        bp.record_outcome(true);
        bp.record_outcome(true);
        assert_eq!(bp.lookups(), 4);
        assert_eq!(bp.mispredictions(), 1);
        assert!((bp.misprediction_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jumps_learn_targets() {
        let mut bp = BranchPredictor::new(&PredictorConfig::default());
        assert_eq!(bp.predict_jump(0x4000).target, None);
        bp.update_jump(0x4000, 0x8888);
        assert_eq!(bp.predict_jump(0x4000).target, Some(0x8888));
        assert!(bp.predict_jump(0x4000).taken);
    }
}

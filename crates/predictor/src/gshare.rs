//! The gshare direction predictor.

/// A gshare predictor: a table of 2-bit saturating counters indexed by the
/// XOR of the branch PC and the global branch history.
///
/// ```
/// use sdv_predictor::Gshare;
///
/// let mut g = Gshare::new(1024, 10);
/// // Train until the global history saturates with "taken" outcomes, after
/// // which the index for this branch is stable and the counter trains up.
/// for _ in 0..20 {
///     g.update(0x1000, true);
/// }
/// assert!(g.predict(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    history_mask: u64,
    index_mask: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` 2-bit counters (rounded up to a power
    /// of two) and `history_bits` bits of global history.
    ///
    /// Counters start weakly not-taken (value 1).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `history_bits > 63`.
    #[must_use]
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries > 0, "gshare must have at least one entry");
        assert!(history_bits <= 63, "history length too large");
        let entries = entries.next_power_of_two();
        Gshare {
            counters: vec![1; entries],
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            index_mask: entries as u64 - 1,
        }
    }

    /// Number of counters in the table.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    /// The current global history register value.
    #[must_use]
    pub fn history(&self) -> u64 {
        self.history
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.index_mask) as usize
    }

    /// Predicts the direction of the branch at `pc` (`true` = taken).
    #[must_use]
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains the predictor with the actual direction and shifts the history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_weakly_not_taken() {
        let g = Gshare::new(64, 6);
        assert!(!g.predict(0x1000));
        assert!(!g.predict(0x2004));
    }

    #[test]
    fn saturates_up_and_down() {
        let mut g = Gshare::new(64, 0); // no history so the index is stable
        for _ in 0..10 {
            g.update(0x1000, true);
        }
        assert!(g.predict(0x1000));
        // One not-taken must not immediately flip a saturated counter.
        g.update(0x1000, false);
        assert!(g.predict(0x1000));
        for _ in 0..3 {
            g.update(0x1000, false);
        }
        assert!(!g.predict(0x1000));
    }

    #[test]
    fn history_affects_the_index() {
        let mut g = Gshare::new(1024, 10);
        // Train an alternating pattern on one branch: with history, gshare can
        // learn it perfectly after a warm-up period.
        let mut correct = 0;
        let mut total = 0;
        let mut taken = false;
        for i in 0..400 {
            taken = !taken;
            let pred = g.predict(0x1000);
            if i >= 200 {
                total += 1;
                if pred == taken {
                    correct += 1;
                }
            }
            g.update(0x1000, taken);
        }
        assert_eq!(correct, total, "alternating pattern should be learnt");
    }

    #[test]
    fn entries_round_up_to_power_of_two() {
        let g = Gshare::new(1000, 10);
        assert_eq!(g.entries(), 1024);
    }

    #[test]
    fn history_register_masks_correctly() {
        let mut g = Gshare::new(16, 4);
        for _ in 0..100 {
            g.update(0x1000, true);
        }
        assert!(g.history() <= 0xf);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = Gshare::new(0, 4);
    }
}

//! The architectural interpreter.

use crate::memory::SparseMemory;
use crate::trace::{MemAccess, Retired};
use sdv_isa::program::STACK_TOP;
use sdv_isa::{ArchReg, Inst, Opcode, Program};
use std::fmt;

/// Errors raised while emulating a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuError {
    /// The program has executed a `halt` instruction; no further steps are possible.
    Halted,
    /// The PC left the text segment (usually a missing `halt` or a bad jump).
    InvalidPc(u64),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Halted => write!(f, "program has halted"),
            EmuError::InvalidPc(pc) => write!(f, "pc {pc:#x} is outside the text segment"),
        }
    }
}

impl std::error::Error for EmuError {}

/// Functional emulator over a [`Program`].
///
/// The emulator owns the architectural state: PC, 32 integer registers,
/// 32 floating-point registers and a sparse memory pre-loaded with the
/// program's data segments.  `x0` always reads as zero.  The stack pointer
/// `x29` is initialised to [`STACK_TOP`].
#[derive(Debug, Clone)]
pub struct Emulator {
    program: Program,
    pc: u64,
    iregs: [u64; 32],
    fregs: [f64; 32],
    mem: SparseMemory,
    halted: bool,
    retired: u64,
}

impl Emulator {
    /// Creates an emulator positioned at the program entry point, with the
    /// data segments loaded into memory.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mut mem = SparseMemory::new();
        for seg in program.data_segments() {
            mem.load_bytes(seg.addr, &seg.bytes);
        }
        let mut iregs = [0u64; 32];
        iregs[ArchReg::SP.flat_index()] = STACK_TOP;
        Emulator {
            program: program.clone(),
            pc: program.entry_pc(),
            iregs,
            fregs: [0.0; 32],
            mem,
            halted: false,
            retired: 0,
        }
    }

    /// Whether the program has halted.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The current PC.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Number of instructions retired so far.
    #[must_use]
    pub fn retired_count(&self) -> u64 {
        self.retired
    }

    /// Reads an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not an integer register.
    #[must_use]
    pub fn int_reg(&self, reg: ArchReg) -> u64 {
        assert!(reg.is_int(), "{reg} is not an integer register");
        if reg.is_zero() {
            0
        } else {
            self.iregs[reg.number() as usize]
        }
    }

    /// Reads a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a floating-point register.
    #[must_use]
    pub fn fp_reg(&self, reg: ArchReg) -> f64 {
        assert!(reg.is_fp(), "{reg} is not a floating-point register");
        self.fregs[reg.number() as usize]
    }

    /// Bit pattern of any register (integer value, or the f64 bits).
    #[must_use]
    pub fn reg_bits(&self, reg: ArchReg) -> u64 {
        if reg.is_int() {
            self.int_reg(reg)
        } else {
            self.fp_reg(reg).to_bits()
        }
    }

    /// The emulated memory.
    #[must_use]
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable access to the emulated memory (useful for tests that poke data).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    fn write_int(&mut self, reg: ArchReg, value: u64) {
        debug_assert!(reg.is_int());
        if !reg.is_zero() {
            self.iregs[reg.number() as usize] = value;
        }
    }

    fn write_fp(&mut self, reg: ArchReg, value: f64) {
        debug_assert!(reg.is_fp());
        self.fregs[reg.number() as usize] = value;
    }

    fn read_src(&self, reg: Option<ArchReg>) -> u64 {
        reg.map_or(0, |r| self.reg_bits(r))
    }

    /// Executes a single instruction.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Halted`] if the program has already halted and
    /// [`EmuError::InvalidPc`] if the PC points outside the text segment.
    pub fn step(&mut self) -> Result<Retired, EmuError> {
        if self.halted {
            return Err(EmuError::Halted);
        }
        let pc = self.pc;
        let inst = *self.program.inst_at(pc).ok_or(EmuError::InvalidPc(pc))?;
        Ok(self.exec(pc, inst))
    }

    /// Retires up to `max_n` instructions in one call, appending the records
    /// to `out` and returning how many were executed.
    ///
    /// This is the batched front-end hand-off: the PC is translated to a text
    /// index **once** for the whole group and sequential flow advances the
    /// index directly, instead of re-deriving it from the PC on every
    /// instruction the way [`Self::step`] does.  With `stop_on_redirect` the
    /// group additionally ends after a taken control transfer, which aligns
    /// group boundaries with a fetch group (at most one taken branch per
    /// group).  The group always ends when the program halts; the `halt`
    /// instruction itself is retired as the last record and [`Self::halted`]
    /// turns true.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Halted`] if the program had already halted before
    /// the call, and [`EmuError::InvalidPc`] if the PC is outside the text
    /// segment before any instruction of the group could execute.  A PC that
    /// leaves the text segment *mid*-group ends the group instead; the next
    /// call reports the error.
    pub fn step_group(
        &mut self,
        max_n: usize,
        stop_on_redirect: bool,
        out: &mut Vec<Retired>,
    ) -> Result<usize, EmuError> {
        if self.halted {
            return Err(EmuError::Halted);
        }
        if max_n == 0 {
            return Ok(0);
        }
        let mut idx = self
            .program
            .index_of_pc(self.pc)
            .ok_or(EmuError::InvalidPc(self.pc))?;
        let mut n = 0;
        while n < max_n {
            let Some(&inst) = self.program.insts().get(idx) else {
                break; // ran off the text segment; the next call errors
            };
            let pc = Program::pc_of(idx);
            let r = self.exec(pc, inst);
            out.push(r);
            n += 1;
            if self.halted {
                break;
            }
            if r.taken {
                if stop_on_redirect {
                    break;
                }
                match self.program.index_of_pc(r.next_pc) {
                    Some(target) => idx = target,
                    None => break, // the next call reports InvalidPc
                }
            } else {
                idx += 1;
            }
        }
        Ok(n)
    }

    /// Executes one already-fetched instruction at `pc` (the interpreter body
    /// shared by [`Self::step`] and [`Self::step_group`]).
    fn exec(&mut self, pc: u64, inst: Inst) -> Retired {
        let src1_value = self.read_src(inst.src1);
        let src2_value = self.read_src(inst.src2);
        let mut next_pc = pc + 4;
        let mut taken = false;
        let mut mem_access = None;
        let mut dst_value = 0u64;

        use Opcode::*;
        match inst.op {
            // ------------------------------------------------ integer ALU
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Mul | Mulh | Div | Rem => {
                let a = src1_value;
                let b = src2_value;
                let v = int_alu(inst.op, a, b);
                dst_value = v;
                self.write_int(inst.dst.expect("alu dst"), v);
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => {
                let a = src1_value;
                let b = inst.imm as u64;
                let base = match inst.op {
                    Addi => Add,
                    Andi => And,
                    Ori => Or,
                    Xori => Xor,
                    Slli => Sll,
                    Srli => Srl,
                    Srai => Sra,
                    Slti => Slt,
                    _ => unreachable!(),
                };
                let v = int_alu(base, a, b);
                dst_value = v;
                self.write_int(inst.dst.expect("alu dst"), v);
            }
            Li => {
                dst_value = inst.imm as u64;
                self.write_int(inst.dst.expect("li dst"), inst.imm as u64);
            }
            // ------------------------------------------------ floating point
            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax => {
                let a = f64::from_bits(src1_value);
                let b = f64::from_bits(src2_value);
                let v = match inst.op {
                    Fadd => a + b,
                    Fsub => a - b,
                    Fmul => a * b,
                    Fdiv => a / b,
                    Fmin => a.min(b),
                    Fmax => a.max(b),
                    _ => unreachable!(),
                };
                dst_value = v.to_bits();
                self.write_fp(inst.dst.expect("fp dst"), v);
            }
            Fsqrt | Fneg | Fabs => {
                let a = f64::from_bits(src1_value);
                let v = match inst.op {
                    Fsqrt => a.sqrt(),
                    Fneg => -a,
                    Fabs => a.abs(),
                    _ => unreachable!(),
                };
                dst_value = v.to_bits();
                self.write_fp(inst.dst.expect("fp dst"), v);
            }
            Fcvtlf => {
                let v = src1_value as i64 as f64;
                dst_value = v.to_bits();
                self.write_fp(inst.dst.expect("fcvt dst"), v);
            }
            Fcvtfl => {
                let v = f64::from_bits(src1_value) as i64 as u64;
                dst_value = v;
                self.write_int(inst.dst.expect("fcvt dst"), v);
            }
            Feq | Flt | Fle => {
                let a = f64::from_bits(src1_value);
                let b = f64::from_bits(src2_value);
                let v = u64::from(match inst.op {
                    Feq => a == b,
                    Flt => a < b,
                    Fle => a <= b,
                    _ => unreachable!(),
                });
                dst_value = v;
                self.write_int(inst.dst.expect("fcmp dst"), v);
            }
            // ------------------------------------------------ memory
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Flw | Fld => {
                let addr = src1_value.wrapping_add(inst.imm as u64);
                let width = inst.op.mem_width().expect("load width").bytes();
                let raw = self.mem.read_uint(addr, width);
                let value = match inst.op {
                    Lb => raw as u8 as i8 as i64 as u64,
                    Lh => raw as u16 as i16 as i64 as u64,
                    Lw => raw as u32 as i32 as i64 as u64,
                    Lbu | Lhu | Lwu | Ld => raw,
                    Flw => f64::from(f32::from_bits(raw as u32)).to_bits(),
                    Fld => raw,
                    _ => unreachable!(),
                };
                let dst = inst.dst.expect("load dst");
                if dst.is_fp() {
                    self.write_fp(dst, f64::from_bits(value));
                } else {
                    self.write_int(dst, value);
                }
                dst_value = value;
                mem_access = Some(MemAccess {
                    addr,
                    width,
                    is_store: false,
                    value: raw,
                });
            }
            Sb | Sh | Sw | Sd | Fsw | Fsd => {
                let addr = src1_value.wrapping_add(inst.imm as u64);
                let width = inst.op.mem_width().expect("store width").bytes();
                let stored = if inst.op == Fsw {
                    u64::from((f64::from_bits(src2_value) as f32).to_bits())
                } else {
                    src2_value
                };
                self.mem.write_uint(addr, width, stored);
                mem_access = Some(MemAccess {
                    addr,
                    width,
                    is_store: true,
                    value: stored,
                });
            }
            // ------------------------------------------------ control
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let a = src1_value;
                let b = src2_value;
                taken = match inst.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => (a as i64) < (b as i64),
                    Bge => (a as i64) >= (b as i64),
                    Bltu => a < b,
                    Bgeu => a >= b,
                    _ => unreachable!(),
                };
                if taken {
                    next_pc = inst.imm as u64;
                }
            }
            J => {
                taken = true;
                next_pc = inst.imm as u64;
            }
            Jal => {
                taken = true;
                let link = pc + 4;
                dst_value = link;
                self.write_int(inst.dst.expect("jal link"), link);
                next_pc = inst.imm as u64;
            }
            Jr => {
                taken = true;
                next_pc = src1_value;
            }
            Jalr => {
                taken = true;
                let link = pc + 4;
                dst_value = link;
                self.write_int(inst.dst.expect("jalr link"), link);
                next_pc = src1_value.wrapping_add(inst.imm as u64);
            }
            Nop => {}
            Halt => {
                self.halted = true;
                next_pc = pc;
            }
        }

        self.pc = next_pc;
        let seq = self.retired;
        self.retired += 1;
        Retired {
            seq,
            pc,
            inst,
            next_pc,
            taken,
            mem: mem_access,
            src1_value,
            src2_value,
            dst_value,
        }
    }

    /// Runs until the program halts or `max_insts` instructions have retired,
    /// collecting every retired record.
    ///
    /// # Panics
    ///
    /// Panics if the PC leaves the text segment (programs used with the
    /// simulator must be self-contained and end with `halt`).
    pub fn run(&mut self, max_insts: u64) -> Vec<Retired> {
        let mut out = Vec::new();
        for _ in 0..max_insts {
            match self.step() {
                Ok(r) => out.push(r),
                Err(EmuError::Halted) => break,
                Err(e) => panic!("emulation error: {e}"),
            }
        }
        out
    }

    /// Runs until the program halts or `max_insts` instructions have retired,
    /// invoking `f` for every retired instruction without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the PC leaves the text segment.
    pub fn run_with<F: FnMut(&Retired)>(&mut self, max_insts: u64, mut f: F) -> u64 {
        let mut n = 0;
        while n < max_insts {
            match self.step() {
                Ok(r) => {
                    f(&r);
                    n += 1;
                }
                Err(EmuError::Halted) => break,
                Err(e) => panic!("emulation error: {e}"),
            }
        }
        n
    }
}

fn int_alu(op: Opcode, a: u64, b: u64) -> u64 {
    use Opcode::*;
    match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Sll => a.wrapping_shl((b & 63) as u32),
        Srl => a.wrapping_shr((b & 63) as u32),
        Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        Slt => u64::from((a as i64) < (b as i64)),
        Sltu => u64::from(a < b),
        Mul => a.wrapping_mul(b),
        Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        Div => {
            if b == 0 {
                u64::MAX
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        Rem => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        _ => unreachable!("not an int alu opcode: {op:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_isa::Asm;

    fn x(n: u8) -> ArchReg {
        ArchReg::int(n)
    }
    fn f(n: u8) -> ArchReg {
        ArchReg::fp(n)
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut a = Asm::new();
        a.li(x(1), 21);
        a.add(x(2), x(1), x(1));
        a.mul(x(3), x(2), x(1));
        a.div(x(4), x(3), x(1));
        a.rem(x(5), x(3), x(2));
        a.sub(x(6), x(1), x(2));
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        let retired = emu.run(100);
        assert!(emu.halted());
        assert_eq!(retired.len(), 7);
        assert_eq!(emu.int_reg(x(2)), 42);
        assert_eq!(emu.int_reg(x(3)), 882);
        assert_eq!(emu.int_reg(x(4)), 42);
        assert_eq!(emu.int_reg(x(5)), 0);
        assert_eq!(emu.int_reg(x(6)) as i64, -21);
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut a = Asm::new();
        a.li(x(0), 99);
        a.addi(x(1), x(0), 5);
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        emu.run(10);
        assert_eq!(emu.int_reg(ArchReg::ZERO), 0);
        assert_eq!(emu.int_reg(x(1)), 5);
    }

    #[test]
    fn loads_and_stores_all_widths() {
        let mut a = Asm::new();
        let buf = a.alloc(64, 8);
        a.li(x(1), buf as i64);
        a.li(x(2), -2i64); // 0xff..fe
        a.sb(x(2), x(1), 0);
        a.sh(x(2), x(1), 8);
        a.sw(x(2), x(1), 16);
        a.sd(x(2), x(1), 24);
        a.lb(x(3), x(1), 0);
        a.lbu(x(4), x(1), 0);
        a.lh(x(5), x(1), 8);
        a.lhu(x(6), x(1), 8);
        a.lw(x(7), x(1), 16);
        a.lwu(x(8), x(1), 16);
        a.ld(x(9), x(1), 24);
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        emu.run(100);
        assert_eq!(emu.int_reg(x(3)) as i64, -2);
        assert_eq!(emu.int_reg(x(4)), 0xfe);
        assert_eq!(emu.int_reg(x(5)) as i64, -2);
        assert_eq!(emu.int_reg(x(6)), 0xfffe);
        assert_eq!(emu.int_reg(x(7)) as i64, -2);
        assert_eq!(emu.int_reg(x(8)), 0xffff_fffe);
        assert_eq!(emu.int_reg(x(9)) as i64, -2);
    }

    #[test]
    fn fp_arithmetic_and_memory() {
        let mut a = Asm::new();
        let buf = a.data_f64(&[1.5, 2.5]);
        a.li(x(1), buf as i64);
        a.fld(f(1), x(1), 0);
        a.fld(f(2), x(1), 8);
        a.fadd(f(3), f(1), f(2));
        a.fmul(f(4), f(1), f(2));
        a.fdiv(f(5), f(2), f(1));
        a.fsub(f(6), f(1), f(2));
        a.fsqrt(f(7), f(2));
        a.fneg(f(8), f(1));
        a.fabs(f(9), f(8));
        a.fsd(f(3), x(1), 16);
        a.fld(f(10), x(1), 16);
        a.flt(x(2), f(1), f(2));
        a.feq(x(3), f(1), f(1));
        a.fle(x(4), f(2), f(1));
        a.fcvt_to_int(x(5), f(4));
        a.fcvt_from_int(f(11), x(5));
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        emu.run(100);
        assert_eq!(emu.fp_reg(f(3)), 4.0);
        assert_eq!(emu.fp_reg(f(4)), 3.75);
        assert_eq!(emu.fp_reg(f(5)), 2.5 / 1.5);
        assert_eq!(emu.fp_reg(f(6)), -1.0);
        assert_eq!(emu.fp_reg(f(7)), 2.5f64.sqrt());
        assert_eq!(emu.fp_reg(f(8)), -1.5);
        assert_eq!(emu.fp_reg(f(9)), 1.5);
        assert_eq!(emu.fp_reg(f(10)), 4.0);
        assert_eq!(emu.int_reg(x(2)), 1);
        assert_eq!(emu.int_reg(x(3)), 1);
        assert_eq!(emu.int_reg(x(4)), 0);
        assert_eq!(emu.int_reg(x(5)), 3);
        assert_eq!(emu.fp_reg(f(11)), 3.0);
    }

    #[test]
    fn flw_fsw_round_to_f32() {
        let mut a = Asm::new();
        let buf = a.alloc(16, 8);
        a.li(x(1), buf as i64);
        a.li(x(2), 0);
        a.fcvt_from_int(f(1), x(2));
        a.fld(f(2), x(1), 8); // zero

        // store 1.1 (f64) as f32 then reload
        let c = a.data_f64(&[1.1]);
        a.li(x(3), c as i64);
        a.fld(f(3), x(3), 0);
        a.fsw(f(3), x(1), 0);
        a.flw(f(4), x(1), 0);
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        emu.run(100);
        assert_eq!(emu.fp_reg(f(4)), f64::from(1.1f32));
    }

    #[test]
    fn branches_and_jumps() {
        let mut a = Asm::new();
        a.li(x(1), 0);
        a.li(x(2), 5);
        a.label("loop");
        a.addi(x(1), x(1), 1);
        a.bne(x(1), x(2), "loop");
        a.jal(ArchReg::RA, "sub");
        a.j("end");
        a.label("sub");
        a.addi(x(3), x(0), 77);
        a.jr(ArchReg::RA);
        a.label("end");
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        emu.run(1000);
        assert!(emu.halted());
        assert_eq!(emu.int_reg(x(1)), 5);
        assert_eq!(emu.int_reg(x(3)), 77);
    }

    #[test]
    fn retired_records_contain_memory_and_branch_info() {
        let mut a = Asm::new();
        let buf = a.data_u64(&[7]);
        a.li(x(1), buf as i64);
        a.ld(x(2), x(1), 0);
        a.beq(x(2), x(0), "skip");
        a.addi(x(3), x(0), 1);
        a.label("skip");
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        let rs = emu.run(100);
        let ld = &rs[1];
        assert!(ld.inst.is_load());
        let mem = ld.mem.expect("load access");
        assert_eq!(mem.addr, buf);
        assert_eq!(mem.width, 8);
        assert_eq!(mem.value, 7);
        let br = &rs[2];
        assert!(!br.taken);
        assert_eq!(br.next_pc, br.pc + 4);
    }

    #[test]
    fn step_after_halt_errors() {
        let mut a = Asm::new();
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        assert!(emu.step().is_ok());
        assert_eq!(emu.step(), Err(EmuError::Halted));
    }

    #[test]
    fn invalid_pc_is_reported() {
        let mut a = Asm::new();
        a.nop(); // falls off the end of the text segment
        let mut emu = Emulator::new(&a.finish());
        assert!(emu.step().is_ok());
        assert_eq!(emu.step(), Err(EmuError::InvalidPc(0x1004)));
    }

    #[test]
    fn run_with_counts_without_allocating() {
        let mut a = Asm::new();
        a.li(x(1), 3);
        a.label("l");
        a.addi(x(1), x(1), -1);
        a.bne(x(1), x(0), "l");
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        let mut loads = 0u64;
        let n = emu.run_with(1_000, |r| {
            if r.inst.is_load() {
                loads += 1;
            }
        });
        assert_eq!(n, 8);
        assert_eq!(loads, 0);
        assert_eq!(emu.retired_count(), 8);
    }

    #[test]
    fn step_group_matches_per_instruction_stepping() {
        let build = || {
            let mut a = Asm::new();
            let buf = a.data_u64(&[5, 6, 7, 8]);
            a.li(x(1), buf as i64);
            a.li(x(2), 0);
            a.li(x(3), 4);
            a.label("loop");
            a.ld(x(4), x(1), 0);
            a.add(x(2), x(2), x(4));
            a.addi(x(1), x(1), 8);
            a.addi(x(3), x(3), -1);
            a.bne(x(3), x(0), "loop");
            a.halt();
            a.finish()
        };
        let program = build();
        let mut reference = Emulator::new(&program);
        let expected = reference.run(1_000);

        for stop_on_redirect in [false, true] {
            for group in [1usize, 3, 4, 8] {
                let mut emu = Emulator::new(&program);
                let mut got = Vec::new();
                loop {
                    match emu.step_group(group, stop_on_redirect, &mut got) {
                        Ok(_) => {}
                        Err(EmuError::Halted) => break,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                    if emu.halted() {
                        break;
                    }
                }
                assert_eq!(
                    got, expected,
                    "group={group} stop_on_redirect={stop_on_redirect}"
                );
                assert_eq!(emu.int_reg(x(2)), reference.int_reg(x(2)));
            }
        }
    }

    #[test]
    fn step_group_stops_on_taken_transfers_when_asked() {
        let mut a = Asm::new();
        a.li(x(1), 2);
        a.label("loop");
        a.addi(x(1), x(1), -1);
        a.bne(x(1), x(0), "loop");
        a.halt();
        let program = a.finish();
        let mut emu = Emulator::new(&program);
        let mut out = Vec::new();
        // First group: li, addi, bne (taken) — stops at the redirect.
        let n = emu.step_group(16, true, &mut out).unwrap();
        assert_eq!(n, 3);
        assert!(out[2].taken);
        // Second group runs to the halt and retires it.
        let n = emu.step_group(16, true, &mut out).unwrap();
        assert_eq!(n, 3, "addi, bne (not taken), halt");
        assert!(emu.halted());
        assert_eq!(emu.step_group(16, true, &mut out), Err(EmuError::Halted));
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn step_group_zero_budget_is_a_no_op() {
        let mut a = Asm::new();
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        let mut out = Vec::new();
        assert_eq!(emu.step_group(0, true, &mut out), Ok(0));
        assert!(out.is_empty());
        assert!(!emu.halted());
    }

    #[test]
    fn stack_pointer_initialised() {
        let mut a = Asm::new();
        a.halt();
        let emu = Emulator::new(&a.finish());
        assert_eq!(emu.int_reg(ArchReg::SP), STACK_TOP);
    }
}

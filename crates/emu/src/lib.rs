//! Functional emulator for the SDV ISA.
//!
//! The timing model in `sdv-uarch` is *execution driven*: at fetch time it
//! asks this emulator for the next dynamic instruction on the correct path,
//! together with everything the timing model needs to know about it (effective
//! address, branch outcome, next PC).  The emulator is also used on its own to
//! collect ISA-level statistics such as the stride distribution of Figure 1.
//!
//! ```
//! use sdv_emu::Emulator;
//! use sdv_isa::{ArchReg, Asm};
//!
//! let mut a = Asm::new();
//! let xs = a.data_u64(&[5, 10, 15]);
//! let (p, acc, x, n) = (ArchReg::int(1), ArchReg::int(2), ArchReg::int(3), ArchReg::int(4));
//! a.li(p, xs as i64);
//! a.li(acc, 0);
//! a.li(n, 3);
//! a.label("l");
//! a.ld(x, p, 0);
//! a.add(acc, acc, x);
//! a.addi(p, p, 8);
//! a.addi(n, n, -1);
//! a.bne(n, ArchReg::ZERO, "l");
//! a.halt();
//!
//! let mut emu = Emulator::new(&a.finish());
//! let retired = emu.run(1_000);
//! assert!(emu.halted());
//! assert_eq!(emu.int_reg(acc), 30);
//! assert_eq!(retired.len() as u64, emu.retired_count());
//! ```

pub mod cpu;
pub mod memory;
pub mod trace;

pub use cpu::{EmuError, Emulator};
pub use memory::SparseMemory;
pub use trace::{MemAccess, Retired, StrideProfiler, StrideStats};

//! Dynamic-instruction records and ISA-level profiling.

use sdv_isa::Inst;
use std::collections::HashMap;

/// A memory access performed by a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective (virtual = physical) address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u64,
    /// Whether the access is a store.
    pub is_store: bool,
    /// The value loaded or stored (zero-extended bit pattern).
    pub value: u64,
}

/// One retired (architecturally executed) dynamic instruction.
///
/// This is the record the execution-driven timing model consumes: it contains
/// the resolved effective address, the branch outcome and the architectural
/// next PC, i.e. everything that in real hardware would only be known after
/// execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retired {
    /// Position in the dynamic instruction stream (0-based).
    pub seq: u64,
    /// PC of this instruction.
    pub pc: u64,
    /// The static instruction.
    pub inst: Inst,
    /// PC of the next instruction on the correct path.
    pub next_pc: u64,
    /// For control instructions: whether the transfer was taken.
    pub taken: bool,
    /// Memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// Bit pattern of the first source operand value (0 when absent).
    pub src1_value: u64,
    /// Bit pattern of the second source operand value (0 when absent).
    pub src2_value: u64,
    /// Bit pattern of the value written to the destination (0 when absent).
    pub dst_value: u64,
}

impl Retired {
    /// Whether this instruction is a backward control transfer that was taken
    /// (the loop-closing condition used for the GMRBB register of §3.3).
    #[must_use]
    pub fn is_taken_backward_branch(&self) -> bool {
        self.inst.is_control() && self.taken && self.next_pc <= self.pc
    }
}

/// Aggregate stride statistics, the data behind Figure 1.
///
/// Strides are expressed in *elements* (the address delta divided by the
/// access size), exactly as in the paper.  Dynamic load instances whose delta
/// is not a multiple of the access size, is negative, or exceeds 9 elements
/// are grouped in [`StrideStats::other`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrideStats {
    /// `counts[s]` = number of dynamic loads whose stride was exactly `s` elements.
    pub counts: [u64; 10],
    /// Dynamic loads with a stride outside `0..=9` elements (incl. negative or unaligned).
    pub other: u64,
    /// Dynamic loads for which a stride was defined (2nd and later instances).
    pub total: u64,
}

impl StrideStats {
    /// Fraction of strided loads with stride `s` (in elements).
    #[must_use]
    pub fn fraction(&self, s: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[s] as f64 / self.total as f64
        }
    }

    /// Fraction of loads whose stride is strictly below `elems` elements —
    /// the "can be served by a single wide-bus access" statistic quoted in §2
    /// (97.9 % for SpecInt95 and 81.3 % for SpecFP95 with 4-element lines).
    #[must_use]
    pub fn fraction_below(&self, elems: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n: u64 = self.counts.iter().take(elems).sum();
        n as f64 / self.total as f64
    }

    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: &StrideStats) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.other += other.other;
        self.total += other.total;
    }
}

/// Per-static-load stride profiler (the measurement behind Figure 1).
///
/// ```
/// use sdv_emu::StrideProfiler;
///
/// let mut p = StrideProfiler::new();
/// for i in 0..10u64 {
///     p.observe(0x1000, 0x8000 + i * 8, 8); // stride 1 element
/// }
/// let stats = p.stats();
/// assert_eq!(stats.counts[1], 9);
/// assert_eq!(stats.total, 9);
/// ```
#[derive(Debug, Default, Clone)]
pub struct StrideProfiler {
    last: HashMap<u64, u64>,
    stats: StrideStats,
}

impl StrideProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        StrideProfiler::default()
    }

    /// Records one dynamic load: static load at `pc` touched `addr` with an
    /// access of `width` bytes.
    pub fn observe(&mut self, pc: u64, addr: u64, width: u64) {
        if let Some(prev) = self.last.insert(pc, addr) {
            self.stats.total += 1;
            let delta = addr.wrapping_sub(prev) as i64;
            if delta >= 0 && width > 0 && delta % width as i64 == 0 {
                let elems = delta / width as i64;
                if (0..10).contains(&elems) {
                    self.stats.counts[elems as usize] += 1;
                } else {
                    self.stats.other += 1;
                }
            } else {
                self.stats.other += 1;
            }
        }
    }

    /// Records the memory access of a retired instruction if it is a load.
    pub fn observe_retired(&mut self, r: &Retired) {
        if r.inst.is_load() {
            if let Some(mem) = r.mem {
                self.observe(r.pc, mem.addr, mem.width);
            }
        }
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &StrideStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_isa::{ArchReg, Opcode};

    #[test]
    fn stride_zero_and_positive() {
        let mut p = StrideProfiler::new();
        // Three accesses to the same address -> stride 0 twice.
        for _ in 0..3 {
            p.observe(0x2000, 0x9000, 8);
        }
        // Stride 2 elements of a 4-byte access.
        for i in 0..4u64 {
            p.observe(0x2004, 0xa000 + i * 8, 4);
        }
        let s = p.stats();
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[2], 3);
        assert_eq!(s.total, 5);
        assert_eq!(s.other, 0);
    }

    #[test]
    fn irregular_strides_fall_into_other() {
        let mut p = StrideProfiler::new();
        p.observe(0x1, 1000, 8);
        p.observe(0x1, 900, 8); // negative
        p.observe(0x1, 903, 8); // unaligned delta
        p.observe(0x1, 903 + 8 * 200, 8); // too large
        let s = p.stats();
        assert_eq!(s.other, 3);
        assert_eq!(s.total, 3);
    }

    #[test]
    fn fractions_and_merge() {
        let mut a = StrideProfiler::new();
        for i in 0..11u64 {
            a.observe(0x10, 0x100 + i * 8, 8);
        }
        let mut b = StrideProfiler::new();
        for _ in 0..11u64 {
            b.observe(0x20, 0x100, 8);
        }
        let mut merged = a.stats().clone();
        merged.merge(b.stats());
        assert_eq!(merged.total, 20);
        assert!((merged.fraction(1) - 0.5).abs() < 1e-12);
        assert!((merged.fraction(0) - 0.5).abs() < 1e-12);
        assert!((merged.fraction_below(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn backward_branch_detection() {
        let inst = Inst::branch(Opcode::Bne, ArchReg::int(1), ArchReg::ZERO, 0x1000);
        let mk = |pc, next_pc, taken| Retired {
            seq: 0,
            pc,
            inst,
            next_pc,
            taken,
            mem: None,
            src1_value: 0,
            src2_value: 0,
            dst_value: 0,
        };
        assert!(mk(0x1040, 0x1000, true).is_taken_backward_branch());
        assert!(!mk(0x1040, 0x1044, false).is_taken_backward_branch());
        assert!(!mk(0x1000, 0x1044, true).is_taken_backward_branch());
    }

    #[test]
    fn empty_stats_have_zero_fractions() {
        let s = StrideStats::default();
        assert_eq!(s.fraction(0), 0.0);
        assert_eq!(s.fraction_below(4), 0.0);
    }
}

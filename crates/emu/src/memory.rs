//! Sparse byte-addressable memory.
//!
//! The load/store fast path of the emulator resolves every access through this
//! structure, so it is organised as a flat two-level page table instead of a
//! hash map: a sorted directory of *chunks* (binary-searched, one entry per
//! 4 MB region actually touched) pointing at dense arrays of lazily allocated
//! 4 KB pages.  A one-entry translation cache short-circuits the directory
//! search for the overwhelmingly common case of consecutive accesses hitting
//! the same page, and aligned multi-byte accesses that stay inside one page
//! are served with a single slice copy instead of per-byte lookups.

use std::cell::Cell;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Pages per chunk (second translation level): each chunk covers 4 MB.
const CHUNK_BITS: u32 = 10;
const CHUNK_PAGES: usize = 1 << CHUNK_BITS;
const CHUNK_MASK: u64 = (CHUNK_PAGES as u64) - 1;

type Page = Box<[u8; PAGE_SIZE]>;

/// One 4 MB region of the address space: a dense array of optional pages.
#[derive(Debug, Clone)]
struct Chunk {
    /// Chunk index: `page_index >> CHUNK_BITS`.
    index: u64,
    pages: Box<[Option<Page>]>,
}

impl Chunk {
    fn new(index: u64) -> Self {
        Chunk {
            index,
            pages: vec![None; CHUNK_PAGES].into_boxed_slice(),
        }
    }
}

/// A sparse, byte-addressable 64-bit memory.
///
/// Pages are allocated lazily on first touch; untouched memory reads as zero.
/// All multi-byte accesses are little-endian and may straddle page boundaries.
///
/// ```
/// use sdv_emu::SparseMemory;
///
/// let mut m = SparseMemory::new();
/// m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef_cafe_f00d);
/// assert_eq!(m.read_u32(0x1004), 0xdead_beef);
/// assert_eq!(m.read_u8(0x2000), 0, "untouched memory reads as zero");
/// ```
#[derive(Debug, Clone)]
pub struct SparseMemory {
    /// Chunk directory, sorted by chunk index.
    chunks: Vec<Chunk>,
    /// Last successful translation: `(chunk_index, position in chunks)`.
    /// Positions only grow stale on insertion, which revalidates the cache.
    last: Cell<(u64, usize)>,
    page_count: usize,
}

impl Default for SparseMemory {
    fn default() -> Self {
        SparseMemory {
            chunks: Vec::new(),
            last: Cell::new((u64::MAX, 0)),
            page_count: 0,
        }
    }
}

impl SparseMemory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        SparseMemory::default()
    }

    /// Number of pages that have been touched.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.page_count
    }

    /// Position of the chunk for `chunk_index` in the directory, if present.
    /// Checks the translation cache before binary-searching.
    fn chunk_pos(&self, chunk_index: u64) -> Option<usize> {
        let (cached_index, cached_pos) = self.last.get();
        if cached_index == chunk_index {
            return Some(cached_pos);
        }
        let pos = self
            .chunks
            .binary_search_by_key(&chunk_index, |c| c.index)
            .ok()?;
        self.last.set((chunk_index, pos));
        Some(pos)
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        let page_index = addr >> PAGE_BITS;
        let pos = self.chunk_pos(page_index >> CHUNK_BITS)?;
        self.chunks[pos].pages[(page_index & CHUNK_MASK) as usize].as_deref()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        let page_index = addr >> PAGE_BITS;
        let chunk_index = page_index >> CHUNK_BITS;
        let pos = match self.chunk_pos(chunk_index) {
            Some(pos) => pos,
            None => {
                let pos = self
                    .chunks
                    .binary_search_by_key(&chunk_index, |c| c.index)
                    .unwrap_err();
                self.chunks.insert(pos, Chunk::new(chunk_index));
                self.last.set((chunk_index, pos));
                pos
            }
        };
        let slot = &mut self.chunks[pos].pages[(page_index & CHUNK_MASK) as usize];
        if slot.is_none() {
            *slot = Some(Box::new([0u8; PAGE_SIZE]));
            self.page_count += 1;
        }
        slot.as_deref_mut().expect("page allocated above")
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr & PAGE_MASK) as usize])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        let offset = (addr & PAGE_MASK) as usize;
        if offset + N <= PAGE_SIZE {
            // Fast path: the whole access lives inside one page.
            if let Some(page) = self.page(addr) {
                out.copy_from_slice(&page[offset..offset + N]);
            }
            return out;
        }
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    /// Writes `N` little-endian bytes starting at `addr`.
    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let offset = (addr & PAGE_MASK) as usize;
        if offset + bytes.len() <= PAGE_SIZE {
            let page = self.page_mut(addr);
            page[offset..offset + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads a little-endian `u16`.
    #[must_use]
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an `f64` stored as its IEEE-754 bit pattern.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Reads a value of `width` bytes (1, 2, 4 or 8), zero-extended to 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn read_uint(&self, addr: u64, width: u64) -> u64 {
        match width {
            1 => u64::from(self.read_u8(addr)),
            2 => u64::from(self.read_u16(addr)),
            4 => u64::from(self.read_u32(addr)),
            8 => self.read_u64(addr),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// Writes the low `width` bytes (1, 2, 4 or 8) of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: u64, width: u64, value: u64) {
        match width {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16),
            4 => self.write_u32(addr, value as u32),
            8 => self.write_u64(addr, value),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn load_bytes(&mut self, addr: u64, bytes: &[u8]) {
        // Split on page boundaries so each page is resolved once.
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let offset = (addr & PAGE_MASK) as usize;
            let span = (PAGE_SIZE - offset).min(rest.len());
            let page = self.page_mut(addr);
            page[offset..offset + span].copy_from_slice(&rest[..span]);
            addr = addr.wrapping_add(span as u64);
            rest = &rest[span..];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX - 8), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn read_write_round_trip_all_widths() {
        let mut m = SparseMemory::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xbeef);
        m.write_u32(30, 0xdead_beef);
        m.write_u64(40, 0x0123_4567_89ab_cdef);
        m.write_f64(50, -1234.5678);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xbeef);
        assert_eq!(m.read_u32(30), 0xdead_beef);
        assert_eq!(m.read_u64(40), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_f64(50), -1234.5678);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMemory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x101), 2);
        assert_eq!(m.read_u8(0x102), 3);
        assert_eq!(m.read_u8(0x103), 4);
    }

    #[test]
    fn accesses_straddle_page_boundaries() {
        let mut m = SparseMemory::new();
        let addr = (1 << 12) - 3; // crosses into the second page
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn accesses_straddle_chunk_boundaries() {
        let mut m = SparseMemory::new();
        // Last page of chunk 0 into first page of chunk 1.
        let addr = (CHUNK_PAGES as u64) * (PAGE_SIZE as u64) - 4;
        m.write_u64(addr, 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.read_u64(addr), 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn far_apart_regions_use_separate_chunks() {
        let mut m = SparseMemory::new();
        // Touch regions in non-sorted order to exercise directory insertion.
        m.write_u64(0x7000_0000_0000, 3);
        m.write_u64(0x1000, 1);
        m.write_u64(0x1_0000_0000, 2);
        assert_eq!(m.read_u64(0x1000), 1);
        assert_eq!(m.read_u64(0x1_0000_0000), 2);
        assert_eq!(m.read_u64(0x7000_0000_0000), 3);
        assert_eq!(m.page_count(), 3);
    }

    #[test]
    fn generic_width_accessors() {
        let mut m = SparseMemory::new();
        for width in [1u64, 2, 4, 8] {
            let value = 0xf0f0_f0f0_f0f0_f0f0u64;
            m.write_uint(width * 100, width, value);
            let mask = if width == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * width)) - 1
            };
            assert_eq!(m.read_uint(width * 100, width), value & mask);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported access width")]
    fn bad_width_panics() {
        let m = SparseMemory::new();
        let _ = m.read_uint(0, 3);
    }

    #[test]
    fn load_bytes_bulk() {
        let mut m = SparseMemory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.load_bytes(0x5000, &data);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(m.read_u8(0x5000 + i as u64), b);
        }
    }

    #[test]
    fn load_bytes_across_pages() {
        let mut m = SparseMemory::new();
        let data: Vec<u8> = (0..PAGE_SIZE + 64).map(|i| (i % 251) as u8).collect();
        let base = (PAGE_SIZE as u64) - 32;
        m.load_bytes(base, &data);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(m.read_u8(base + i as u64), b, "byte {i}");
        }
        assert_eq!(m.page_count(), 3);
    }
}

//! Sparse byte-addressable memory.

use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse, byte-addressable 64-bit memory.
///
/// Pages are allocated lazily on first touch; untouched memory reads as zero.
/// All multi-byte accesses are little-endian and may straddle page boundaries.
///
/// ```
/// use sdv_emu::SparseMemory;
///
/// let mut m = SparseMemory::new();
/// m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef_cafe_f00d);
/// assert_eq!(m.read_u32(0x1004), 0xdead_beef);
/// assert_eq!(m.read_u8(0x2000), 0, "untouched memory reads as zero");
/// ```
#[derive(Debug, Default, Clone)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        SparseMemory::default()
    }

    /// Number of pages that have been touched.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr & PAGE_MASK) as usize])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.read_u8(addr + i as u64);
        }
        out
    }

    /// Writes `N` little-endian bytes starting at `addr`.
    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads a little-endian `u16`.
    #[must_use]
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an `f64` stored as its IEEE-754 bit pattern.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Reads a value of `width` bytes (1, 2, 4 or 8), zero-extended to 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn read_uint(&self, addr: u64, width: u64) -> u64 {
        match width {
            1 => u64::from(self.read_u8(addr)),
            2 => u64::from(self.read_u16(addr)),
            4 => u64::from(self.read_u32(addr)),
            8 => self.read_u64(addr),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// Writes the low `width` bytes (1, 2, 4 or 8) of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: u64, width: u64, value: u64) {
        match width {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16),
            4 => self.write_u32(addr, value as u32),
            8 => self.write_u64(addr, value),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn load_bytes(&mut self, addr: u64, bytes: &[u8]) {
        self.write_bytes(addr, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX - 8), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn read_write_round_trip_all_widths() {
        let mut m = SparseMemory::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xbeef);
        m.write_u32(30, 0xdead_beef);
        m.write_u64(40, 0x0123_4567_89ab_cdef);
        m.write_f64(50, -1234.5678);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xbeef);
        assert_eq!(m.read_u32(30), 0xdead_beef);
        assert_eq!(m.read_u64(40), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_f64(50), -1234.5678);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMemory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x101), 2);
        assert_eq!(m.read_u8(0x102), 3);
        assert_eq!(m.read_u8(0x103), 4);
    }

    #[test]
    fn accesses_straddle_page_boundaries() {
        let mut m = SparseMemory::new();
        let addr = (1 << 12) - 3; // crosses into the second page
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn generic_width_accessors() {
        let mut m = SparseMemory::new();
        for width in [1u64, 2, 4, 8] {
            let value = 0xf0f0_f0f0_f0f0_f0f0u64;
            m.write_uint(width * 100, width, value);
            let mask = if width == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * width)) - 1
            };
            assert_eq!(m.read_uint(width * 100, width), value & mask);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported access width")]
    fn bad_width_panics() {
        let m = SparseMemory::new();
        let _ = m.read_uint(0, 3);
    }

    #[test]
    fn load_bytes_bulk() {
        let mut m = SparseMemory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.load_bytes(0x5000, &data);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(m.read_u8(0x5000 + i as u64), b);
        }
    }
}

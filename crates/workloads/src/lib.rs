//! Synthetic SPEC95-analogue workloads.
//!
//! The paper evaluates on SpecInt95 plus four SpecFP95 programs compiled for
//! Alpha.  Those binaries (and an Alpha front end) are not reproducible here,
//! so this crate provides one synthetic kernel per benchmark, written in the
//! SDV ISA, that mimics the *dynamic properties the mechanism cares about*:
//! the stride distribution of its loads (Figure 1), the fraction of
//! vectorizable work (Figure 3), pointer-chasing vs. array traversal, branch
//! predictability and integer/FP mix.  `DESIGN.md` records this substitution.
//!
//! Every kernel is exposed through [`Workload`]:
//!
//! ```
//! use sdv_workloads::Workload;
//!
//! let program = Workload::Swim.build(2);
//! assert!(program.len() > 20);
//! assert!(Workload::Swim.is_fp());
//! assert_eq!(Workload::spec_int().len(), 8);
//! assert_eq!(Workload::spec_fp().len(), 4);
//! ```
//!
//! The `scale` argument controls how many outer iterations a kernel runs; the
//! simulation harness additionally caps the number of simulated instructions,
//! so kernels are typically built with a scale large enough to keep the
//! pipeline busy for the whole measurement.

pub mod kernels;

use sdv_isa::Program;

/// The benchmarks evaluated in the paper (all of SpecInt95 and the four
/// SpecFP95 programs it uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// `go`: game-tree evaluation over board arrays, hard-to-predict branches.
    Go,
    /// `m88ksim`: CPU simulator main loop, table look-ups, stride-0 locals.
    M88ksim,
    /// `gcc`: irregular traversal of variable-sized records, many branches.
    Gcc,
    /// `compress`: byte-stream compression, stride-1 bytes plus hash probing.
    Compress,
    /// `li`: lisp interpreter, cons-cell pointer chasing.
    Li,
    /// `ijpeg`: 8×8 block transforms, stride-1 rows and stride-8 columns.
    Ijpeg,
    /// `perl`: string scanning and hash-table manipulation.
    Perl,
    /// `vortex`: object database, record copies between stores.
    Vortex,
    /// `swim`: shallow-water 2-D stencil, stride-1 FP.
    Swim,
    /// `applu`: blocked SSOR solver, mixed strides FP.
    Applu,
    /// `turb3d`: 3-D FFT-style butterflies, power-of-two strides.
    Turb3d,
    /// `fpppp`: huge FP basic blocks with stride-0 spill traffic.
    Fpppp,
    /// `listchase`: two interleaved pointer-chasing linked lists (post-paper
    /// stress kernel; not part of the SPEC95-analogue suite of the figures).
    ListChase,
    /// `matblock`: blocked dense matrix multiply (post-paper FP kernel; not
    /// part of the SPEC95-analogue suite of the figures).
    MatBlock,
    /// `stridemix`: alternating unit-stride and large-stride streams
    /// (post-paper mixed-stride kernel; not part of the SPEC95-analogue
    /// suite of the figures).
    StrideMix,
    /// `histo`: data-dependent irregular histogram updates (post-paper
    /// irregular-update kernel; not part of the SPEC95-analogue suite of the
    /// figures).
    Histo,
}

impl Workload {
    /// Every workload, SpecInt first, in the order the paper's figures use.
    #[must_use]
    pub fn all() -> [Workload; 12] {
        [
            Workload::Go,
            Workload::M88ksim,
            Workload::Gcc,
            Workload::Compress,
            Workload::Li,
            Workload::Ijpeg,
            Workload::Perl,
            Workload::Vortex,
            Workload::Swim,
            Workload::Applu,
            Workload::Turb3d,
            Workload::Fpppp,
        ]
    }

    /// The paper suite plus the post-paper kernels (`listchase`,
    /// `stridemix`, `histo`, `matblock`).  [`Workload::all`] stays the exact
    /// figure suite so the paper's numbers are untouched; sweeps and
    /// `repro --extended` use this superset.
    #[must_use]
    pub fn extended() -> [Workload; 16] {
        [
            Workload::Go,
            Workload::M88ksim,
            Workload::Gcc,
            Workload::Compress,
            Workload::Li,
            Workload::Ijpeg,
            Workload::Perl,
            Workload::Vortex,
            Workload::ListChase,
            Workload::StrideMix,
            Workload::Histo,
            Workload::Swim,
            Workload::Applu,
            Workload::Turb3d,
            Workload::Fpppp,
            Workload::MatBlock,
        ]
    }

    /// The eight SpecInt95 analogues.
    #[must_use]
    pub fn spec_int() -> [Workload; 8] {
        [
            Workload::Go,
            Workload::M88ksim,
            Workload::Gcc,
            Workload::Compress,
            Workload::Li,
            Workload::Ijpeg,
            Workload::Perl,
            Workload::Vortex,
        ]
    }

    /// The four SpecFP95 analogues used by the paper.
    #[must_use]
    pub fn spec_fp() -> [Workload; 4] {
        [
            Workload::Swim,
            Workload::Applu,
            Workload::Turb3d,
            Workload::Fpppp,
        ]
    }

    /// The benchmark's name as it appears on the paper's x-axes.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Go => "go",
            Workload::M88ksim => "m88ksim",
            Workload::Gcc => "gcc",
            Workload::Compress => "compress",
            Workload::Li => "li",
            Workload::Ijpeg => "ijpeg",
            Workload::Perl => "perl",
            Workload::Vortex => "vortex",
            Workload::Swim => "swim",
            Workload::Applu => "applu",
            Workload::Turb3d => "turb3d",
            Workload::Fpppp => "fpppp",
            Workload::ListChase => "listchase",
            Workload::MatBlock => "matblock",
            Workload::StrideMix => "stridemix",
            Workload::Histo => "histo",
        }
    }

    /// Whether this is one of the floating-point benchmarks.
    #[must_use]
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Workload::Swim
                | Workload::Applu
                | Workload::Turb3d
                | Workload::Fpppp
                | Workload::MatBlock
        )
    }

    /// Builds the kernel with `scale` outer iterations.
    #[must_use]
    pub fn build(&self, scale: u64) -> Program {
        match self {
            Workload::Go => kernels::go::build(scale),
            Workload::M88ksim => kernels::m88ksim::build(scale),
            Workload::Gcc => kernels::gcc::build(scale),
            Workload::Compress => kernels::compress::build(scale),
            Workload::Li => kernels::li::build(scale),
            Workload::Ijpeg => kernels::ijpeg::build(scale),
            Workload::Perl => kernels::perl::build(scale),
            Workload::Vortex => kernels::vortex::build(scale),
            Workload::Swim => kernels::swim::build(scale),
            Workload::Applu => kernels::applu::build(scale),
            Workload::Turb3d => kernels::turb3d::build(scale),
            Workload::Fpppp => kernels::fpppp::build(scale),
            Workload::ListChase => kernels::listchase::build(scale),
            Workload::MatBlock => kernels::matblock::build(scale),
            Workload::StrideMix => kernels::stridemix::build(scale),
            Workload::Histo => kernels::histo::build(scale),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn every_workload_builds_and_terminates() {
        for w in Workload::all() {
            let program = w.build(1);
            assert!(!program.is_empty(), "{w} is empty");
            let mut emu = Emulator::new(&program);
            emu.run(5_000_000);
            assert!(emu.halted(), "{w} did not halt at scale 1");
            assert!(
                emu.retired_count() > 100,
                "{w} retired too few instructions"
            );
        }
    }

    #[test]
    fn scale_controls_dynamic_length() {
        for w in [Workload::Compress, Workload::Swim, Workload::Go] {
            let mut short = Emulator::new(&w.build(1));
            let mut long = Emulator::new(&w.build(3));
            short.run(10_000_000);
            long.run(10_000_000);
            assert!(
                long.retired_count() > short.retired_count(),
                "{w}: scale should increase dynamic instruction count"
            );
        }
    }

    #[test]
    fn classes_and_names_are_consistent() {
        assert_eq!(Workload::all().len(), 12);
        let ints = Workload::spec_int();
        let fps = Workload::spec_fp();
        assert!(ints.iter().all(|w| !w.is_fp()));
        assert!(fps.iter().all(|w| w.is_fp()));
        let mut names: Vec<&str> = Workload::all().iter().map(Workload::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12, "names are unique");
        assert_eq!(Workload::Go.to_string(), "go");
    }

    #[test]
    fn extended_suite_adds_the_post_paper_kernels() {
        let extended = Workload::extended();
        assert_eq!(extended.len(), 16);
        for w in Workload::all() {
            assert!(extended.contains(&w), "{w} is part of the extended suite");
        }
        let post_paper = [
            Workload::ListChase,
            Workload::MatBlock,
            Workload::StrideMix,
            Workload::Histo,
        ];
        for w in post_paper {
            assert!(extended.contains(&w), "{w} is in the extended suite");
            assert!(
                !Workload::all().contains(&w),
                "the paper suite is untouched by {w}"
            );
        }
        assert!(!Workload::ListChase.is_fp());
        assert!(Workload::MatBlock.is_fp());
        assert!(!Workload::StrideMix.is_fp());
        assert!(!Workload::Histo.is_fp());
        let mut names: Vec<&str> = extended.iter().map(Workload::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16, "extended names are unique");
        // The new kernels build and terminate like every other workload.
        for w in post_paper {
            let mut emu = sdv_emu::Emulator::new(&w.build(1));
            emu.run(10_000_000);
            assert!(emu.halted(), "{w} halts");
            assert!(emu.retired_count() > 1_000, "{w} does real work");
        }
    }

    #[test]
    fn fp_workloads_execute_fp_instructions() {
        use sdv_isa::OpClass;
        for w in Workload::spec_fp() {
            let program = w.build(1);
            let mut emu = Emulator::new(&program);
            let mut fp_ops = 0u64;
            emu.run_with(2_000_000, |r| {
                if matches!(
                    r.inst.op.class(),
                    OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv
                ) {
                    fp_ops += 1;
                }
            });
            assert!(
                fp_ops > 50,
                "{w} should execute floating point work, got {fp_ops}"
            );
        }
    }

    #[test]
    fn int_workloads_have_strided_and_irregular_mix() {
        use sdv_emu::StrideProfiler;
        // The motivation of §2: strided loads are common even in integer code,
        // with stride 0 the most frequent bucket overall.
        let mut profiler = StrideProfiler::new();
        for w in Workload::spec_int() {
            let mut emu = Emulator::new(&w.build(1));
            emu.run_with(500_000, |r| profiler.observe_retired(r));
        }
        let stats = profiler.stats().clone();
        assert!(stats.total > 1_000);
        assert!(
            stats.fraction_below(4) > 0.45,
            "most loads should have small strides"
        );
        assert!(stats.fraction(0) > 0.15, "stride 0 should be prominent");
    }
}

//! `perl` analogue: string scanning plus associative-array updates.
//!
//! The Perl interpreter alternates between scanning strings byte by byte
//! (stride-1 loads) and hashing identifiers into associative arrays (irregular
//! loads and stores), with moderately predictable branches on character
//! classes.

use super::util::x;
use sdv_isa::{ArchReg, Asm, Program};

const TEXT_BYTES: usize = 8192;
const BUCKETS: usize = 1024;

/// Builds the kernel with `scale` passes over the text.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    // Text drawn from a small alphabet so word boundaries (spaces) recur.
    let text: Vec<u8> = super::util::random_bytes(0x9e, TEXT_BYTES)
        .iter()
        .map(|b| b'a' + (b % 17))
        .collect();
    let text_addr = a.data_bytes(&text, 8);
    let hash_table = a.alloc(BUCKETS * 8, 8);

    let (outer, ptr, n, ch, hash, idx, val, words) =
        (x(1), x(2), x(3), x(4), x(5), x(6), x(7), x(8));
    let (table_base, space) = (x(20), x(21));
    a.li(table_base, hash_table as i64);
    a.li(space, i64::from(b'a' + 3)); // an arbitrary "separator" character
    a.li(outer, scale.max(1) as i64);
    a.li(words, 0);
    a.label("outer");
    a.li(ptr, text_addr as i64);
    a.li(n, TEXT_BYTES as i64);
    a.li(hash, 0);
    a.label("scan");
    a.lbu(ch, ptr, 0);
    a.beq(ch, space, "word_end");
    // hash = hash * 33 + ch
    a.slli(idx, hash, 5);
    a.add(hash, idx, hash);
    a.add(hash, hash, ch);
    a.j("advance");
    a.label("word_end");
    // Commit the identifier into the associative array.
    a.andi(idx, hash, (BUCKETS - 1) as i64);
    a.slli(idx, idx, 3);
    a.add(idx, idx, table_base);
    a.ld(val, idx, 0);
    a.addi(val, val, 1);
    a.sd(val, idx, 0);
    a.addi(words, words, 1);
    a.li(hash, 0);
    a.label("advance");
    a.addi(ptr, ptr, 1);
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "scan");
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "outer");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    fn separator_count() -> u64 {
        let text: Vec<u8> = super::super::util::random_bytes(0x9e, TEXT_BYTES)
            .iter()
            .map(|b| b'a' + (b % 17))
            .collect();
        text.iter().filter(|&&c| c == b'a' + 3).count() as u64
    }

    #[test]
    fn counts_words_deterministically() {
        let mut emu = Emulator::new(&build(1));
        emu.run(5_000_000);
        assert!(emu.halted());
        assert_eq!(
            emu.int_reg(x(8)),
            separator_count(),
            "one bucket update per separator"
        );
    }

    #[test]
    fn rescanning_doubles_the_work() {
        let mut one = Emulator::new(&build(1));
        let mut two = Emulator::new(&build(2));
        one.run(20_000_000);
        two.run(20_000_000);
        assert!(two.retired_count() > one.retired_count() * 3 / 2);
    }
}

//! `fpppp` analogue: enormous straight-line FP blocks with spill traffic.
//!
//! `fpppp` is dominated by a few gigantic basic blocks of floating-point
//! arithmetic whose register pressure forces the compiler to spill: the same
//! stack slots are stored and reloaded over and over, which is where the
//! paper's stride-0 FP accesses come from.  The kernel generates a long
//! unrolled FP block operating on a small working set plus explicit
//! spill/reload traffic to fixed slots.

use super::util::{f, x};
use sdv_isa::{ArchReg, Asm, Program};

const LOCALS: usize = 24;
const BLOCK_OPS: usize = 160;

/// Builds the kernel with `scale * 64` executions of the big block.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let locals = a.data_f64(&super::util::random_f64s(0xf9, LOCALS));
    let spill = a.alloc(8 * 8, 8);

    let (outer, tmp) = (x(1), x(2));
    let (locals_base, spill_base) = (x(20), x(21));
    a.li(locals_base, locals as i64);
    a.li(spill_base, spill as i64);
    a.li(outer, (scale.max(1) * 64) as i64);
    a.label("block");
    // Load a handful of locals (small-stride FP loads).
    for i in 0..6u8 {
        a.fld(f(1 + i), locals_base, i64::from(i) * 8);
    }
    // A long dependence-mixed sequence of FP operations with periodic spills
    // and reloads of intermediate values to the same stack slots (stride 0).
    let mut which = 0u8;
    for op in 0..BLOCK_OPS {
        let dst = f(1 + (op % 6) as u8);
        let s1 = f(1 + ((op + 1) % 6) as u8);
        let s2 = f(1 + ((op + 3) % 6) as u8);
        match op % 4 {
            0 => a.fadd(dst, s1, s2),
            1 => a.fmul(dst, s1, s2),
            2 => a.fsub(dst, s1, s2),
            _ => a.fmax(dst, s1, s2),
        }
        if op % 10 == 9 {
            // Spill one value and reload another from the same slots.
            a.fsd(dst, spill_base, i64::from(which % 8) * 8);
            a.fld(s1, spill_base, i64::from(which % 8) * 8);
            which = which.wrapping_add(1);
        }
    }
    // Store the block result back to the locals (keeps the data live).
    a.fsd(f(1), locals_base, 0);
    a.fsd(f(2), locals_base, 8);
    a.li(tmp, 0);
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "block");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;
    use sdv_isa::OpClass;

    #[test]
    fn block_is_fp_dominated() {
        let mut emu = Emulator::new(&build(1));
        let mut fp = 0u64;
        let mut total = 0u64;
        emu.run_with(2_000_000, |r| {
            total += 1;
            if matches!(
                r.inst.op.class(),
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv
            ) {
                fp += 1;
            }
        });
        assert!(emu.halted());
        assert!(
            fp * 2 > total,
            "more than half of the work is FP ({fp}/{total})"
        );
    }

    #[test]
    fn spill_slots_are_stride_zero() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(500_000, |r| p.observe_retired(r));
        assert!(
            p.stats().fraction(0) > 0.5,
            "stride-0 share {}",
            p.stats().fraction(0)
        );
    }

    #[test]
    fn program_is_large_but_terminates() {
        let program = build(1);
        assert!(program.len() > BLOCK_OPS, "the block is genuinely unrolled");
        let mut emu = Emulator::new(&program);
        emu.run(5_000_000);
        assert!(emu.halted());
    }
}

//! `compress` analogue: byte-stream hashing with table probes.
//!
//! SPEC `compress` reads its input a byte at a time (stride-1 byte loads),
//! hashes prefixes and probes a code table whose index depends on the hash
//! (irregular accesses with poor locality).  Both behaviours are reproduced
//! here, which is also why — as in the paper's Figure 13 — this kernel is the
//! least friendly to wide buses.

use super::util::x;
use sdv_isa::{ArchReg, Asm, Program};

const INPUT_BYTES: usize = 16 * 1024;
const TABLE_ENTRIES: usize = 4096;

/// Builds the kernel with `scale` passes over the input stream.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let input = a.data_bytes(&super::util::random_bytes(0xc0, INPUT_BYTES), 8);
    let table = a.alloc(TABLE_ENTRIES * 8, 8);

    let (outer, ptr, n, byte, hash, idx, probe, hits) =
        (x(1), x(2), x(3), x(4), x(5), x(6), x(7), x(8));
    let table_base = x(20);
    a.li(table_base, table as i64);
    a.li(outer, scale.max(1) as i64);
    a.li(hits, 0);
    a.label("outer");
    a.li(ptr, input as i64);
    a.li(n, INPUT_BYTES as i64);
    a.li(hash, 0);
    a.label("byte");
    a.lbu(byte, ptr, 0);
    // hash = (hash * 31 + byte) & (TABLE_ENTRIES - 1)
    a.slli(idx, hash, 5);
    a.sub(idx, idx, hash);
    a.add(hash, idx, byte);
    a.andi(hash, hash, (TABLE_ENTRIES - 1) as i64);
    // Probe the code table.
    a.slli(idx, hash, 3);
    a.add(idx, idx, table_base);
    a.ld(probe, idx, 0);
    a.beq(probe, byte, "hit");
    a.sd(byte, idx, 0);
    a.j("next");
    a.label("hit");
    a.addi(hits, hits, 1);
    a.label("next");
    a.addi(ptr, ptr, 1);
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "byte");
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "outer");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn terminates_and_probes_the_table() {
        let mut emu = Emulator::new(&build(1));
        emu.run(5_000_000);
        assert!(emu.halted());
        // On a second pass many probes would hit; on the first pass some
        // collisions already produce hits, but the exact number only matters
        // for determinism.
        let hits_a = emu.int_reg(x(8));
        let mut emu2 = Emulator::new(&build(1));
        emu2.run(5_000_000);
        assert_eq!(hits_a, emu2.int_reg(x(8)));
    }

    #[test]
    fn byte_stream_is_stride_one() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(200_000, |r| p.observe_retired(r));
        let s = p.stats();
        // The byte-stream load contributes a large stride-1 share; the table
        // probes land in `other`.
        assert!(s.fraction(1) > 0.3, "stride-1 share {}", s.fraction(1));
        assert!(s.other > 0);
    }
}

//! `histo`: data-dependent irregular histogram updates.
//!
//! A post-paper kernel for the irregular-update regime the ROADMAP asks for:
//! a stride-1 stream of pseudo-random keys drives read-modify-write updates
//! of a histogram, so every other memory operation is a load (or store) whose
//! address depends on just-loaded *data*.  The key stream itself vectorizes,
//! but the `hist[key]` accesses have no usable stride, and the stores
//! continuously exercise the engine's store-conflict invalidation path — the
//! structured opposite of `stridemix`.

use super::util::x;
use sdv_isa::{ArchReg, Asm, Program};

/// Keys per pass (one stride-1 walk of the key array).
const KEYS: usize = 8192;
/// Histogram bins (keys are uniform in `0..BINS`).
const BINS: usize = 1024;

/// The pseudo-random key stream.
fn keys() -> Vec<u64> {
    super::util::random_u64s(0x61, KEYS, BINS as u64)
}

/// Builds the kernel with `scale` passes over the key stream (the histogram
/// carries over between passes).
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let key_base = a.data_u64(&keys());
    let hist = a.alloc(BINS * 8, 8);

    let (outer, pk, n, k, idx, cnt, hbase, acc) = (x(1), x(2), x(3), x(4), x(5), x(6), x(7), x(8));
    a.li(hbase, hist as i64);
    a.li(outer, scale.max(1) as i64);
    a.li(acc, 0);
    a.label("outer");
    a.li(pk, key_base as i64);
    a.li(n, KEYS as i64);
    a.label("loop");
    a.ld(k, pk, 0); // stride-1 key stream
    a.slli(idx, k, 3);
    a.add(idx, idx, hbase);
    a.ld(cnt, idx, 0); // data-dependent irregular load
    a.add(acc, acc, cnt);
    a.addi(cnt, cnt, 1);
    a.sd(cnt, idx, 0); // data-dependent irregular update
    a.addi(pk, pk, 8);
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "loop");
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "outer");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    /// The checksum of pre-increment counts the kernel accumulates over
    /// `scale` passes: each update reads the bin's current count before
    /// incrementing it, and the kernel sums those reads.
    fn expected_checksum(scale: u64) -> u64 {
        let keys = keys();
        let mut hist = vec![0u64; BINS];
        let mut acc = 0u64;
        for _ in 0..scale.max(1) {
            for &k in &keys {
                acc += hist[k as usize];
                hist[k as usize] += 1;
            }
        }
        acc
    }

    #[test]
    fn checksum_of_pre_increment_counts_is_pinned() {
        for scale in [1, 2] {
            let mut emu = Emulator::new(&build(scale));
            emu.run(20_000_000);
            assert!(emu.halted(), "scale {scale} halts");
            assert_eq!(
                emu.int_reg(x(8)),
                expected_checksum(scale),
                "scale {scale}: read-modify-write updates are architecturally exact"
            );
        }
    }

    #[test]
    fn updates_are_irregular_but_keys_are_streamed() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(200_000, |r| p.observe_retired(r));
        let s = p.stats().clone();
        assert!(s.total > 1_000);
        // The key stream is stride-1; the histogram probes are data-dependent
        // (mostly stride-less, a few accidental small strides).
        assert!(
            s.fraction(1) > 0.35,
            "key stream missing: {}",
            s.fraction(1)
        );
        assert!(
            s.other > s.total / 4,
            "histogram probes must be irregular: {} of {}",
            s.other,
            s.total
        );
    }
}

//! `gcc` analogue: traversal of heterogeneous records with branchy processing.
//!
//! The compiler walks linked tree/RTL structures whose nodes have different
//! shapes.  The kernel walks an array of fixed-slot records (stride-4-element
//! loads), branches on each record's kind, and performs an indexed lookup in a
//! side table whose index depends on record contents (irregular stride).

use super::util::x;
use sdv_isa::{ArchReg, Asm, Program};

const NODES: usize = 2048;
const TABLE: usize = 256;

/// Builds the kernel with `scale` passes over the node array.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    // Each node is four 64-bit slots: kind, a, b, aux.
    let mut node_words = Vec::with_capacity(NODES * 4);
    let kinds = super::util::random_u64s(0xcc, NODES, 5);
    let avals = super::util::random_u64s(0xcd, NODES, 1 << 20);
    let bvals = super::util::random_u64s(0xce, NODES, 1 << 20);
    for i in 0..NODES {
        node_words.push(kinds[i]);
        node_words.push(avals[i]);
        node_words.push(bvals[i]);
        node_words.push((avals[i] ^ bvals[i]) & 0xff);
    }
    let nodes = a.data_u64(&node_words);
    let table = a.data_u64(&super::util::random_u64s(0xcf, TABLE, 1 << 16));
    // Compiler globals ("current function", "flags") reloaded per node.
    let flags_mem = a.data_u64(&[1]);

    let (outer, ptr, n, kind, av, bv, sum, idx, tmp) =
        (x(1), x(2), x(3), x(4), x(5), x(6), x(7), x(8), x(9));
    let (table_base, flags) = (x(20), x(10));
    a.li(table_base, table as i64);
    a.li(outer, scale.max(1) as i64);
    a.li(sum, 0);
    a.label("outer");
    a.li(ptr, nodes as i64);
    a.li(n, NODES as i64);
    a.label("node");
    a.ld(kind, ptr, 0);
    a.ld(av, ptr, 8);
    a.ld(bv, ptr, 16);
    a.li(tmp, 1);
    a.beq(kind, ArchReg::ZERO, "k_const");
    a.beq(kind, tmp, "k_plus");
    a.li(tmp, 2);
    a.beq(kind, tmp, "k_minus");
    a.li(tmp, 3);
    a.beq(kind, tmp, "k_mul");
    // kind 4: symbol reference -> irregular table lookup
    a.andi(idx, av, (TABLE - 1) as i64);
    a.slli(idx, idx, 3);
    a.add(idx, idx, table_base);
    a.ld(tmp, idx, 0);
    a.add(sum, sum, tmp);
    a.j("done");
    a.label("k_const");
    a.add(sum, sum, av);
    a.j("done");
    a.label("k_plus");
    a.add(tmp, av, bv);
    a.add(sum, sum, tmp);
    a.j("done");
    a.label("k_minus");
    a.sub(tmp, av, bv);
    a.add(sum, sum, tmp);
    a.j("done");
    a.label("k_mul");
    a.mul(tmp, av, bv);
    a.add(sum, sum, tmp);
    a.label("done");
    // Stride-0 reload of a compiler global on every node.
    a.li(tmp, flags_mem as i64);
    a.ld(flags, tmp, 0);
    a.add(sum, sum, flags);
    a.addi(ptr, ptr, 32);
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "node");
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "outer");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn terminates_with_nonzero_sum() {
        let mut emu = Emulator::new(&build(1));
        emu.run(5_000_000);
        assert!(emu.halted());
        assert_ne!(
            emu.int_reg(x(7)),
            0,
            "the record walk accumulates something"
        );
    }

    #[test]
    fn deterministic_across_builds() {
        let mut a = Emulator::new(&build(1));
        let mut b = Emulator::new(&build(1));
        a.run(5_000_000);
        b.run(5_000_000);
        assert_eq!(a.int_reg(x(7)), b.int_reg(x(7)));
        assert_eq!(a.retired_count(), b.retired_count());
    }
}

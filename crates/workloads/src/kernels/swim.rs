//! `swim` analogue: a shallow-water 2-D stencil with stride-1 FP accesses.
//!
//! SPEC `swim` sweeps several 2-D grids with nearest-neighbour stencils whose
//! inner loops access consecutive elements — the classic stride-1 FP workload
//! that benefits most from wide buses and dynamic vectorization.

use super::util::{f, x};
use sdv_isa::{ArchReg, Asm, Program};

const N: usize = 96; // grid edge (interior points are 1..N-1)

/// Builds the kernel with `scale` stencil sweeps.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let grid_a = a.data_f64(&super::util::random_f64s(0x51, N * N));
    let grid_b = a.alloc(N * N * 8, 8);

    let (outer, row, col, addr, dst) = (x(1), x(2), x(3), x(4), x(5));
    let (a_base, b_base) = (x(20), x(21));
    let (west, east, north, south, acc, quarter) = (f(1), f(2), f(3), f(4), f(5), f(6));
    let coeff = a.data_f64(&[0.25]);
    a.li(addr, coeff as i64);
    a.fld(quarter, addr, 0);
    a.li(a_base, grid_a as i64);
    a.li(b_base, grid_b as i64);
    a.li(outer, scale.max(1) as i64);
    a.label("sweep");
    a.li(row, (N - 2) as i64);
    a.label("row");
    // addr points at element (row, 1); rows are visited bottom-up (row = N-2 … 1).
    a.li(col, (N - 2) as i64);
    a.li(dst, N as i64 * 8);
    a.mul(addr, row, dst);
    a.add(addr, addr, a_base);
    a.addi(addr, addr, 8);
    a.sub(dst, addr, a_base);
    a.add(dst, dst, b_base);
    a.label("col");
    a.fld(west, addr, -8);
    a.fld(east, addr, 8);
    a.fld(north, addr, -(N as i64) * 8);
    a.fld(south, addr, N as i64 * 8);
    a.fadd(acc, west, east);
    a.fadd(acc, acc, north);
    a.fadd(acc, acc, south);
    a.fmul(acc, acc, quarter);
    a.fsd(acc, dst, 0);
    a.addi(addr, addr, 8);
    a.addi(dst, dst, 8);
    a.addi(col, col, -1);
    a.bne(col, ArchReg::ZERO, "col");
    a.addi(row, row, -1);
    a.bne(row, ArchReg::ZERO, "row");
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "sweep");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn computes_the_stencil() {
        let mut emu = Emulator::new(&build(1));
        emu.run(10_000_000);
        assert!(emu.halted());
        let src = super::super::util::random_f64s(0x51, N * N);
        let b_base = sdv_isa::program::DATA_BASE + (N * N * 8) as u64;
        // Check one interior point: row = N-2 is processed first.
        let (r, c) = (N - 2, 1);
        let expected = 0.25
            * (src[r * N + c - 1]
                + src[r * N + c + 1]
                + src[(r - 1) * N + c]
                + src[(r + 1) * N + c]);
        let got = emu.memory().read_f64(b_base + ((r * N + c) * 8) as u64);
        assert!(
            (got - expected).abs() < 1e-12,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn inner_loop_is_stride_one() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(200_000, |r| p.observe_retired(r));
        assert!(
            p.stats().fraction(1) > 0.6,
            "stride-1 share {}",
            p.stats().fraction(1)
        );
    }
}

//! `go` analogue: board evaluation with data-dependent branches.
//!
//! The SPEC `go` benchmark spends its time evaluating positions on a 19×19
//! board with highly irregular control flow.  This kernel walks a board array
//! (stride-1 loads) and takes data-dependent branches on the cell contents,
//! mixing in a stride-0 accumulator kept in memory — matching `go`'s profile
//! of mostly small strides with a poorly predictable branch mix.

use super::util::x;
use sdv_isa::{ArchReg, Asm, Program};

/// Board cells (one extra so the "neighbour" access never leaves the array).
const CELLS: usize = 1024;

/// Builds the kernel with `scale` passes over the board.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let board = a.data_u64(&super::util::random_u64s(0x60, CELLS + 1, 4));
    // A read-mostly "evaluation weight" global, reloaded every iteration the
    // way compiled code reloads globals under register pressure (stride 0),
    // and a score cell written only once per board pass.
    let weight_mem = a.data_u64(&[3]);
    let score_mem = a.alloc(8, 8);

    let (outer, ptr, count, cell, tmp, nbr, acc, score) =
        (x(1), x(2), x(3), x(4), x(5), x(6), x(10), x(7));
    a.li(outer, scale.max(1) as i64);
    a.label("outer");
    a.li(ptr, board as i64);
    a.li(count, CELLS as i64);
    a.li(acc, 0);
    a.label("inner");
    a.ld(cell, ptr, 0);
    a.beq(cell, ArchReg::ZERO, "skip");
    a.li(tmp, 1);
    a.beq(cell, tmp, "liberty");
    a.li(tmp, 2);
    a.beq(cell, tmp, "capture");
    // cell == 3: look at the neighbour and count its influence
    a.ld(nbr, ptr, 8);
    a.add(acc, acc, nbr);
    a.j("skip");
    a.label("liberty");
    a.addi(acc, acc, 1);
    a.j("skip");
    a.label("capture");
    a.addi(acc, acc, -1);
    a.label("skip");
    // Stride-0 reload of the evaluation weight (register-pressure spill).
    a.li(tmp, weight_mem as i64);
    a.ld(score, tmp, 0);
    a.add(acc, acc, score);
    a.addi(ptr, ptr, 8);
    a.addi(count, count, -1);
    a.bne(count, ArchReg::ZERO, "inner");
    // The running score is written back once per board pass.
    a.li(tmp, score_mem as i64);
    a.ld(score, tmp, 0);
    a.add(score, score, acc);
    a.sd(score, tmp, 0);
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "outer");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn terminates_and_scores_the_board() {
        let program = build(1);
        let mut emu = Emulator::new(&program);
        emu.run(5_000_000);
        assert!(emu.halted());
        // The accumulator visits every cell once per pass.
        assert!(emu.retired_count() > CELLS as u64 * 8);
    }

    #[test]
    fn branches_are_data_dependent() {
        use sdv_isa::OpClass;
        let mut emu = Emulator::new(&build(1));
        let mut taken = 0u64;
        let mut not_taken = 0u64;
        emu.run_with(200_000, |r| {
            if r.inst.op.class() == OpClass::Branch {
                if r.taken {
                    taken += 1;
                } else {
                    not_taken += 1;
                }
            }
        });
        assert!(
            taken > 1_000 && not_taken > 1_000,
            "both directions exercised"
        );
    }
}

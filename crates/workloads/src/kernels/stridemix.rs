//! `stridemix`: alternating unit-stride and large-stride streams.
//!
//! A post-paper kernel for the mixed-stride regime the ROADMAP asks for: one
//! loop interleaves a dense unit-stride walk (stride +8 bytes, like `swim`'s
//! rows) with a sparse large-stride walk (stride +512 bytes, like a column
//! sweep of a wide matrix) that wraps around its array.  Both streams have
//! perfectly constant strides, so the Table of Loads should vectorize both —
//! but the large stride spans eight cache lines per element, so the wide-bus
//! benefit splits sharply between the two streams.

use super::util::x;
use sdv_isa::{ArchReg, Asm, Program};

/// Words in the dense, unit-stride array (one pass walks all of them).
const DENSE_WORDS: usize = 4096;
/// Words in the sparse array, walked with a large wrapping stride.
const SPARSE_WORDS: usize = 8192;
/// The sparse stride in words (512 bytes: eight 64-byte lines).
const STRIDE_WORDS: usize = 64;

/// The two data images.
fn images() -> (Vec<u64>, Vec<u64>) {
    (
        super::util::random_u64s(0x51, DENSE_WORDS, 10_000),
        super::util::random_u64s(0x52, SPARSE_WORDS, 10_000),
    )
}

/// Builds the kernel with `scale` passes over both streams.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let (dense_words, sparse_words) = images();
    let dense = a.data_u64(&dense_words);
    let sparse = a.data_u64(&sparse_words);

    let (outer, pa, pb, n, v, sum, bend) = (x(1), x(2), x(3), x(4), x(5), x(6), x(7));
    a.li(bend, (sparse + (SPARSE_WORDS * 8) as u64) as i64);
    a.li(outer, scale.max(1) as i64);
    a.li(sum, 0);
    a.label("outer");
    a.li(pa, dense as i64);
    a.li(pb, sparse as i64);
    a.li(n, DENSE_WORDS as i64);
    a.label("loop");
    a.ld(v, pa, 0); // unit-stride stream
    a.add(sum, sum, v);
    a.ld(v, pb, 0); // large-stride stream
    a.add(sum, sum, v);
    a.addi(pa, pa, 8);
    a.addi(pb, pb, (STRIDE_WORDS * 8) as i64);
    a.blt(pb, bend, "nowrap");
    a.addi(pb, pb, -((SPARSE_WORDS * 8) as i64));
    a.label("nowrap");
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "loop");
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "outer");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    /// The architectural sum the kernel accumulates over one outer pass.
    fn pass_sum() -> u64 {
        let (dense, sparse) = images();
        let mut sum: u64 = dense.iter().sum();
        let mut j = 0usize;
        for _ in 0..DENSE_WORDS {
            sum += sparse[j];
            j = (j + STRIDE_WORDS) % SPARSE_WORDS;
        }
        sum
    }

    #[test]
    fn sums_both_streams_exactly() {
        for scale in [1, 3] {
            let mut emu = Emulator::new(&build(scale));
            emu.run(20_000_000);
            assert!(emu.halted(), "scale {scale} halts");
            assert_eq!(
                emu.int_reg(x(6)),
                pass_sum() * scale,
                "scale {scale}: the accumulated sum is architecturally pinned"
            );
        }
    }

    #[test]
    fn loads_split_between_unit_and_large_strides() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(200_000, |r| p.observe_retired(r));
        let s = p.stats().clone();
        assert!(s.total > 1_000);
        // Half the loads walk at +1 element; the other half at +64 elements,
        // far outside Figure 1's 0..=9 buckets, so they land in `other`.
        let unit = s.fraction(1);
        assert!(unit > 0.4, "unit-stride stream missing: {unit}");
        assert!(
            s.other > s.total / 3,
            "large strides dominate the rest: {} of {}",
            s.other,
            s.total
        );
    }
}

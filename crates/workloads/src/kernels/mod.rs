//! One module per synthetic benchmark kernel.
//!
//! Each module exposes `build(scale) -> Program`.  The kernels are written
//! directly against the [`sdv_isa::Asm`] builder; data segments are filled
//! with deterministic pseudo-random contents (fixed seeds) so every build of a
//! kernel produces exactly the same program and data image.

pub mod applu;
pub mod compress;
pub mod fpppp;
pub mod gcc;
pub mod go;
pub mod histo;
pub mod ijpeg;
pub mod li;
pub mod listchase;
pub mod m88ksim;
pub mod matblock;
pub mod perl;
pub mod stridemix;
pub mod swim;
pub mod turb3d;
pub mod vortex;

pub(crate) mod util {
    use sdv_isa::ArchReg;

    /// Shorthand for integer register `x<n>`.
    pub fn x(n: u8) -> ArchReg {
        ArchReg::int(n)
    }

    /// Shorthand for floating-point register `f<n>`.
    pub fn f(n: u8) -> ArchReg {
        ArchReg::fp(n)
    }

    /// A deterministic SplitMix64 stream seeded per kernel.
    ///
    /// Self-contained so data-image generation has no external dependency;
    /// the only requirement is determinism across builds, not statistical
    /// quality beyond "not obviously patterned".
    pub struct Rng(u64);

    impl Rng {
        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// A deterministic RNG seeded per kernel.
    pub fn rng(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d)
    }

    /// `len` random integers in `0..bound`.
    pub fn random_u64s(seed: u64, len: usize, bound: u64) -> Vec<u64> {
        let mut r = rng(seed);
        (0..len).map(|_| r.below(bound)).collect()
    }

    /// `len` random bytes.
    pub fn random_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut r = rng(seed);
        (0..len).map(|_| r.next_u64() as u8).collect()
    }

    /// `len` random doubles in (0, 1).
    pub fn random_f64s(seed: u64, len: usize) -> Vec<f64> {
        let mut r = rng(seed);
        (0..len)
            .map(|_| {
                let frac = (r.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                0.001 + frac * (1.0 - 0.002)
            })
            .collect()
    }

    /// A pseudo-random permutation of `0..len`.
    pub fn permutation(seed: u64, len: usize) -> Vec<usize> {
        let mut r = rng(seed);
        let mut order: Vec<usize> = (0..len).collect();
        for i in (1..len).rev() {
            order.swap(i, r.below(i as u64 + 1) as usize);
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::util;

    #[test]
    fn util_generators_are_deterministic() {
        assert_eq!(util::random_u64s(7, 16, 100), util::random_u64s(7, 16, 100));
        assert_eq!(util::random_bytes(7, 16), util::random_bytes(7, 16));
        assert_eq!(util::permutation(7, 16), util::permutation(7, 16));
        assert_ne!(util::random_u64s(7, 16, 100), util::random_u64s(8, 16, 100));
    }

    #[test]
    fn permutation_contains_every_index() {
        let mut p = util::permutation(3, 100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_values_respect_bounds() {
        assert!(util::random_u64s(1, 1000, 5).iter().all(|&v| v < 5));
        assert!(util::random_f64s(1, 1000)
            .iter()
            .all(|&v| v > 0.0 && v < 1.0));
    }
}

//! `listchase`: pointer-chasing traversal of two interleaved linked lists.
//!
//! A post-paper stress kernel: two independent, scrambled singly-linked lists
//! of 32-byte nodes are walked in lockstep, summing two payload words per
//! node.  Every `next` pointer is a dependent, irregularly-addressed load —
//! the worst case for the Table of Loads — while the two chains give the
//! out-of-order window some memory-level parallelism to extract.  Unlike the
//! `li` analogue there are no stride-0 interpreter globals: the kernel is
//! pure pointer chasing.

use super::util::x;
use sdv_isa::{ArchReg, Asm, Program};

const NODES: usize = 2048;
/// Words per node: `next`, two payload words, one pad word (32 bytes).
const NODE_WORDS: usize = 4;

/// The payload values of chain `chain`.
fn payloads(chain: u64) -> (Vec<u64>, Vec<u64>) {
    (
        super::util::random_u64s(0x31 + chain, NODES, 10_000),
        super::util::random_u64s(0x41 + chain, NODES, 10_000),
    )
}

/// Builds the node image for one chain laid out at `base`, returning the
/// words and the address of the chain's head.
fn chain_words(chain: u64, base: u64) -> (Vec<u64>, u64) {
    let order = super::util::permutation(0x21 + chain, NODES);
    let (k1, k2) = payloads(chain);
    let mut words = vec![0u64; NODES * NODE_WORDS];
    for w in 0..NODES {
        let node = order[w];
        words[node * NODE_WORDS] = if w + 1 < NODES {
            base + (order[w + 1] * NODE_WORDS * 8) as u64
        } else {
            0
        };
        words[node * NODE_WORDS + 1] = k1[node];
        words[node * NODE_WORDS + 2] = k2[node];
    }
    (words, base + (order[0] * NODE_WORDS * 8) as u64)
}

/// Builds the kernel with `scale * 2` lockstep traversals of both chains.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let base0 = sdv_isa::program::DATA_BASE;
    let (words0, head0) = chain_words(0, base0);
    let placed = a.data_u64(&words0);
    assert_eq!(placed, base0, "first chain starts at the data base");
    // Data allocations are sequential and 8-aligned, so the second chain's
    // base is known before it is placed.
    let base1 = base0 + (words0.len() * 8) as u64;
    let (words1, head1) = chain_words(1, base1);
    let placed1 = a.data_u64(&words1);
    assert_eq!(placed1, base1, "second chain follows the first");

    let (outer, p1, p2, v, sum) = (x(1), x(2), x(3), x(4), x(5));
    a.li(outer, (scale.max(1) * 2) as i64);
    a.li(sum, 0);
    a.label("outer");
    a.li(p1, head0 as i64);
    a.li(p2, head1 as i64);
    a.label("walk");
    a.ld(v, p1, 8);
    a.add(sum, sum, v);
    a.ld(v, p1, 16);
    a.add(sum, sum, v);
    a.ld(v, p2, 8);
    a.add(sum, sum, v);
    a.ld(v, p2, 16);
    a.add(sum, sum, v);
    a.ld(p1, p1, 0);
    a.ld(p2, p2, 0);
    a.bne(p1, ArchReg::ZERO, "walk");
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "outer");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn sums_every_payload_of_both_chains() {
        let mut emu = Emulator::new(&build(1));
        emu.run(10_000_000);
        assert!(emu.halted());
        let mut expected = 0u64;
        for chain in 0..2 {
            let (k1, k2) = payloads(chain);
            expected += k1.iter().sum::<u64>() + k2.iter().sum::<u64>();
        }
        assert_eq!(emu.int_reg(x(5)), expected * 2, "two traversals");
    }

    #[test]
    fn next_pointers_are_irregular() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(200_000, |r| p.observe_retired(r));
        let s = p.stats();
        assert!(
            s.other > s.total / 3,
            "chased pointers dominate: {} irregular of {}",
            s.other,
            s.total
        );
    }
}

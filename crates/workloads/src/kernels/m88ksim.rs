//! `m88ksim` analogue: an instruction-set-simulator main loop.
//!
//! The original benchmark fetches instruction words, decodes them via table
//! look-ups and updates simulated machine state.  The kernel reads a stream of
//! 32-bit "instruction" words (stride-4 loads), dispatches on the opcode field
//! and updates an opcode histogram and a simulated register file — small,
//! frequently re-touched structures that give the stride-0-heavy profile of
//! the real program.

use super::util::x;
use sdv_isa::{ArchReg, Asm, Program};

const IMEM_WORDS: usize = 4096;

/// Builds the kernel with `scale` simulated passes over the instruction stream.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let imem = a.data_u32(
        &super::util::random_u64s(0x88, IMEM_WORDS, u64::from(u32::MAX))
            .iter()
            .map(|&v| v as u32)
            .collect::<Vec<u32>>(),
    );
    let counters = a.alloc(8 * 8, 8);
    let regfile = a.alloc(32 * 8, 8);
    // Simulated machine state reloaded on every decoded instruction (stride 0).
    let psr_mem = a.data_u64(&[0x5]);

    let (outer, ptr, n, word, op, addr, val, idx) =
        (x(1), x(2), x(3), x(4), x(5), x(6), x(7), x(8));
    let (counters_base, regs_base, psr) = (x(20), x(21), x(10));
    a.li(counters_base, counters as i64);
    a.li(regs_base, regfile as i64);
    a.li(outer, scale.max(1) as i64);
    a.label("outer");
    a.li(ptr, imem as i64);
    a.li(n, IMEM_WORDS as i64);
    a.label("decode");
    a.lwu(word, ptr, 0);
    // Opcode histogram (8 entries, effectively stride 0 over a tiny table).
    a.andi(op, word, 7);
    a.slli(addr, op, 3);
    a.add(addr, addr, counters_base);
    a.ld(val, addr, 0);
    a.addi(val, val, 1);
    a.sd(val, addr, 0);
    // Simulated destination register update.
    a.srli(idx, word, 3);
    a.andi(idx, idx, 31);
    a.slli(idx, idx, 3);
    a.add(idx, idx, regs_base);
    a.ld(val, idx, 0);
    a.add(val, val, op);
    a.sd(val, idx, 0);
    // Reload the simulated processor-status register (stride-0 global).
    a.li(val, psr_mem as i64);
    a.ld(psr, val, 0);
    a.add(x(9), x(9), psr);
    // "Branch" instructions (opcode 7) take a slow path.
    a.li(val, 7);
    a.bne(op, val, "next");
    a.addi(x(9), x(9), 1);
    a.label("next");
    a.addi(ptr, ptr, 4);
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "decode");
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "outer");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn decodes_the_whole_stream() {
        let mut emu = Emulator::new(&build(1));
        emu.run(5_000_000);
        assert!(emu.halted());
        // Every word increments exactly one histogram bucket.
        let counters_base = 0x0010_0000u64 + (IMEM_WORDS as u64) * 4;
        let counters_base = (counters_base + 7) & !7;
        let total: u64 = (0..8)
            .map(|i| emu.memory().read_u64(counters_base + i * 8))
            .sum();
        assert_eq!(total, IMEM_WORDS as u64);
    }

    #[test]
    fn loads_are_dominated_by_small_strides() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(300_000, |r| p.observe_retired(r));
        assert!(p.stats().fraction_below(4) > 0.5);
    }
}

//! `ijpeg` analogue: 8×8 block transforms over an image.
//!
//! JPEG compression processes the image in 8×8 blocks: the row passes access
//! consecutive elements (stride 1) while the column passes walk with a stride
//! equal to the image width — exactly the stride-1/stride-8 mixture the paper
//! attributes to loop transformations in §2.

use super::util::x;
use sdv_isa::{ArchReg, Asm, Program};

const WIDTH: usize = 64;
const HEIGHT: usize = 64;

/// Builds the kernel with `scale` passes over the image.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let image = a.data_u64(&super::util::random_u64s(0x1e, WIDTH * HEIGHT, 256));
    let out = a.alloc(WIDTH * HEIGHT * 8, 8);

    let (outer, row, col, px, acc, addr, n, tmp) = (x(1), x(2), x(3), x(4), x(5), x(6), x(7), x(8));
    let (img_base, out_base, out_ptr) = (x(20), x(21), x(22));
    a.li(img_base, image as i64);
    a.li(out_base, out as i64);
    a.li(outer, scale.max(1) as i64);
    a.label("outer");
    a.mv(out_ptr, out_base);
    // Row pass: stride-1 sums of 8-pixel runs across the whole image.
    a.mv(addr, img_base);
    a.li(row, (WIDTH * HEIGHT / 8) as i64);
    a.label("rowrun");
    a.li(acc, 0);
    a.li(n, 8);
    a.label("rowpix");
    a.ld(px, addr, 0);
    a.add(acc, acc, px);
    a.addi(addr, addr, 8);
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "rowpix");
    a.sd(acc, out_ptr, 0);
    a.addi(out_ptr, out_ptr, 8);
    a.addi(row, row, -1);
    a.bne(row, ArchReg::ZERO, "rowrun");
    // Column pass: stride-WIDTH walks down each of the first 8 columns of
    // every block row (stride 8 elements after the loop transformation).
    a.li(col, WIDTH as i64);
    a.li(tmp, 0); // column index
    a.label("colrun");
    a.mv(addr, img_base);
    a.slli(n, tmp, 3);
    a.add(addr, addr, n);
    a.li(acc, 0);
    a.li(n, HEIGHT as i64);
    a.label("colpix");
    a.ld(px, addr, 0);
    a.add(acc, acc, px);
    a.addi(addr, addr, (WIDTH * 8) as i64);
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "colpix");
    a.slli(n, tmp, 3);
    a.add(n, n, out_base);
    a.sd(acc, n, 0);
    a.addi(tmp, tmp, 1);
    a.addi(col, col, -1);
    a.bne(col, ArchReg::ZERO, "colrun");
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "outer");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn produces_row_and_column_sums() {
        let mut emu = Emulator::new(&build(1));
        emu.run(10_000_000);
        assert!(emu.halted());
        let pixels = super::super::util::random_u64s(0x1e, WIDTH * HEIGHT, 256);
        let out_base = sdv_isa::program::DATA_BASE + (WIDTH * HEIGHT * 8) as u64;
        // First output word is the sum of the first 8 pixels (row pass result,
        // later overwritten by the column pass only for index 0..WIDTH).
        let col0: u64 = (0..HEIGHT).map(|r| pixels[r * WIDTH]).sum();
        assert_eq!(emu.memory().read_u64(out_base), col0);
    }

    #[test]
    fn strides_cover_one_and_the_row_width() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(400_000, |r| p.observe_retired(r));
        let s = p.stats();
        assert!(s.counts[1] > 0, "row pass is stride 1");
        // The column pass walks with a stride of WIDTH elements (64 > 9), so
        // it lands in the `other` bucket of the Figure-1 histogram.
        assert!(s.other > 0);
    }
}

//! `vortex` analogue: an object database shuffling fixed-size records.
//!
//! Vortex builds and queries an in-memory object store; most of its time goes
//! into copying records between stores and maintaining index structures.  The
//! kernel copies 8-word records from a source store to a destination store
//! (stride-1 loads and stores) and maintains a small index keyed by a record
//! field (irregular stores).

use super::util::x;
use sdv_isa::{ArchReg, Asm, Program};

const RECORDS: usize = 1024;
const FIELDS: usize = 8;
const INDEX: usize = 512;

/// Builds the kernel with `scale` database passes.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let src = a.data_u64(&super::util::random_u64s(0x70, RECORDS * FIELDS, 1 << 30));
    let dst = a.alloc(RECORDS * FIELDS * 8, 8);
    let index = a.alloc(INDEX * 8, 8);
    // Database environment descriptor, reloaded per record (stride 0).
    let env_mem = a.data_u64(&[7]);

    let (outer, rec, sp, dp, fldcnt, val, key, tmp) =
        (x(1), x(2), x(3), x(4), x(5), x(6), x(7), x(8));
    let (src_base, dst_base, idx_base, checksum) = (x(20), x(21), x(22), x(9));
    a.li(src_base, src as i64);
    a.li(dst_base, dst as i64);
    a.li(idx_base, index as i64);
    a.li(outer, scale.max(1) as i64);
    a.li(checksum, 0);
    a.label("outer");
    a.mv(sp, src_base);
    a.mv(dp, dst_base);
    a.li(rec, RECORDS as i64);
    a.label("record");
    // Copy the record field by field (stride 1 in both stores).
    a.li(fldcnt, FIELDS as i64);
    a.label("field");
    a.ld(val, sp, 0);
    a.sd(val, dp, 0);
    a.add(checksum, checksum, val);
    a.addi(sp, sp, 8);
    a.addi(dp, dp, 8);
    a.addi(fldcnt, fldcnt, -1);
    a.bne(fldcnt, ArchReg::ZERO, "field");
    // Maintain the index: bucket keyed by the record's first field.
    a.ld(key, sp, -(FIELDS as i64) * 8);
    a.andi(key, key, (INDEX - 1) as i64);
    a.slli(key, key, 3);
    a.add(key, key, idx_base);
    a.ld(tmp, key, 0);
    a.addi(tmp, tmp, 1);
    a.sd(tmp, key, 0);
    // Reload the environment descriptor (stride-0 global).
    a.li(key, env_mem as i64);
    a.ld(tmp, key, 0);
    a.add(x(10), x(10), tmp);
    a.addi(rec, rec, -1);
    a.bne(rec, ArchReg::ZERO, "record");
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "outer");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn copies_every_record() {
        let mut emu = Emulator::new(&build(1));
        emu.run(10_000_000);
        assert!(emu.halted());
        let data = super::super::util::random_u64s(0x70, RECORDS * FIELDS, 1 << 30);
        let dst_base = sdv_isa::program::DATA_BASE + (RECORDS * FIELDS * 8) as u64;
        for i in [0usize, 7, 100, RECORDS * FIELDS - 1] {
            assert_eq!(emu.memory().read_u64(dst_base + (i * 8) as u64), data[i]);
        }
        assert_eq!(emu.int_reg(x(9)), data.iter().copied().sum::<u64>());
    }

    #[test]
    fn index_counts_every_record_once_per_pass() {
        let mut emu = Emulator::new(&build(2));
        emu.run(20_000_000);
        assert!(emu.halted());
        let idx_base = sdv_isa::program::DATA_BASE + (2 * RECORDS * FIELDS * 8) as u64;
        let total: u64 = (0..INDEX)
            .map(|i| emu.memory().read_u64(idx_base + (i * 8) as u64))
            .sum();
        assert_eq!(total, 2 * RECORDS as u64);
    }
}

//! `matblock`: blocked dense matrix multiply, `C += A × B`.
//!
//! A post-paper FP kernel: the k-dimension is processed in fixed-size
//! blocks, so `C` is streamed once per block while the `A` row slice and
//! `B` column slice stay cache-resident — the classic loop-blocking shape.
//! The inner product mixes stride-8 loads (`A` rows), large constant-stride
//! loads (`B` columns, `N × 8` bytes apart) and stride-1 revisits of `C`,
//! giving the vectorization engine strided patterns at several granularities.

use super::util::{f, x};
use sdv_isa::{ArchReg, Asm, Program};

/// Matrix dimension (N × N, row-major f64).
const N: usize = 16;
/// k-dimension block size.
const BLOCK: usize = 4;

fn a_values() -> Vec<f64> {
    super::util::random_f64s(0x51, N * N)
}

fn b_values() -> Vec<f64> {
    super::util::random_f64s(0x52, N * N)
}

/// The expected `C` after `reps` accumulating multiplies, replicating the
/// kernel's exact FP operation order.
#[must_use]
pub fn reference(reps: u64) -> Vec<f64> {
    let a = a_values();
    let b = b_values();
    let mut c = vec![0.0f64; N * N];
    for _ in 0..reps {
        for kb in 0..N / BLOCK {
            for i in 0..N {
                for j in 0..N {
                    let mut acc = c[i * N + j];
                    for k in kb * BLOCK..(kb + 1) * BLOCK {
                        acc += a[i * N + k] * b[k * N + j];
                    }
                    c[i * N + j] = acc;
                }
            }
        }
    }
    c
}

/// Builds the kernel with `scale` accumulating block-multiplies.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut asm = Asm::new();
    let a_mat = asm.data_f64(&a_values());
    let b_mat = asm.data_f64(&b_values());
    let c_mat = asm.alloc(N * N * 8, 8);

    let (rep, kb, i, j, k) = (x(1), x(2), x(3), x(4), x(5));
    let (pa, pb, pc) = (x(6), x(7), x(8));
    let (i_off, j_off, kb_a, kb_b) = (x(9), x(10), x(11), x(12));
    let (facc, fa, fb) = (f(1), f(2), f(3));

    asm.li(rep, scale.max(1) as i64);
    asm.label("rep");
    asm.li(kb, (N / BLOCK) as i64);
    asm.li(kb_a, 0); // byte offset of the block within an A row
    asm.li(kb_b, 0); // byte offset of the block's first B row
    asm.label("kb");
    asm.li(i, N as i64);
    asm.li(i_off, 0); // byte offset of row i
    asm.label("i");
    asm.li(j, N as i64);
    asm.li(j_off, 0); // byte offset of column j
    asm.label("j");
    asm.li(pc, c_mat as i64);
    asm.add(pc, pc, i_off);
    asm.add(pc, pc, j_off);
    asm.fld(facc, pc, 0);
    asm.li(pa, a_mat as i64);
    asm.add(pa, pa, i_off);
    asm.add(pa, pa, kb_a);
    asm.li(pb, b_mat as i64);
    asm.add(pb, pb, kb_b);
    asm.add(pb, pb, j_off);
    asm.li(k, BLOCK as i64);
    asm.label("k");
    asm.fld(fa, pa, 0);
    asm.fld(fb, pb, 0);
    asm.fmul(fa, fa, fb);
    asm.fadd(facc, facc, fa);
    asm.addi(pa, pa, 8);
    asm.addi(pb, pb, (N * 8) as i64);
    asm.addi(k, k, -1);
    asm.bne(k, ArchReg::ZERO, "k");
    asm.fsd(facc, pc, 0);
    asm.addi(j_off, j_off, 8);
    asm.addi(j, j, -1);
    asm.bne(j, ArchReg::ZERO, "j");
    asm.addi(i_off, i_off, (N * 8) as i64);
    asm.addi(i, i, -1);
    asm.bne(i, ArchReg::ZERO, "i");
    asm.addi(kb_a, kb_a, (BLOCK * 8) as i64);
    asm.addi(kb_b, kb_b, (BLOCK * N * 8) as i64);
    asm.addi(kb, kb, -1);
    asm.bne(kb, ArchReg::ZERO, "kb");
    asm.addi(rep, rep, -1);
    asm.bne(rep, ArchReg::ZERO, "rep");
    asm.halt();
    asm.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn matches_the_reference_product_exactly() {
        let mut emu = Emulator::new(&build(1));
        emu.run(10_000_000);
        assert!(emu.halted());
        // C lives right after A and B in the data segment.
        let c_base = sdv_isa::program::DATA_BASE + (2 * N * N * 8) as u64;
        let expected = reference(1);
        for (idx, &want) in expected.iter().enumerate() {
            let got = emu.memory().read_f64(c_base + (idx * 8) as u64);
            assert_eq!(got, want, "c[{idx}] (bit-exact FP order)");
        }
    }

    #[test]
    fn block_strides_show_up_in_the_profile() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(300_000, |r| p.observe_retired(r));
        let s = p.stats();
        assert!(
            s.counts[1] > 0,
            "A-row loads are stride-1 in elements: {:?}",
            s.counts
        );
        assert!(s.total > 5_000, "enough loads profiled: {}", s.total);
    }
}

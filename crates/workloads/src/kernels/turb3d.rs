//! `turb3d` analogue: FFT-style butterfly passes with power-of-two strides.
//!
//! `turb3d` performs 3-D FFTs; its butterfly loops access pairs of elements
//! separated by power-of-two distances, so the stride histogram shows mass at
//! 1, 2, 4 and 8 (§2 attributes these to loop transformations).

use super::util::{f, x};
use sdv_isa::{ArchReg, Asm, Program};

const ELEMS: usize = 4096;

/// Builds the kernel with `scale` rounds of butterfly passes.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let data = a.data_f64(&super::util::random_f64s(0x3d, ELEMS));
    let half = a.data_f64(&[0.5]);

    let (outer, n, addr, stride_reg, tmp) = (x(1), x(2), x(3), x(4), x(5));
    let data_base = x(20);
    let (lo, hi, sum, diff, scalef) = (f(1), f(2), f(3), f(4), f(5));
    a.li(tmp, half as i64);
    a.fld(scalef, tmp, 0);
    a.li(data_base, data as i64);
    a.li(outer, scale.max(1) as i64);
    a.label("round");
    // Four butterfly passes with partner distances 1, 2, 4 and 8 elements.
    for (pass, dist) in [1i64, 2, 4, 8].into_iter().enumerate() {
        let label = format!("pass{pass}");
        a.mv(addr, data_base);
        a.li(stride_reg, dist * 16); // advance past the pair each iteration
        a.li(n, (ELEMS as i64) / (dist * 2));
        a.label(&label);
        a.fld(lo, addr, 0);
        a.fld(hi, addr, dist * 8);
        a.fadd(sum, lo, hi);
        a.fsub(diff, lo, hi);
        a.fmul(sum, sum, scalef);
        a.fmul(diff, diff, scalef);
        a.fsd(sum, addr, 0);
        a.fsd(diff, addr, dist * 8);
        a.add(addr, addr, stride_reg);
        a.addi(n, n, -1);
        a.bne(n, ArchReg::ZERO, &label);
    }
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "round");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn butterfly_preserves_the_mean() {
        // Each butterfly replaces (a, b) with ((a+b)/2, (a-b)/2); the first
        // pass therefore preserves the sum of each pair's first element plus
        // second element halved... simply check the total "energy" stays finite
        // and the first pair matches a reference computation.
        let src = super::super::util::random_f64s(0x3d, ELEMS);
        let mut emu = Emulator::new(&build(1));
        emu.run(10_000_000);
        assert!(emu.halted());
        let base = sdv_isa::program::DATA_BASE;
        // Reference: apply the four passes in plain Rust.
        let mut reference = src;
        for dist in [1usize, 2, 4, 8] {
            let mut i = 0;
            while i + dist < ELEMS {
                let (a0, b0) = (reference[i], reference[i + dist]);
                reference[i] = (a0 + b0) * 0.5;
                reference[i + dist] = (a0 - b0) * 0.5;
                i += dist * 2;
            }
        }
        for probe in [0usize, 1, 17, 1023, ELEMS - 1] {
            let got = emu.memory().read_f64(base + (probe * 8) as u64);
            assert!(
                (got - reference[probe]).abs() < 1e-12,
                "element {probe}: got {got}, expected {}",
                reference[probe]
            );
        }
    }

    #[test]
    fn power_of_two_strides_dominate() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(300_000, |r| p.observe_retired(r));
        let s = p.stats();
        let pow2: u64 = s.counts[2] + s.counts[4] + s.counts[8];
        assert!(pow2 > 0, "strides 2/4/8 should appear");
    }
}

//! `li` analogue: lisp-style cons-cell traversal (pointer chasing).
//!
//! The XLISP interpreter spends its time following `car`/`cdr` pointers whose
//! addresses are not strided at all; the recurring accesses to interpreter
//! globals show up as stride-0 loads.  The kernel repeatedly walks a scrambled
//! singly-linked list of cons cells and bumps a heap-allocation counter kept
//! in memory.

use super::util::x;
use sdv_isa::{ArchReg, Asm, Program};

const CELLS: usize = 4096;

/// Builds the kernel with `scale * 4` complete list traversals.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    // Cons cells are (value, next) pairs laid out in scrambled order starting
    // at the assembler's data base.
    let order = super::util::permutation(0x11, CELLS);
    let values = super::util::random_u64s(0x12, CELLS, 1000);
    let base = sdv_isa::program::DATA_BASE;
    let mut words = vec![0u64; CELLS * 2];
    for w in 0..CELLS {
        let cell = order[w];
        words[cell * 2] = values[cell];
        words[cell * 2 + 1] = if w + 1 < CELLS {
            base + (order[w + 1] * 16) as u64
        } else {
            0
        };
    }
    let placed = a.data_u64(&words);
    assert_eq!(placed, base, "cons cells start at the data base");
    let counter_mem = a.alloc(8, 8);
    let head = base + (order[0] * 16) as u64;

    let (outer, ptr, val, sum, tmp, cnt) = (x(1), x(2), x(3), x(4), x(5), x(6));
    a.li(outer, (scale.max(1) * 4) as i64);
    a.li(sum, 0);
    a.label("outer");
    a.li(ptr, head as i64);
    a.label("walk");
    a.ld(val, ptr, 0); // car
    a.add(sum, sum, val);
    // Stride-0 interpreter global: allocation counter.
    a.li(tmp, counter_mem as i64);
    a.ld(cnt, tmp, 0);
    a.addi(cnt, cnt, 1);
    a.sd(cnt, tmp, 0);
    a.ld(ptr, ptr, 8); // cdr
    a.bne(ptr, ArchReg::ZERO, "walk");
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "outer");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn traverses_every_cell() {
        let mut emu = Emulator::new(&build(1));
        emu.run(10_000_000);
        assert!(emu.halted());
        let expected: u64 = super::super::util::random_u64s(0x12, CELLS, 1000)
            .iter()
            .sum::<u64>()
            * 4;
        assert_eq!(
            emu.int_reg(x(4)),
            expected,
            "sum of car values over 4 traversals"
        );
    }

    #[test]
    fn chased_loads_are_irregular_and_globals_are_stride_zero() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(300_000, |r| p.observe_retired(r));
        let s = p.stats();
        assert!(s.fraction(0) > 0.2, "global counter gives a stride-0 share");
        assert!(s.other > s.counts[1], "pointer chasing is not stride-1");
    }
}

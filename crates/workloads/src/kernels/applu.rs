//! `applu` analogue: blocked SSOR-style relaxation with mixed strides.
//!
//! `applu` factors and relaxes 5×5 blocks; after loop optimisation some of its
//! accesses become stride 2 and stride 4 (§2 of the paper).  The kernel mixes
//! a stride-1 blocked multiply-accumulate pass with stride-2 and stride-4
//! reduction passes over the same data.

use super::util::{f, x};
use sdv_isa::{ArchReg, Asm, Program};

const ELEMS: usize = 5 * 1024;

/// Builds the kernel with `scale` relaxation sweeps.
#[must_use]
pub fn build(scale: u64) -> Program {
    let mut a = Asm::new();
    let data = a.data_f64(&super::util::random_f64s(0xa1, ELEMS));
    let out = a.alloc(ELEMS * 8, 8);
    let coeffs = a.data_f64(&[0.11, 0.23, 0.31, 0.17, 0.18]);

    let (outer, n, addr, dst, tmp) = (x(1), x(2), x(3), x(4), x(5));
    let (data_base, out_base) = (x(20), x(21));
    let (c0, c1, c2, c3, c4) = (f(10), f(11), f(12), f(13), f(14));
    let (v, acc) = (f(1), f(2));
    a.li(tmp, coeffs as i64);
    a.fld(c0, tmp, 0);
    a.fld(c1, tmp, 8);
    a.fld(c2, tmp, 16);
    a.fld(c3, tmp, 24);
    a.fld(c4, tmp, 32);
    a.li(data_base, data as i64);
    a.li(out_base, out as i64);
    a.li(outer, scale.max(1) as i64);
    a.label("sweep");
    // Pass 1: blocked stride-1 multiply-accumulate over 5-element blocks.
    a.mv(addr, data_base);
    a.mv(dst, out_base);
    a.li(n, (ELEMS / 5) as i64);
    a.label("block");
    a.fld(v, addr, 0);
    a.fmul(acc, v, c0);
    a.fld(v, addr, 8);
    a.fmul(v, v, c1);
    a.fadd(acc, acc, v);
    a.fld(v, addr, 16);
    a.fmul(v, v, c2);
    a.fadd(acc, acc, v);
    a.fld(v, addr, 24);
    a.fmul(v, v, c3);
    a.fadd(acc, acc, v);
    a.fld(v, addr, 32);
    a.fmul(v, v, c4);
    a.fadd(acc, acc, v);
    a.fsd(acc, dst, 0);
    a.addi(addr, addr, 40);
    a.addi(dst, dst, 8);
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "block");
    // Pass 2: stride-2 reduction (every other element).
    a.mv(addr, data_base);
    a.li(n, (ELEMS / 2) as i64);
    a.fsub(acc, acc, acc); // acc = 0.0
    a.label("stride2");
    a.fld(v, addr, 0);
    a.fadd(acc, acc, v);
    a.addi(addr, addr, 16);
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "stride2");
    a.fsd(acc, out_base, 0);
    // Pass 3: stride-4 reduction.
    a.mv(addr, data_base);
    a.li(n, (ELEMS / 4) as i64);
    a.fsub(acc, acc, acc);
    a.label("stride4");
    a.fld(v, addr, 0);
    a.fadd(acc, acc, v);
    a.addi(addr, addr, 32);
    a.addi(n, n, -1);
    a.bne(n, ArchReg::ZERO, "stride4");
    a.fsd(acc, out_base, 8);
    a.addi(outer, outer, -1);
    a.bne(outer, ArchReg::ZERO, "sweep");
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdv_emu::Emulator;

    #[test]
    fn stride_two_reduction_matches_reference() {
        let mut emu = Emulator::new(&build(1));
        emu.run(10_000_000);
        assert!(emu.halted());
        let src = super::super::util::random_f64s(0xa1, ELEMS);
        let expected: f64 = src.iter().step_by(2).sum();
        let out_base = sdv_isa::program::DATA_BASE + (ELEMS * 8) as u64;
        let got = emu.memory().read_f64(out_base);
        assert!(
            (got - expected).abs() < 1e-6,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn strides_one_two_and_four_appear() {
        use sdv_emu::StrideProfiler;
        let mut p = StrideProfiler::new();
        let mut emu = Emulator::new(&build(1));
        emu.run_with(400_000, |r| p.observe_retired(r));
        let s = p.stats();
        assert!(s.counts[2] > 0, "stride 2 present");
        assert!(s.counts[4] > 0, "stride 4 present");
        assert!(
            s.counts[5] > 0,
            "the blocked pass advances 5 elements per block"
        );
    }
}

//! Table 1: the processor microarchitectural parameters.

use crate::{PortKind, ProcessorConfig};
use std::fmt;

/// A renderable description of one column of Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Column header ("4-way" or "8-way").
    pub name: &'static str,
    /// The configuration the simulator actually uses.
    pub config: ProcessorConfig,
}

impl Table1 {
    /// The 4-way column of Table 1 (with `ports` data-cache ports).
    #[must_use]
    pub fn four_way(ports: usize, kind: PortKind) -> Self {
        Table1 {
            name: "4-way",
            config: ProcessorConfig::four_way(ports, kind),
        }
    }

    /// The 8-way column of Table 1.
    #[must_use]
    pub fn eight_way(ports: usize, kind: PortKind) -> Self {
        Table1 {
            name: "8-way",
            config: ProcessorConfig::eight_way(ports, kind),
        }
    }

    /// The parameter rows as `(parameter, value)` pairs, in the paper's order.
    #[must_use]
    pub fn rows(&self) -> Vec<(&'static str, String)> {
        let c = &self.config;
        let dv = sdv_core::DvConfig::default();
        vec![
            ("Fetch width", format!("{} instructions (up to 1 taken branch)", c.fetch_width)),
            (
                "I-cache",
                format!(
                    "{}KB, {}-way, {}-byte lines",
                    c.memory.l1i.size_bytes / 1024,
                    c.memory.l1i.ways,
                    c.memory.l1i.line_bytes
                ),
            ),
            ("Branch predictor", format!("Gshare with {}K entries", c.predictor.gshare_entries / 1024)),
            ("Inst. window size", format!("{} entries", c.rob_size)),
            (
                "Scalar functional units",
                format!(
                    "{} int ALU(1); {} int mul/div(2/12); {} FP add(2); {} FP mul/div(4/14); 1 to {} loads/stores",
                    c.scalar_fus.int_alu.count,
                    c.scalar_fus.int_mul.count,
                    c.scalar_fus.fp_add.count,
                    c.scalar_fus.fp_mul.count,
                    c.dcache_ports,
                ),
            ),
            ("Load/store queue", format!("{} entries with store-load forwarding", c.lsq_size)),
            ("Issue mechanism", format!("{}-way out-of-order issue", c.issue_width)),
            (
                "D-cache",
                format!(
                    "{}KB, {}-way, {}-byte lines, 1 cycle hit, up to {} outstanding misses",
                    c.memory.l1d.size_bytes / 1024,
                    c.memory.l1d.ways,
                    c.memory.l1d.line_bytes,
                    c.memory.max_outstanding_misses
                ),
            ),
            (
                "L2 cache",
                format!(
                    "{}KB, {}-way, {}-byte lines, {} cycles hit",
                    c.memory.l2.size_bytes / 1024,
                    c.memory.l2.ways,
                    c.memory.l2.line_bytes,
                    c.memory.l2_hit_cycles
                ),
            ),
            ("Commit width", format!("{} instructions", c.commit_width)),
            (
                "Vector registers",
                format!("{} registers of {} 64-bit elements each", dv.vector_registers, dv.vector_length),
            ),
            (
                "Vector functional units",
                format!(
                    "pipelined; {} int ALU; {} int mul/div; {} FP add; {} FP mul/div; 1 to {} loads",
                    c.vector_fus.int_alu.count,
                    c.vector_fus.int_mul.count,
                    c.vector_fus.fp_add.count,
                    c.vector_fus.fp_mul.count,
                    c.dcache_ports
                ),
            ),
            ("TL", format!("{}-way set assoc. with {} sets", dv.tl_ways, dv.tl_sets)),
            ("VRMT", format!("{}-way set assoc. with {} sets", dv.vrmt_ways, dv.vrmt_sets)),
        ]
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1 — {} configuration", self.name)?;
        for (param, value) in self.rows() {
            writeln!(f, "  {param:<26} {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_reflect_table1() {
        let four = Table1::four_way(1, PortKind::Wide);
        let eight = Table1::eight_way(4, PortKind::Scalar);
        assert_eq!(four.config.rob_size, 128);
        assert_eq!(eight.config.rob_size, 256);
        let rows = four.rows();
        assert_eq!(rows.len(), 14);
        let text = four.to_string();
        assert!(text.contains("Gshare with 64K entries"));
        assert!(text.contains("128 registers of 4 64-bit elements"));
        assert!(text.contains("4-way set assoc. with 512 sets"));
        let text8 = eight.to_string();
        assert!(text8.contains("8-way out-of-order issue"));
        assert!(text8.contains("256 entries"));
    }
}

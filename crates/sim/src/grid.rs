//! Declarative sweep grids.
//!
//! A [`SweepGrid`] describes a cartesian product of machine widths, L1
//! data-cache port counts, wide-bus widths and memory front-end variants; it
//! expands into [`CellSpec`] descriptors (one per processor configuration)
//! without running anything.  Execution and deduplication belong to the
//! [`crate::RunEngine`]; Figures 11/12 and the `port_sweep` example are
//! projections over the expanded grid.
//!
//! ```
//! use sdv_sim::{MachineWidth, SweepGrid, Variant};
//!
//! // The paper's Figure 11/12 grid: 2 widths × 3 port counts × 3 variants.
//! assert_eq!(SweepGrid::paper().cells().len(), 18);
//!
//! // The extended §4.3 surface: add the bus-width axis and more ports.
//! let grid = SweepGrid::new()
//!     .ports(vec![1, 2, 4, 8])
//!     .bus_words(vec![2, 4, 8]);
//! assert_eq!(grid.cells().len(), 2 * 4 * 3 * 3);
//! let cell = &grid.cells()[0];
//! assert_eq!(cell.label(), cell.config.label());
//! ```

use crate::{MachineWidth, ProcessorConfig, Variant};
use sdv_uarch::DEFAULT_BUS_WORDS;

/// One expanded grid point: the coordinates plus the configuration they
/// produce.  The label always comes from the configuration itself.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Machine issue width.
    pub width: MachineWidth,
    /// Number of L1 data-cache ports.
    pub ports: usize,
    /// Wide-bus width in 64-bit elements (scalar variants ignore it).
    pub bus_words: usize,
    /// Memory front-end variant.
    pub variant: Variant,
    /// The processor configuration for this grid point.
    pub config: ProcessorConfig,
}

impl CellSpec {
    /// The paper-style label (`1pnoIM`, `2pV`, `4pVb8`, …), derived from the
    /// configuration.
    #[must_use]
    pub fn label(&self) -> String {
        self.config.label()
    }
}

/// A declarative cartesian sweep over
/// `{width} × {ports} × {bus width} × {variant}`.
///
/// Defaults to the paper's grid: both Table 1 widths, `[1, 2, 4]` ports, the
/// 4-element bus, all three variants.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    widths: Vec<MachineWidth>,
    ports: Vec<usize>,
    bus_words: Vec<usize>,
    variants: Vec<Variant>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid::new()
    }
}

impl SweepGrid {
    /// The paper's default grid (identical to [`SweepGrid::paper`]).
    #[must_use]
    pub fn new() -> Self {
        SweepGrid {
            widths: MachineWidth::all().to_vec(),
            ports: vec![1, 2, 4],
            bus_words: vec![DEFAULT_BUS_WORDS],
            variants: Variant::all().to_vec(),
        }
    }

    /// The `{4-way, 8-way} × {1, 2, 4} ports × {noIM, IM, V}` grid behind
    /// Figures 11 and 12.
    #[must_use]
    pub fn paper() -> Self {
        SweepGrid::new()
    }

    /// Replaces the machine-width axis.
    #[must_use]
    pub fn widths(mut self, widths: Vec<MachineWidth>) -> Self {
        assert!(!widths.is_empty(), "a grid needs at least one width");
        self.widths = widths;
        self
    }

    /// Replaces the port-count axis.
    #[must_use]
    pub fn ports(mut self, ports: Vec<usize>) -> Self {
        assert!(!ports.is_empty(), "a grid needs at least one port count");
        self.ports = ports;
        self
    }

    /// Replaces the wide-bus-width axis (in 64-bit elements per access).
    #[must_use]
    pub fn bus_words(mut self, bus_words: Vec<usize>) -> Self {
        assert!(!bus_words.is_empty(), "a grid needs at least one bus width");
        self.bus_words = bus_words;
        self
    }

    /// Replaces the variant axis.
    #[must_use]
    pub fn variants(mut self, variants: Vec<Variant>) -> Self {
        assert!(!variants.is_empty(), "a grid needs at least one variant");
        self.variants = variants;
        self
    }

    /// Expands the cartesian product into cell descriptors, in
    /// width-major / ports / bus / variant-minor order.
    ///
    /// Note that scalar-bus cells are configuration-identical across the bus
    /// axis; the [`crate::RunEngine`] deduplicates them, so requesting a wide
    /// grid never simulates the scalar baseline more than once.
    #[must_use]
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(
            self.widths.len() * self.ports.len() * self.bus_words.len() * self.variants.len(),
        );
        for &width in &self.widths {
            for &ports in &self.ports {
                for &bus_words in &self.bus_words {
                    for &variant in &self.variants {
                        cells.push(CellSpec {
                            width,
                            ports,
                            bus_words,
                            variant,
                            config: variant.config_with_bus(width, ports, bus_words),
                        });
                    }
                }
            }
        }
        cells
    }

    /// Number of cells the grid expands to.
    #[must_use]
    pub fn len(&self) -> usize {
        self.widths.len() * self.ports.len() * self.bus_words.len() * self.variants.len()
    }

    /// Whether the grid is empty (it never is: every axis asserts non-empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_grid_matches_figures_11_and_12() {
        let cells = SweepGrid::paper().cells();
        assert_eq!(cells.len(), 18);
        let labels: Vec<String> = cells.iter().map(CellSpec::label).collect();
        for expected in ["1pnoIM", "1pIM", "1pV", "2pV", "4pnoIM", "4pV"] {
            assert!(labels.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn expansion_is_a_full_cartesian_product() {
        let grid = SweepGrid::new()
            .widths(vec![MachineWidth::FourWay, MachineWidth::Custom(2)])
            .ports(vec![1, 8])
            .bus_words(vec![2, 8])
            .variants(vec![Variant::WideBus, Variant::Vectorized]);
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.len());
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert!(!grid.is_empty());
        // Every coordinate combination appears exactly once.
        let coords: HashSet<(usize, usize, usize, bool)> = cells
            .iter()
            .map(|c| {
                (
                    c.width.issue_width(),
                    c.ports,
                    c.bus_words,
                    c.variant.vectorized(),
                )
            })
            .collect();
        assert_eq!(coords.len(), cells.len());
    }

    #[test]
    fn scalar_cells_collapse_across_the_bus_axis() {
        let grid = SweepGrid::new()
            .widths(vec![MachineWidth::FourWay])
            .ports(vec![1])
            .bus_words(vec![2, 4, 8])
            .variants(vec![Variant::ScalarBus]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 3);
        let unique: HashSet<&ProcessorConfig> = cells.iter().map(|c| &c.config).collect();
        assert_eq!(unique.len(), 1, "one unique config to simulate");
    }

    #[test]
    #[should_panic(expected = "at least one port count")]
    fn empty_axes_are_rejected() {
        let _ = SweepGrid::new().ports(Vec::new());
    }
}

//! Declarative sweep grids.
//!
//! A [`SweepGrid`] describes a cartesian product of machine widths, L1
//! data-cache port counts, wide-bus widths and memory front-end variants; it
//! expands into [`CellSpec`] descriptors (one per processor configuration)
//! without running anything.  Execution and deduplication belong to the
//! [`crate::RunEngine`]; Figures 11/12 and the `port_sweep` example are
//! projections over the expanded grid.
//!
//! ```
//! use sdv_sim::{MachineWidth, SweepGrid, Variant};
//!
//! // The paper's Figure 11/12 grid: 2 widths × 3 port counts × 3 variants.
//! assert_eq!(SweepGrid::paper().cells().len(), 18);
//!
//! // The extended §4.3 surface: add the bus-width axis and more ports.
//! let grid = SweepGrid::new()
//!     .ports(vec![1, 2, 4, 8])
//!     .bus_words(vec![2, 4, 8]);
//! assert_eq!(grid.cells().len(), 2 * 4 * 3 * 3);
//! let cell = &grid.cells()[0];
//! assert_eq!(cell.label(), cell.config.label());
//! ```

use crate::{MachineWidth, ProcessorConfig, Variant};
use sdv_uarch::DEFAULT_BUS_WORDS;

/// One expanded grid point: the coordinates plus the configuration they
/// produce.  The label always comes from the configuration itself.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Machine issue width.
    pub width: MachineWidth,
    /// Number of L1 data-cache ports.
    pub ports: usize,
    /// Wide-bus width in 64-bit elements (scalar variants ignore it).
    pub bus_words: usize,
    /// DV vector length in elements (non-vectorizing variants ignore it).
    pub vector_length: usize,
    /// DV vector-register count (non-vectorizing variants ignore it).
    pub vector_registers: usize,
    /// Memory front-end variant.
    pub variant: Variant,
    /// The processor configuration for this grid point.
    pub config: ProcessorConfig,
}

impl CellSpec {
    /// The paper-style label (`1pnoIM`, `2pV`, `4pVb8`, …), derived from the
    /// configuration.
    #[must_use]
    pub fn label(&self) -> String {
        self.config.label()
    }
}

/// A declarative cartesian sweep over
/// `{width} × {ports} × {bus width} × {variant}`.
///
/// Defaults to the paper's grid: both Table 1 widths, `[1, 2, 4]` ports, the
/// 4-element bus, all three variants.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    widths: Vec<MachineWidth>,
    ports: Vec<usize>,
    bus_words: Vec<usize>,
    vector_lengths: Vec<usize>,
    vector_registers: Vec<usize>,
    variants: Vec<Variant>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid::new()
    }
}

impl SweepGrid {
    /// The paper's default grid (identical to [`SweepGrid::paper`]).
    #[must_use]
    pub fn new() -> Self {
        let paper_dv = sdv_core::DvConfig::default();
        SweepGrid {
            widths: MachineWidth::all().to_vec(),
            ports: vec![1, 2, 4],
            bus_words: vec![DEFAULT_BUS_WORDS],
            vector_lengths: vec![paper_dv.vector_length],
            vector_registers: vec![paper_dv.vector_registers],
            variants: Variant::all().to_vec(),
        }
    }

    /// The `{4-way, 8-way} × {1, 2, 4} ports × {noIM, IM, V}` grid behind
    /// Figures 11 and 12.
    #[must_use]
    pub fn paper() -> Self {
        SweepGrid::new()
    }

    /// Replaces the machine-width axis.
    #[must_use]
    pub fn widths(mut self, widths: Vec<MachineWidth>) -> Self {
        assert!(!widths.is_empty(), "a grid needs at least one width");
        self.widths = widths;
        self
    }

    /// Replaces the port-count axis.
    #[must_use]
    pub fn ports(mut self, ports: Vec<usize>) -> Self {
        assert!(!ports.is_empty(), "a grid needs at least one port count");
        self.ports = ports;
        self
    }

    /// Replaces the wide-bus-width axis (in 64-bit elements per access).
    #[must_use]
    pub fn bus_words(mut self, bus_words: Vec<usize>) -> Self {
        assert!(!bus_words.is_empty(), "a grid needs at least one bus width");
        self.bus_words = bus_words;
        self
    }

    /// Replaces the DV vector-length axis (elements per vector register).
    /// Only the vectorizing variant distinguishes these cells; the baselines
    /// collapse across the axis and deduplicate in the engine.
    #[must_use]
    pub fn vector_lengths(mut self, vector_lengths: Vec<usize>) -> Self {
        assert!(
            !vector_lengths.is_empty(),
            "a grid needs at least one vector length"
        );
        self.vector_lengths = vector_lengths;
        self
    }

    /// Replaces the DV vector-register-count axis.
    #[must_use]
    pub fn vector_registers(mut self, vector_registers: Vec<usize>) -> Self {
        assert!(
            !vector_registers.is_empty(),
            "a grid needs at least one register count"
        );
        self.vector_registers = vector_registers;
        self
    }

    /// Replaces the variant axis.
    #[must_use]
    pub fn variants(mut self, variants: Vec<Variant>) -> Self {
        assert!(!variants.is_empty(), "a grid needs at least one variant");
        self.variants = variants;
        self
    }

    /// Expands the cartesian product into cell descriptors, in
    /// width-major / ports / bus / vector-length / registers / variant-minor
    /// order.
    ///
    /// Note that cells which ignore an axis (the scalar baseline along the
    /// bus axis, every non-vectorizing variant along the DV axes) are
    /// configuration-identical; the [`crate::RunEngine`] deduplicates them,
    /// so requesting a wide grid never simulates a baseline more than once.
    #[must_use]
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.len());
        for &width in &self.widths {
            for &ports in &self.ports {
                for &bus_words in &self.bus_words {
                    for &vector_length in &self.vector_lengths {
                        for &vector_registers in &self.vector_registers {
                            for &variant in &self.variants {
                                cells.push(CellSpec {
                                    width,
                                    ports,
                                    bus_words,
                                    vector_length,
                                    vector_registers,
                                    variant,
                                    config: variant.config_with_dv(
                                        width,
                                        ports,
                                        bus_words,
                                        vector_length,
                                        vector_registers,
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// Number of cells the grid expands to.
    #[must_use]
    pub fn len(&self) -> usize {
        self.widths.len()
            * self.ports.len()
            * self.bus_words.len()
            * self.vector_lengths.len()
            * self.vector_registers.len()
            * self.variants.len()
    }

    /// Whether the grid is empty (it never is: every axis asserts non-empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_grid_matches_figures_11_and_12() {
        let cells = SweepGrid::paper().cells();
        assert_eq!(cells.len(), 18);
        let labels: Vec<String> = cells.iter().map(CellSpec::label).collect();
        for expected in ["1pnoIM", "1pIM", "1pV", "2pV", "4pnoIM", "4pV"] {
            assert!(labels.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn expansion_is_a_full_cartesian_product() {
        let grid = SweepGrid::new()
            .widths(vec![MachineWidth::FourWay, MachineWidth::Custom(2)])
            .ports(vec![1, 8])
            .bus_words(vec![2, 8])
            .variants(vec![Variant::WideBus, Variant::Vectorized]);
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.len());
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert!(!grid.is_empty());
        // Every coordinate combination appears exactly once.
        let coords: HashSet<(usize, usize, usize, bool)> = cells
            .iter()
            .map(|c| {
                (
                    c.width.issue_width(),
                    c.ports,
                    c.bus_words,
                    c.variant.vectorized(),
                )
            })
            .collect();
        assert_eq!(coords.len(), cells.len());
    }

    #[test]
    fn scalar_cells_collapse_across_the_bus_axis() {
        let grid = SweepGrid::new()
            .widths(vec![MachineWidth::FourWay])
            .ports(vec![1])
            .bus_words(vec![2, 4, 8])
            .variants(vec![Variant::ScalarBus]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 3);
        let unique: HashSet<&ProcessorConfig> = cells.iter().map(|c| &c.config).collect();
        assert_eq!(unique.len(), 1, "one unique config to simulate");
    }

    #[test]
    #[should_panic(expected = "at least one port count")]
    fn empty_axes_are_rejected() {
        let _ = SweepGrid::new().ports(Vec::new());
    }

    #[test]
    fn dv_sizing_axes_expand_and_only_affect_the_vectorized_variant() {
        let grid = SweepGrid::new()
            .widths(vec![MachineWidth::FourWay])
            .ports(vec![1])
            .vector_lengths(vec![4, 8])
            .vector_registers(vec![64, 128]);
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.len());
        assert_eq!(cells.len(), 2 * 2 * 3);
        // The vectorized variant distinguishes all four sizings...
        let v_labels: HashSet<String> = cells
            .iter()
            .filter(|c| c.variant == Variant::Vectorized)
            .map(CellSpec::label)
            .collect();
        assert_eq!(v_labels.len(), 4);
        assert!(
            v_labels.contains("1pV"),
            "paper sizing keeps the paper label"
        );
        assert!(v_labels.contains("1pVl8r64"));
        // ...while each baseline collapses to one unique configuration.
        for variant in [Variant::ScalarBus, Variant::WideBus] {
            let unique: HashSet<&ProcessorConfig> = cells
                .iter()
                .filter(|c| c.variant == variant)
                .map(|c| &c.config)
                .collect();
            assert_eq!(unique.len(), 1, "{variant:?} ignores the DV axes");
        }
        // The DV sizing really reaches the configuration.
        let big = cells
            .iter()
            .find(|c| c.variant == Variant::Vectorized && c.vector_length == 8)
            .expect("vl=8 cell");
        assert_eq!(big.config.vectorization.expect("dv on").vector_length, 8);
    }
}

//! CSV export for the figure generators.
//!
//! The `repro` binary prints human-readable tables; for plotting the
//! reproduction against the paper it is more convenient to have the same data
//! as CSV.  Every function here is pure (string in-memory), so callers decide
//! where to write.

use crate::figures::{Fig1, Fig13, Fig15, Fig7, PortSweep, WorkloadSeries};

/// Escapes nothing (all our fields are simple), just joins cells with commas.
fn row<I: IntoIterator<Item = String>>(cells: I) -> String {
    cells.into_iter().collect::<Vec<_>>().join(",")
}

/// CSV for Figure 1: `stride,specint_fraction,specfp_fraction`.
#[must_use]
pub fn fig1_csv(fig: &Fig1) -> String {
    let mut out = String::from("stride,specint,specfp\n");
    for s in 0..10 {
        out.push_str(&row([
            s.to_string(),
            fig.int.fraction(s).to_string(),
            fig.fp.fraction(s).to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// CSV for any per-workload series (Figures 3, 9, 10, 14): `workload,value`.
#[must_use]
pub fn series_csv(series: &WorkloadSeries) -> String {
    let mut out = String::from("workload,value\n");
    for (w, v) in &series.rows {
        out.push_str(&row([w.name().to_string(), v.to_string()]));
        out.push('\n');
    }
    out.push_str(&row(["INT".to_string(), series.int_mean().to_string()]));
    out.push('\n');
    out.push_str(&row(["FP".to_string(), series.fp_mean().to_string()]));
    out.push('\n');
    out
}

/// CSV for Figure 7: `workload,real_ipc,ideal_ipc`.
#[must_use]
pub fn fig7_csv(fig: &Fig7) -> String {
    let mut out = String::from("workload,real_ipc,ideal_ipc\n");
    for (w, real, ideal) in &fig.rows {
        out.push_str(&row([
            w.name().to_string(),
            real.to_string(),
            ideal.to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// CSV for the Figure 11/12 sweep (and extended §4.3 grids):
/// `width,config,bus_words,vl,vregs,workload,ipc,port_occupancy`.
///
/// Configuration-identical cells (the scalar baseline repeated along the bus
/// axis, the non-vectorizing variants along the DV-sizing axes) are emitted
/// once — [`PortSweep::unique_cells`], the same filter the `Fig11`/`Fig12`
/// text output uses.
#[must_use]
pub fn sweep_csv(sweep: &PortSweep) -> String {
    let mut out = String::from("width,config,bus_words,vl,vregs,workload,ipc,port_occupancy\n");
    for cell in sweep.unique_cells() {
        let dv = cell.spec.config.vectorization;
        for (w, stats) in &cell.suite.runs {
            out.push_str(&row([
                cell.spec.width.label(),
                cell.label(),
                cell.spec.config.bus_words().to_string(),
                dv.map_or_else(|| "-".to_string(), |d| d.vector_length.to_string()),
                dv.map_or_else(|| "-".to_string(), |d| d.vector_registers.to_string()),
                w.name().to_string(),
                stats.ipc().to_string(),
                stats.port_occupancy().to_string(),
            ]));
            out.push('\n');
        }
    }
    out
}

/// CSV for the engine's per-cell wall-clock accounting:
/// `config,workload,cycles,wall_seconds,cycles_per_second`.
#[must_use]
pub fn timing_csv(timing: &crate::EngineTiming) -> String {
    let mut out = String::from("config,workload,cycles,wall_seconds,cycles_per_second\n");
    for cell in &timing.cells {
        out.push_str(&row([
            cell.label.clone(),
            cell.workload.name().to_string(),
            cell.cycles.to_string(),
            cell.wall.as_secs_f64().to_string(),
            cell.cycles_per_second().to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// Minimal JSON string escaping (labels and workload names are plain ASCII,
/// but quotes/backslashes must never corrupt the document).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable JSON for the engine's wall-clock accounting — the payload
/// behind `repro --timing-json` and the CI perf-regression gate
/// (`tools/timing_diff.py` compares `cycles_per_second` against a committed
/// `BENCH_*.json` baseline).
#[must_use]
pub fn timing_json(timing: &crate::EngineTiming) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"sdv-engine-timing/1\",\n");
    out.push_str(&format!("  \"cells\": {},\n", timing.cells.len()));
    out.push_str(&format!(
        "  \"simulated_cycles\": {},\n",
        timing.simulated_cycles
    ));
    out.push_str(&format!(
        "  \"wall_seconds\": {},\n",
        timing.wall.as_secs_f64()
    ));
    out.push_str(&format!(
        "  \"session_seconds\": {},\n",
        timing.session.as_secs_f64()
    ));
    out.push_str(&format!(
        "  \"cycles_per_second\": {},\n",
        timing.cycles_per_second()
    ));
    out.push_str("  \"per_cell\": [\n");
    for (i, cell) in timing.cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"workload\": \"{}\", \"cycles\": {}, \
             \"wall_seconds\": {}, \"cycles_per_second\": {}}}{}\n",
            json_escape(&cell.label),
            json_escape(cell.workload.name()),
            cell.cycles,
            cell.wall.as_secs_f64(),
            cell.cycles_per_second(),
            if i + 1 == timing.cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Machine-readable metrics for a whole engine session — the payload behind
/// `repro --metrics-json` (schema `sdv-obs-metrics/1`, see
/// `docs/OBSERVABILITY.md`).  Folds the engine's live observability registry
/// (pipeline cycle attribution, cache/store instrumentation) together with
/// the [`crate::EngineReport`] counters and [`crate::EngineTiming`]
/// wall-clock accounting, so one document carries everything
/// `sdv-obs summarize` / `sdv-obs diff` need.  This supersedes
/// [`timing_json`]: every `sdv-engine-timing/1` field appears here under an
/// `engine.timing.*` or `engine.cell.*` name.
#[must_use]
pub fn metrics_json(engine: &crate::RunEngine) -> String {
    let mut registry = engine.obs().snapshot();
    let report = engine.report();
    registry.add_counter("engine.cells.requested", report.requested);
    registry.add_counter("engine.cells.simulated", report.simulated);
    registry.add_counter("engine.cells.failed", report.failed_cells);
    registry.add_counter("engine.store.hits", report.store_hits);
    registry.add_counter("engine.store.misses", report.store_misses);
    registry.add_counter("engine.store.inserts", report.store_inserts);
    registry.add_counter("engine.store.persist_retries", engine.persist_retries());
    if let Some(rate) = report.store_hit_rate() {
        registry.set_gauge("engine.store.hit_rate", rate);
    }
    registry.set_gauge(
        "engine.store.degraded",
        if engine.store_degraded() { 1.0 } else { 0.0 },
    );
    let timing = engine.timing();
    registry.add_counter("engine.timing.simulated_cycles", timing.simulated_cycles);
    registry.set_gauge("engine.timing.wall_seconds", timing.wall.as_secs_f64());
    registry.set_gauge(
        "engine.timing.session_seconds",
        timing.session.as_secs_f64(),
    );
    registry.set_gauge(
        "engine.timing.cycles_per_second",
        timing.cycles_per_second(),
    );
    for cell in &timing.cells {
        let stem = format!("engine.cell.{}.{}", cell.label, cell.workload.name());
        registry.add_counter(&format!("{stem}.cycles"), cell.cycles);
        registry.set_gauge(&format!("{stem}.wall_seconds"), cell.wall.as_secs_f64());
        registry.set_gauge(
            &format!("{stem}.cycles_per_second"),
            cell.cycles_per_second(),
        );
    }
    registry.to_json()
}

/// CSV for Figure 13: `workload,used1,used2,used3,used4,unused`.
#[must_use]
pub fn fig13_csv(fig: &Fig13) -> String {
    let mut out = String::from("workload,used1,used2,used3,used4,unused\n");
    for (w, used, unused) in &fig.rows {
        out.push_str(&row([
            w.name().to_string(),
            used[0].to_string(),
            used[1].to_string(),
            used[2].to_string(),
            used[3].to_string(),
            unused.to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// CSV for Figure 15: `workload,computed_used,computed_not_used,not_computed`.
#[must_use]
pub fn fig15_csv(fig: &Fig15) -> String {
    let mut out = String::from("workload,computed_used,computed_not_used,not_computed\n");
    for (w, used, not_used, not_comp) in &fig.rows {
        out.push_str(&row([
            w.name().to_string(),
            used.to_string(),
            not_used.to_string(),
            not_comp.to_string(),
        ]));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{fig1, fig13, fig15, fig3, fig7, port_sweep};
    use crate::runner::RunConfig;
    use crate::{MachineWidth, RunEngine, SweepGrid, Workload};

    fn engine() -> RunEngine {
        RunEngine::new(RunConfig {
            scale: 1,
            max_insts: 6_000,
        })
    }

    const WS: [Workload; 2] = [Workload::Compress, Workload::Swim];

    #[test]
    fn fig1_csv_has_ten_stride_rows() {
        let csv = fig1_csv(&fig1(&engine(), &WS));
        assert_eq!(csv.lines().count(), 11);
        assert!(csv.starts_with("stride,specint,specfp"));
    }

    #[test]
    fn series_csv_includes_means() {
        let csv = series_csv(&fig3(&engine(), &WS));
        assert!(csv.contains("compress,"));
        assert!(csv.contains("swim,"));
        assert!(csv.contains("INT,"));
        assert!(csv.contains("FP,"));
    }

    #[test]
    fn fig7_and_fig13_and_fig15_csvs_have_one_row_per_workload() {
        let engine = engine();
        assert_eq!(fig7_csv(&fig7(&engine, &WS)).lines().count(), 1 + WS.len());
        assert_eq!(
            fig13_csv(&fig13(&engine, &WS)).lines().count(),
            1 + WS.len()
        );
        assert_eq!(
            fig15_csv(&fig15(&engine, &WS)).lines().count(),
            1 + WS.len()
        );
    }

    #[test]
    fn sweep_csv_covers_every_cell_and_workload() {
        let grid = SweepGrid::new()
            .widths(vec![MachineWidth::FourWay])
            .ports(vec![1]);
        let sweep = port_sweep(&engine(), &WS, &grid);
        let csv = sweep_csv(&sweep);
        // 3 variants × 2 workloads + header.
        assert_eq!(csv.lines().count(), 1 + 3 * WS.len());
        assert!(csv.contains("4-way,1pV,4,4,128,swim,"));
        assert!(csv.contains("4-way,1pnoIM,1,-,-,"));
    }

    #[test]
    fn sweep_csv_collapses_identical_scalar_cells_across_the_bus_axis() {
        let grid = SweepGrid::new()
            .widths(vec![MachineWidth::FourWay])
            .ports(vec![1])
            .bus_words(vec![2, 4, 8]);
        let sweep = port_sweep(&engine(), &[Workload::Compress], &grid);
        let csv = sweep_csv(&sweep);
        // 1 scalar cell + 3 IM + 3 V cells, one workload each, plus header.
        assert_eq!(csv.lines().count(), 1 + 7);
        assert_eq!(csv.matches("1pnoIM").count(), 1);
        assert!(csv.contains("4-way,1pVb8,8,4,128,compress,"));
    }

    #[test]
    fn sweep_csv_covers_the_dv_sizing_axes() {
        let grid = SweepGrid::new()
            .widths(vec![MachineWidth::FourWay])
            .ports(vec![1])
            .vector_lengths(vec![4, 8])
            .vector_registers(vec![64, 128])
            .variants(vec![crate::Variant::Vectorized]);
        let sweep = port_sweep(&engine(), &[Workload::Compress], &grid);
        let csv = sweep_csv(&sweep);
        assert_eq!(csv.lines().count(), 1 + 4, "2 lengths × 2 register counts");
        assert!(csv.contains("4-way,1pV,4,4,128,"));
        assert!(csv.contains("4-way,1pVl8r64,4,8,64,"));
        assert!(csv.contains("4-way,1pVr64,4,4,64,"));
    }

    #[test]
    fn timing_csv_lists_simulated_cells() {
        let engine = engine();
        let _ = fig3(&engine, &[Workload::Compress]);
        let csv = timing_csv(&engine.timing());
        assert!(csv.starts_with("config,workload,cycles,wall_seconds"));
        assert_eq!(csv.lines().count(), 2, "one simulated cell");
        assert!(csv.contains("compress"));
    }

    #[test]
    fn metrics_json_folds_registry_report_and_timing() {
        let engine = engine().with_obs(sdv_obs::ObsLevel::Metrics);
        let _ = fig3(&engine, &[Workload::Compress]);
        let json = metrics_json(&engine);
        let reg = sdv_obs::MetricsRegistry::from_json(&json).expect("parses back");
        assert_eq!(reg.counter("engine.cells.simulated"), Some(1));
        assert!(reg.counter("pipeline.cycles.committing").unwrap_or(0) > 0);
        assert!(reg.gauge("engine.timing.cycles_per_second").is_some());
        assert!(
            reg.counter("engine.cell.1pV.compress.cycles").is_some()
                || reg.counter("engine.cell.1pnoIM.compress.cycles").is_some(),
            "per-cell timing is folded in: {json}"
        );
        assert_eq!(reg.gauge("engine.store.degraded"), Some(0.0));
    }

    #[test]
    fn timing_json_is_well_formed() {
        let engine = engine();
        let _ = fig3(&engine, &[Workload::Compress, Workload::Swim]);
        let json = timing_json(&engine.timing());
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"sdv-engine-timing/1\""));
        assert!(json.contains("\"cells\": 2"));
        assert!(json.contains("\"cycles_per_second\": "));
        assert!(json.contains("\"workload\": \"compress\""));
        // Exactly one per-cell row per simulated cell, comma-separated.
        assert_eq!(json.matches("\"config\":").count(), 2);
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}

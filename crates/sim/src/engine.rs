//! The deduplicating, parallel experiment engine.
//!
//! Every measurement in this crate boils down to simulating a *cell*: one
//! `(processor configuration, workload, run budget)` triple.  Different
//! figures ask for heavily overlapping cell sets — the headline comparison,
//! Figure 11 and Figure 12 all contain the `1pV` suite, for example — so the
//! [`RunEngine`] content-hashes each cell, memoizes results for the whole
//! session, and executes the unique cells of a batch across a configurable
//! thread pool with deterministic (input-order) results.
//!
//! ```
//! use sdv_sim::{ProcessorConfig, RunConfig, RunEngine, Workload};
//!
//! let engine = RunEngine::new(RunConfig::quick()).with_threads(2);
//! let cfg = ProcessorConfig::builder().vectorization(true).build();
//! let suite = engine.suite(&[Workload::Compress, Workload::Swim], &cfg);
//! assert!(suite.mean(|s| s.ipc()) > 0.0);
//! // Re-running the same cells is free:
//! let again = engine.suite(&[Workload::Compress, Workload::Swim], &cfg);
//! assert_eq!(engine.report().simulated, 2);
//! assert_eq!(engine.report().requested, 4);
//! assert_eq!(suite.runs, again.runs);
//! ```

use crate::cachefile;
use crate::runner::{RunConfig, SuiteResult};
use crate::{ProcessorConfig, Workload};
use sdv_isa::Program;
use sdv_obs::{Obs, ObsLevel};
use sdv_uarch::RunStats;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Recovers the guarded data from a possibly-poisoned lock.
///
/// Worker-cell panics are caught by the supervisor before they can unwind
/// through a held engine lock, but a panic elsewhere (a caller thread dying
/// mid-batch) must not deadlock or poison every later session sharing the
/// engine — the guarded structures here (memo maps, counters, timing) are
/// valid at every lock release point, so recovering the data is sound.
fn recover<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The content identity of one simulation: configuration, workload and budget.
///
/// Two cells with equal keys produce bit-identical [`RunStats`] (the simulator
/// is deterministic), which is what makes memoization sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// The processor configuration.
    pub config: ProcessorConfig,
    /// The workload.
    pub workload: Workload,
    /// Outer-iteration scale passed to [`Workload::build`].
    pub scale: u64,
    /// Maximum simulated (committed) instructions.
    pub max_insts: u64,
}

/// Why a supervised cell failed instead of producing statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CellFailure {
    /// The simulation exceeded its per-cell cycle-budget watchdog
    /// (see [`RunEngine::with_cycle_budget`]).
    CycleBudget,
    /// The simulation panicked (a modelling bug or a poisoned input).
    Panic,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellFailure::CycleBudget => write!(f, "cycle-budget exceeded"),
            CellFailure::Panic => write!(f, "panic"),
        }
    }
}

/// Per-cell diagnostics for a supervised simulation that failed.
///
/// The supervisor ([`RunEngine::run_cells`]) catches the failure, records it,
/// and keeps the rest of the sweep going; callers read the tally from
/// [`EngineReport::failed_cells`] and the details from
/// [`RunEngine::failures`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// The configuration label (`1pV`, `4pnoIM`, …).
    pub label: String,
    /// The workload that failed.
    pub workload: Workload,
    /// How the cell failed.
    pub kind: CellFailure,
    /// The panic message (or watchdog diagnostic).
    pub message: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {}/{} FAILED ({}): {}",
            self.label, self.workload, self.kind, self.message
        )
    }
}

/// Session counters: how much work the engine was asked for vs. actually did,
/// and how effective the attached persistent store was.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Cells requested by generators (including repeats).
    pub requested: u64,
    /// Unique cells actually simulated.
    pub simulated: u64,
    /// Unique cells whose supervised simulation failed (panic or watchdog);
    /// details via [`RunEngine::failures`].
    pub failed_cells: u64,
    /// Unique cells served from the persistent result store.
    pub store_hits: u64,
    /// Unique cells the store was probed for but did not hold (each one then
    /// had to be simulated).
    pub store_misses: u64,
    /// Entries [`RunEngine::persist`] newly added to the store this session.
    pub store_inserts: u64,
}

impl EngineReport {
    /// Requests served from the memo cache instead of being re-simulated.
    #[must_use]
    pub fn deduplicated(&self) -> u64 {
        self.requested.saturating_sub(self.simulated)
    }

    /// Fraction of store probes that hit, if any probes happened — the
    /// "100% store hits" signal of a fully warmed re-run.
    #[must_use]
    pub fn store_hit_rate(&self) -> Option<f64> {
        let probes = self.store_hits + self.store_misses;
        (probes > 0).then(|| self.store_hits as f64 / probes as f64)
    }
}

impl std::fmt::Display for EngineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "run engine: {} unique cells simulated, {} of {} requests served from cache",
            self.simulated,
            self.deduplicated(),
            self.requested
        )?;
        if let Some(rate) = self.store_hit_rate() {
            write!(
                f,
                " (store: {} hits, {} misses, {} inserts — {:.0}% hit rate)",
                self.store_hits,
                self.store_misses,
                self.store_inserts,
                rate * 100.0
            )?;
        } else if self.store_inserts > 0 {
            write!(f, " (store: {} inserts)", self.store_inserts)?;
        }
        if self.failed_cells > 0 {
            write!(
                f,
                "; {} cell{} FAILED",
                self.failed_cells,
                if self.failed_cells == 1 { "" } else { "s" }
            )?;
        }
        Ok(())
    }
}

/// Wall-clock accounting for one simulated cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// The configuration label (`1pV`, `4pnoIM`, …).
    pub label: String,
    /// The workload simulated.
    pub workload: Workload,
    /// Simulated cycles the run produced.
    pub cycles: u64,
    /// Wall-clock time the simulation took.
    pub wall: Duration,
}

impl CellTiming {
    /// Simulated cycles per wall-clock second for this cell.
    #[must_use]
    pub fn cycles_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.cycles as f64 / secs
        }
    }
}

/// Aggregate wall-clock statistics for every cell an engine simulated.
///
/// `wall` sums per-cell simulation time across worker threads (CPU time of
/// the simulations, not batch latency); `session` is the elapsed time since
/// the engine was created.  The headline throughput metric is
/// [`EngineTiming::cycles_per_second`].
#[derive(Debug, Clone, Default)]
pub struct EngineTiming {
    /// Sum of per-cell wall-clock times.
    pub wall: Duration,
    /// Wall-clock time since the engine was created.
    pub session: Duration,
    /// Total simulated cycles across all simulated cells.
    pub simulated_cycles: u64,
    /// Per-cell timings, in simulation-completion order.
    pub cells: Vec<CellTiming>,
}

impl EngineTiming {
    /// Simulated cycles per second of simulation wall-clock.
    #[must_use]
    pub fn cycles_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.simulated_cycles as f64 / secs
        }
    }

    /// The slowest cell, if any was simulated.
    #[must_use]
    pub fn slowest(&self) -> Option<&CellTiming> {
        self.cells.iter().max_by_key(|c| c.wall)
    }
}

impl std::fmt::Display for EngineTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "engine timing: {} cells, {} simulated cycles in {:.3}s of simulation \
             ({:.0} cycles/s; session wall-clock {:.3}s)",
            self.cells.len(),
            self.simulated_cycles,
            self.wall.as_secs_f64(),
            self.cycles_per_second(),
            self.session.as_secs_f64()
        )?;
        if let Some(slow) = self.slowest() {
            write!(
                f,
                "; slowest cell {}/{} at {:.3}s",
                slow.label,
                slow.workload,
                slow.wall.as_secs_f64()
            )?;
        }
        Ok(())
    }
}

/// How many newly simulated results accumulate before [`RunEngine`] persists
/// them to an attached store on its own (see
/// [`RunEngine::with_persist_every`]).
pub const DEFAULT_PERSIST_EVERY: u64 = 64;

/// Default bounded-retry count for transient store I/O failures during
/// [`RunEngine::persist`] (see [`RunEngine::with_max_retries`]).
pub const DEFAULT_MAX_RETRIES: u32 = 2;

/// Deduplicating, memoizing, parallel executor for simulation cells.
///
/// The engine owns the run budget ([`RunConfig`]) so that every generator
/// built on top of it shares one memo space.  Results are deterministic and
/// independent of the thread count: unique cells are simulated in first-seen
/// order slots and each individual simulation is single-threaded.
///
/// ```
/// use sdv_sim::{PortKind, ProcessorConfig, RunConfig, RunEngine, Workload};
///
/// let engine = RunEngine::new(RunConfig::quick()).with_threads(2);
/// let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
/// let first = engine.run_cell(&cfg, Workload::Compress);
/// let again = engine.run_cell(&cfg, Workload::Compress); // memo hit
/// assert_eq!(first, again);
/// assert_eq!(engine.report().simulated, 1);
/// ```
///
/// Attach a store directory with [`Self::with_disk_cache`] to reuse results
/// across processes; long sweeps then persist automatically every
/// [`DEFAULT_PERSIST_EVERY`] new results (see [`Self::with_persist_every`]).
pub struct RunEngine {
    rc: RunConfig,
    threads: usize,
    cache: Mutex<HashMap<CellKey, RunStats>>,
    requested: AtomicU64,
    simulated: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_inserts: AtomicU64,
    timing: Mutex<EngineTiming>,
    created: Instant,
    /// The persistent result store sessions are served from and persisted to.
    store: Option<sdv_store::Store>,
    /// Persist automatically once this many new results accumulate (0 = off).
    persist_every: u64,
    /// Newly simulated results not yet flushed by a periodic persist.
    unpersisted: AtomicU64,
    /// Pre-flight verdicts memoized by program content hash: `None` = clean,
    /// `Some(summary)` = rejected with that error summary.
    preflight: Mutex<HashMap<u64, Option<String>>>,
    /// Per-cell watchdog: a supervised simulation may spend at most this many
    /// simulated cycles (`u64::MAX` = unbounded).
    cycle_budget: u64,
    /// Retries (with exponential backoff) for transient store I/O failures
    /// during [`Self::persist`].
    max_retries: u32,
    /// Failed cells, memoized so a panicking cell is attempted exactly once
    /// per session.
    failed: Mutex<HashMap<CellKey, CellError>>,
    failed_cells: AtomicU64,
    /// Set when the store proved unusable (unwritable, corrupt, full): the
    /// engine then runs on in-memory caching only — a loud warning is printed
    /// exactly once when this trips.
    store_disabled: AtomicBool,
    /// The session's observability handle (metrics registry + event tracer);
    /// defaults to [`ObsLevel::Off`], where every recording call is one
    /// branch.  Shared with the attached store (see [`Self::with_obs`]).
    obs: Arc<Obs>,
    /// Total persist-retry attempts this session (all threads).
    persist_retries: AtomicU64,
    /// Set once the first persist-retry warning has been printed: the stderr
    /// warning is emitted exactly once per session even under `--threads N`
    /// (later retries are counted, traced, and summarised at exit instead).
    persist_warned: AtomicBool,
    /// Test seam: runs inside the supervised worker before each simulation
    /// (fault injection for the supervision machinery itself).
    cell_hook: Option<CellHook>,
}

/// A callback run inside the supervised worker before each cell simulation —
/// the fault-injection seam for the supervision machinery itself (see
/// [`RunEngine::with_cell_hook`]).
pub type CellHook = Arc<dyn Fn(&CellKey) + Send + Sync>;

impl RunEngine {
    /// Creates a serial engine with the given run budget.
    #[must_use]
    pub fn new(rc: RunConfig) -> Self {
        RunEngine {
            rc,
            threads: 1,
            cache: Mutex::new(HashMap::new()),
            requested: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_inserts: AtomicU64::new(0),
            timing: Mutex::new(EngineTiming::default()),
            created: Instant::now(),
            store: None,
            persist_every: DEFAULT_PERSIST_EVERY,
            unpersisted: AtomicU64::new(0),
            preflight: Mutex::new(HashMap::new()),
            cycle_budget: u64::MAX,
            max_retries: DEFAULT_MAX_RETRIES,
            failed: Mutex::new(HashMap::new()),
            failed_cells: AtomicU64::new(0),
            store_disabled: AtomicBool::new(false),
            obs: Arc::new(Obs::default()),
            persist_retries: AtomicU64::new(0),
            persist_warned: AtomicBool::new(false),
            cell_hook: None,
        }
    }

    /// Sets the observability level for this session.  [`ObsLevel::Metrics`]
    /// records the metrics registry (including the pipeline cycle ledger of
    /// every simulated cell); [`ObsLevel::Trace`] additionally records
    /// ring-buffered trace events (per-cell spans, store I/O, supervision
    /// transitions).  The default, [`ObsLevel::Off`], reduces every
    /// recording site to one branch.
    ///
    /// An attached store is wrapped with the same handle (per-`IoOp`
    /// counters, lock-wait timing, repair events); attach order does not
    /// matter — [`Self::with_disk_cache`]/[`Self::with_store`] wire a store
    /// attached later into the already-configured handle.
    #[must_use]
    pub fn with_obs(mut self, level: ObsLevel) -> Self {
        self.obs = Arc::new(Obs::new(level));
        if let Some(store) = self.store.as_mut() {
            store.set_obs(Arc::clone(&self.obs));
        }
        self
    }

    /// The session's observability handle.
    #[must_use]
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Total store persist-retry attempts this session (the counter behind
    /// the exactly-once stderr warning; see [`Self::persist`]).
    #[must_use]
    pub fn persist_retries(&self) -> u64 {
        self.persist_retries.load(Ordering::Relaxed)
    }

    /// Attaches the sharded persistent result store in `dir`: previously
    /// persisted results are served without re-simulation, and
    /// [`Self::persist`] merges the session's results back in.  Entries are
    /// invalidated by content-hash mismatch (any configuration/workload/budget
    /// change misses) and whole shards by a simulator-behaviour fingerprint
    /// mismatch (results from a different build are invisible).
    ///
    /// A legacy single-file `cache.bin` found in `dir` is imported into the
    /// store on attach, so pre-store cache directories keep their contents.
    /// Failure to open the store degrades to running without one (a warning
    /// is printed); results are identical either way.
    #[must_use]
    pub fn with_disk_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        match sdv_store::Store::open(&dir, cachefile::simulator_fingerprint()) {
            Ok(store) => {
                let legacy = dir.join("cache.bin");
                if legacy.exists() {
                    if let Err(e) = cachefile::import_legacy(&store, &legacy) {
                        eprintln!(
                            "warning: could not import legacy cache {}: {e}",
                            legacy.display()
                        );
                    }
                }
                let mut store = store;
                if self.obs.level() != ObsLevel::Off {
                    store.set_obs(Arc::clone(&self.obs));
                }
                self.store = Some(store);
            }
            Err(e) => eprintln!(
                "warning: cannot use result store {}: {e}\n\
                 warning: falling back to in-memory caching only — results are \
                 correct but will not persist across runs (check that the path \
                 is a writable directory)",
                dir.display()
            ),
        }
        self
    }

    /// Attaches an already-open [`sdv_store::Store`] (the seam supervision
    /// and degradation tests use to inject fault-plan-backed stores; no
    /// legacy-cache import happens here).
    #[must_use]
    pub fn with_store(mut self, store: sdv_store::Store) -> Self {
        let mut store = store;
        if self.obs.level() != ObsLevel::Off {
            store.set_obs(Arc::clone(&self.obs));
        }
        self.store = Some(store);
        self
    }

    /// Sets the per-cell watchdog budget in *simulated cycles*: a supervised
    /// cell that exceeds it fails with [`CellFailure::CycleBudget`] instead
    /// of hanging the sweep.  `u64::MAX` (the default) never fires; normal
    /// runs are bit-identical either way.
    #[must_use]
    pub fn with_cycle_budget(mut self, max_cycles: u64) -> Self {
        self.cycle_budget = max_cycles;
        self
    }

    /// Sets how many times [`Self::persist`] retries a failed store write
    /// (with exponential backoff) before giving up.  The default is
    /// [`DEFAULT_MAX_RETRIES`].
    #[must_use]
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Test seam: `hook` runs inside the supervised worker immediately before
    /// each simulation, so tests can inject panics or delays into specific
    /// cells and prove the supervision machinery contains them.
    #[must_use]
    pub fn with_cell_hook(mut self, hook: CellHook) -> Self {
        self.cell_hook = Some(hook);
        self
    }

    /// Sets the periodic-persist window: with a store attached, the engine
    /// calls [`Self::persist`] on its own every time `n` new results have
    /// accumulated, so a crashed or killed sweep loses at most one window of
    /// simulation work.  `0` disables the automatic flush (results are then
    /// only written by an explicit [`Self::persist`] call).  The default is
    /// [`DEFAULT_PERSIST_EVERY`].
    ///
    /// An automatic flush that still fails after its retries degrades the
    /// engine to in-memory caching ([`Self::store_degraded`]) and keeps
    /// simulating.
    #[must_use]
    pub fn with_persist_every(mut self, n: u64) -> Self {
        self.persist_every = n;
        self
    }

    /// The attached result store's directory, if one is attached (and not
    /// degraded away).
    #[must_use]
    pub fn store_dir(&self) -> Option<&Path> {
        self.store().map(sdv_store::Store::dir)
    }

    /// The attached result store itself (e.g. to `verify` or `stats` it);
    /// `None` when no store is attached or the engine degraded to in-memory
    /// caching.
    #[must_use]
    pub fn store(&self) -> Option<&sdv_store::Store> {
        if self.store_disabled.load(Ordering::Relaxed) {
            return None;
        }
        self.store.as_ref()
    }

    /// Whether the engine gave up on its store and now caches in memory only
    /// (the store directory proved unwritable, corrupt, or full).
    #[must_use]
    pub fn store_degraded(&self) -> bool {
        self.store_disabled.load(Ordering::Relaxed)
    }

    /// Degrades to in-memory-only caching, warning loudly exactly once.
    fn degrade_store(&self, why: &std::io::Error) {
        if !self.store_disabled.swap(true, Ordering::SeqCst) {
            let dir = self
                .store
                .as_ref()
                .map(|s| s.dir().display().to_string())
                .unwrap_or_default();
            self.obs.instant(
                "store degraded",
                "store",
                &[("dir", dir.clone()), ("error", why.to_string())],
            );
            eprintln!(
                "warning: result store {dir} is unusable ({why}); \
                 DEGRADING to in-memory caching only — the sweep continues, \
                 but results from this session will not persist"
            );
        }
    }

    /// Merges every memoized result of this session into the attached store.
    /// Entries other sessions persisted concurrently survive (each shard
    /// write is a read–merge–write under the shard's writer lock), so a
    /// narrow run never shrinks a broad store.
    ///
    /// Transient I/O failures are retried up to [`Self::with_max_retries`]
    /// times with exponential backoff before the error surfaces.
    ///
    /// # Errors
    ///
    /// Propagates the last I/O error once retries are exhausted.  Does
    /// nothing when no store is attached (or the engine degraded to
    /// in-memory caching).
    pub fn persist(&self) -> std::io::Result<()> {
        let Some(store) = self.store() else {
            return Ok(());
        };
        let batch: Vec<(u128, Vec<u8>)> = {
            let cache = recover(self.cache.lock());
            cache
                .iter()
                .map(|(key, stats)| (cachefile::key_hash(key), cachefile::stats_to_bytes(stats)))
                .collect()
        };
        let mut delay = Duration::from_millis(10);
        let mut attempt = 0u32;
        loop {
            match store.put_batch(&batch) {
                Ok(put) => {
                    self.store_inserts
                        .fetch_add(put.inserted, Ordering::Relaxed);
                    return Ok(());
                }
                Err(e) if attempt < self.max_retries => {
                    attempt += 1;
                    self.note_persist_retry(&e, attempt, delay);
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Records one persist-retry attempt: counted and traced always, but the
    /// stderr warning is printed exactly once per session.  The print guard
    /// is a single atomic swap, so concurrent periodic persists from
    /// `--threads N` workers cannot race two warnings out (previously each
    /// attempt printed unconditionally).
    fn note_persist_retry(&self, e: &std::io::Error, attempt: u32, delay: Duration) {
        self.persist_retries.fetch_add(1, Ordering::Relaxed);
        self.obs.instant(
            "store persist retry",
            "store",
            &[
                ("attempt", format!("{attempt}/{}", self.max_retries)),
                ("backoff", format!("{delay:?}")),
                ("error", e.to_string()),
            ],
        );
        if !self.persist_warned.swap(true, Ordering::SeqCst) {
            eprintln!(
                "warning: store persist failed ({e}); retry {attempt}/{} in {delay:?} \
                 (further retries are counted silently — see the end-of-run summary)",
                self.max_retries
            );
        }
    }

    /// Wall-clock accounting for the cells this engine actually simulated.
    #[must_use]
    pub fn timing(&self) -> EngineTiming {
        let mut timing = recover(self.timing.lock()).clone();
        timing.session = self.created.elapsed();
        timing
    }

    /// Sets the number of worker threads used for a batch of unique cells
    /// (0 is treated as 1).  Results do not depend on this number.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// In-place version of [`Self::with_threads`]; the memo cache and session
    /// counters are untouched.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The run budget every cell is simulated with.
    #[must_use]
    pub fn run_config(&self) -> &RunConfig {
        &self.rc
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Session counters (cells requested vs. actually simulated).
    #[must_use]
    pub fn report(&self) -> EngineReport {
        EngineReport {
            requested: self.requested.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
            failed_cells: self.failed_cells.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_misses: self.store_misses.load(Ordering::Relaxed),
            store_inserts: self.store_inserts.load(Ordering::Relaxed),
        }
    }

    /// Every cell whose supervised simulation failed this session, sorted by
    /// configuration label and workload (deterministic order for reports).
    #[must_use]
    pub fn failures(&self) -> Vec<CellError> {
        let mut failures: Vec<CellError> = recover(self.failed.lock()).values().cloned().collect();
        failures.sort_by(|a, b| {
            (&a.label, a.workload.to_string()).cmp(&(&b.label, b.workload.to_string()))
        });
        failures
    }

    fn key(&self, cfg: &ProcessorConfig, workload: Workload) -> CellKey {
        CellKey {
            config: cfg.clone(),
            workload,
            scale: self.rc.scale,
            max_insts: self.rc.max_insts,
        }
    }

    /// Statically checks `workload` (built at this engine's scale) before any
    /// cycle is spent on it, memoized by program *content* hash: two workloads
    /// that build the same program share one verdict, and re-checking is a
    /// map lookup.
    ///
    /// # Errors
    ///
    /// Returns the summary of every error-severity `sdv-analyze` finding when
    /// the program fails [`preflight_program`].
    pub fn preflight(&self, workload: Workload) -> Result<(), String> {
        let program = workload.build(self.rc.scale);
        let hash = program_hash(&program);
        if let Some(verdict) = recover(self.preflight.lock()).get(&hash) {
            return match verdict {
                None => Ok(()),
                Some(summary) => Err(summary.clone()),
            };
        }
        let verdict = preflight_program(&program)
            .err()
            .map(|e| format!("{workload}: {e}"));
        recover(self.preflight.lock()).insert(hash, verdict.clone());
        match verdict {
            None => Ok(()),
            Some(summary) => Err(summary),
        }
    }

    /// Number of distinct programs the pre-flight memo holds (diagnostics /
    /// test introspection).
    #[must_use]
    pub fn preflight_cached_programs(&self) -> usize {
        recover(self.preflight.lock()).len()
    }

    /// Simulates one cell (through the cache).
    #[must_use]
    pub fn run_cell(&self, cfg: &ProcessorConfig, workload: Workload) -> RunStats {
        self.run_cells(&[(cfg.clone(), workload)])
            .pop()
            .expect("one cell in, one result out")
    }

    /// Runs every workload in `workloads` on `cfg`, as one parallel batch.
    #[must_use]
    pub fn suite(&self, workloads: &[Workload], cfg: &ProcessorConfig) -> SuiteResult {
        self.suites(workloads, std::slice::from_ref(cfg))
            .pop()
            .expect("one config in, one suite out")
    }

    /// Runs every workload on every configuration as a *single* batch (so the
    /// whole cross product shares one thread-pool dispatch), returning one
    /// [`SuiteResult`] per configuration in input order.
    #[must_use]
    pub fn suites(&self, workloads: &[Workload], cfgs: &[ProcessorConfig]) -> Vec<SuiteResult> {
        let cells: Vec<(ProcessorConfig, Workload)> = cfgs
            .iter()
            .flat_map(|cfg| workloads.iter().map(move |&w| (cfg.clone(), w)))
            .collect();
        let mut stats = self.run_cells(&cells).into_iter();
        cfgs.iter()
            .map(|_| SuiteResult {
                runs: workloads
                    .iter()
                    .map(|&w| (w, stats.next().expect("one result per cell")))
                    .collect(),
            })
            .collect()
    }

    /// Simulates a batch of cells, returning results in input order.
    ///
    /// Cells already in the session cache are not re-simulated; cells repeated
    /// within the batch are simulated once.  The unique misses execute on up
    /// to [`Self::threads`] worker threads, each simulation *supervised*: a
    /// panicking or watchdog-stopped cell is caught, recorded as a
    /// [`CellError`] (tallied in [`EngineReport::failed_cells`], detailed by
    /// [`Self::failures`]), and returns all-zero [`RunStats`] in its input
    /// slot — the rest of the batch completes normally, and the failed cell
    /// is not retried within the session.
    ///
    /// The engine may itself be shared across caller threads.  Two concurrent
    /// batches that overlap can redundantly simulate an in-flight cell (the
    /// cache is only consulted at batch start), but results stay correct and
    /// [`Self::report`] still counts each unique cell once: `simulated`
    /// tracks cells entering the cache, not simulations performed.
    ///
    /// # Panics
    ///
    /// Panics if a cell's workload fails the static [`Self::preflight`] check
    /// (an in-tree [`Workload`] never does — `sdv-analyze`'s kernel test and
    /// the CI `check` step pin that).  Cells served from the session cache or
    /// the store skip the pre-flight: their programs already passed it when
    /// first simulated.
    #[must_use]
    pub fn run_cells(&self, cells: &[(ProcessorConfig, Workload)]) -> Vec<RunStats> {
        self.requested
            .fetch_add(cells.len() as u64, Ordering::Relaxed);
        let keys: Vec<CellKey> = cells.iter().map(|(c, w)| self.key(c, *w)).collect();

        // Collect the unique cells this batch actually needs to simulate;
        // cells present in the persistent store are promoted to the session
        // cache without simulation, and cells that already failed this
        // session are not attempted again.
        let misses: Vec<CellKey> = {
            let failed = recover(self.failed.lock());
            let mut cache = recover(self.cache.lock());
            let mut seen = HashSet::new();
            let mut misses = Vec::new();
            for key in &keys {
                if cache.contains_key(key) || failed.contains_key(key) || !seen.insert(key.clone())
                {
                    continue;
                }
                if let Some(store) = self.store() {
                    if let Some(stats) = store
                        .get(cachefile::key_hash(key))
                        .and_then(|payload| cachefile::stats_from_bytes(&payload))
                    {
                        cache.insert(key.clone(), stats);
                        self.store_hits.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    self.store_misses.fetch_add(1, Ordering::Relaxed);
                }
                misses.push(key.clone());
            }
            misses
        };

        // Pre-flight every workload about to be simulated: statically broken
        // programs are rejected before any simulation budget is spent.
        let mut checked = HashSet::new();
        for key in &misses {
            if checked.insert(key.workload) {
                if let Err(summary) = self.preflight(key.workload) {
                    panic!("run engine pre-flight rejected {summary}");
                }
            }
        }

        // Queue depth of this batch: how many unique cells actually need
        // simulating after dedup, memo and store probes.
        self.obs.observe(
            "engine.batch.queue_depth",
            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            misses.len() as f64,
        );

        // Simulate the misses into index-addressed slots: result order (and
        // content) is identical whatever the thread count.
        type CellOutcome = Result<(RunStats, Duration), CellError>;
        let slots: Vec<OnceLock<CellOutcome>> = misses.iter().map(|_| OnceLock::new()).collect();
        let workers = self.threads.min(misses.len());
        if workers <= 1 {
            for (key, slot) in misses.iter().zip(&slots) {
                slot.set(self.supervised_simulate(key))
                    .expect("slot written once");
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(key) = misses.get(i) else { break };
                        slots[i]
                            .set(self.supervised_simulate(key))
                            .expect("each slot is claimed by exactly one worker");
                    });
                }
            });
        }

        let mut cache = recover(self.cache.lock());
        let mut newly_cached = 0u64;
        for (key, slot) in misses.into_iter().zip(slots) {
            let (stats, wall) = match slot.into_inner().expect("all slots filled") {
                Ok(outcome) => outcome,
                Err(error) => {
                    eprintln!("warning: {error}");
                    self.obs.counter("engine.cells.errors", 1);
                    self.obs.instant(
                        "cell failed",
                        "engine",
                        &[
                            ("label", error.label.clone()),
                            ("workload", error.workload.to_string()),
                            ("kind", error.kind.to_string()),
                        ],
                    );
                    let mut failed = recover(self.failed.lock());
                    if let std::collections::hash_map::Entry::Vacant(e) = failed.entry(key) {
                        e.insert(error);
                        self.failed_cells.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
            };
            {
                let mut timing = recover(self.timing.lock());
                timing.wall += wall;
                timing.simulated_cycles += stats.cycles;
                timing.cells.push(CellTiming {
                    label: key.config.label(),
                    workload: key.workload,
                    cycles: stats.cycles,
                    wall,
                });
            }
            if let std::collections::hash_map::Entry::Vacant(e) = cache.entry(key) {
                e.insert(stats);
                newly_cached += 1;
            }
        }
        self.simulated.fetch_add(newly_cached, Ordering::Relaxed);
        let results = keys
            .iter()
            .map(|k| {
                cache
                    .get(k)
                    .cloned()
                    // A failed cell yields an all-zero record in its slot so
                    // the batch shape (and every other cell) survives.
                    .unwrap_or_else(|| RunStats::new(0))
            })
            .collect();
        drop(cache); // `persist` re-locks the session cache
        self.maybe_persist(newly_cached);
        results
    }

    /// Runs one cell under supervision: panics (including the cycle-budget
    /// watchdog's) are caught and classified instead of unwinding into the
    /// batch machinery.
    fn supervised_simulate(&self, key: &CellKey) -> Result<(RunStats, Duration), CellError> {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(hook) = &self.cell_hook {
                hook(key);
            }
            simulate_cell(key, self.cycle_budget, &self.obs)
        }));
        match outcome {
            Ok(timed) => Ok(timed),
            Err(payload) => {
                let message = panic_message(&*payload);
                let kind = if message.contains(sdv_uarch::CYCLE_BUDGET_EXCEEDED) {
                    CellFailure::CycleBudget
                } else {
                    CellFailure::Panic
                };
                Err(CellError {
                    label: key.config.label(),
                    workload: key.workload,
                    kind,
                    message,
                })
            }
        }
    }

    /// Periodic-persist bookkeeping: flushes the session cache to the store
    /// once enough new results have accumulated (see
    /// [`Self::with_persist_every`]).
    fn maybe_persist(&self, newly_cached: u64) {
        if self.store().is_none() || self.persist_every == 0 || newly_cached == 0 {
            return;
        }
        let pending = newly_cached + self.unpersisted.fetch_add(newly_cached, Ordering::Relaxed);
        if pending < self.persist_every {
            return;
        }
        self.unpersisted.store(0, Ordering::Relaxed);
        if let Err(e) = self.persist() {
            self.degrade_store(&e);
        }
    }
}

impl std::fmt::Debug for RunEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunEngine")
            .field("run_config", &self.rc)
            .field("threads", &self.threads)
            .field("report", &self.report())
            .finish_non_exhaustive()
    }
}

/// Content hash of a program: instructions plus the initial data image.
/// Workloads that assemble the same program share one pre-flight verdict.
fn program_hash(program: &Program) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    program.insts().hash(&mut h);
    for seg in program.data_segments() {
        seg.addr.hash(&mut h);
        seg.bytes.hash(&mut h);
    }
    h.finish()
}

/// The static check behind [`RunEngine::preflight`]: runs `sdv-analyze` over
/// `program` and summarizes any error-severity findings.
///
/// # Errors
///
/// Returns a `; `-joined summary of every error-severity diagnostic.
pub fn preflight_program(program: &Program) -> Result<(), String> {
    let errors: Vec<String> = sdv_analyze::check(program)
        .iter()
        .filter(|d| d.severity == sdv_analyze::Severity::Error)
        .map(std::string::ToString::to_string)
        .collect();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("; "))
    }
}

/// The one place a cell becomes a simulation.  The cycle-budget watchdog
/// panics (with [`sdv_uarch::CYCLE_BUDGET_EXCEEDED`] in the message) when the
/// budget is exhausted; the supervisor classifies that for the caller.
///
/// With metrics enabled the run records a cycle-attribution ledger and
/// exports it (plus the memory-hierarchy instrumentation) into the shared
/// registry; with tracing enabled the whole cell becomes one span.  Both
/// observe-only paths produce bit-identical [`RunStats`].
fn simulate_cell(key: &CellKey, max_cycles: u64, obs: &Obs) -> (RunStats, Duration) {
    let start = Instant::now();
    let t0 = obs.now_micros();
    let program = key.workload.build(key.scale);
    let stats = if obs.metrics_enabled() {
        let mut proc = sdv_uarch::Processor::new(&key.config, &program);
        proc.record_cycle_ledger(true);
        let stats = proc.run_bounded(key.max_insts, max_cycles);
        obs.with_registry(|registry| proc.obs_metrics(registry));
        stats
    } else {
        sdv_uarch::simulate_bounded(&key.config, &program, key.max_insts, max_cycles)
    };
    obs.span(
        "cell",
        "engine",
        t0,
        &[
            ("label", key.config.label()),
            ("workload", key.workload.to_string()),
            ("cycles", stats.cycles.to_string()),
        ],
    );
    (stats, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortKind;

    fn rc() -> RunConfig {
        RunConfig {
            scale: 1,
            max_insts: 8_000,
        }
    }

    #[test]
    fn cache_hits_do_not_resimulate() {
        let engine = RunEngine::new(rc());
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let first = engine.run_cell(&cfg, Workload::Compress);
        let second = engine.run_cell(&cfg, Workload::Compress);
        assert_eq!(first, second);
        let report = engine.report();
        assert_eq!(report.requested, 2);
        assert_eq!(report.simulated, 1);
        assert_eq!(report.deduplicated(), 1);
        assert!(report.to_string().contains("1 unique cells"));
    }

    #[test]
    fn in_batch_duplicates_simulate_once() {
        let engine = RunEngine::new(rc());
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let cells = vec![
            (cfg.clone(), Workload::Compress),
            (cfg.clone(), Workload::Swim),
            (cfg, Workload::Compress),
        ];
        let stats = engine.run_cells(&cells);
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0], stats[2]);
        assert_eq!(engine.report().simulated, 2);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let cfgs = [
            ProcessorConfig::four_way(1, PortKind::Wide),
            ProcessorConfig::four_way(2, PortKind::Scalar).with_vectorization(true),
        ];
        let ws = [Workload::Compress, Workload::Swim, Workload::Li];
        let serial = RunEngine::new(rc());
        let parallel = RunEngine::new(rc()).with_threads(4);
        assert_eq!(
            serial.suites(&ws, &cfgs),
            parallel.suites(&ws, &cfgs),
            "parallel execution must be bit-identical to serial"
        );
        assert_eq!(serial.report(), parallel.report());
    }

    #[test]
    fn timing_accounts_only_for_simulated_cells() {
        let engine = RunEngine::new(rc());
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let first = engine.run_cell(&cfg, Workload::Compress);
        let _ = engine.run_cell(&cfg, Workload::Compress); // cache hit
        let timing = engine.timing();
        assert_eq!(timing.cells.len(), 1, "cache hits are not timed");
        assert_eq!(timing.simulated_cycles, first.cycles);
        assert_eq!(timing.cells[0].label, cfg.label());
        assert_eq!(timing.cells[0].workload, Workload::Compress);
        assert!(timing.wall > Duration::ZERO);
        assert!(timing.cycles_per_second() > 0.0);
        assert!(timing.slowest().is_some());
        let text = timing.to_string();
        assert!(text.contains("cycles/s"), "{text}");
    }

    #[test]
    fn periodic_persist_flushes_without_an_explicit_call() {
        let dir = std::env::temp_dir().join(format!("sdv-engine-periodic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);

        // Window of 2: the first cell stays unflushed, the second batch
        // crosses the window and persists both on its own.
        let engine = RunEngine::new(rc())
            .with_disk_cache(&dir)
            .with_persist_every(2);
        let _ = engine.run_cell(&cfg, Workload::Compress);
        assert_eq!(engine.report().store_inserts, 0, "below the window");
        let _ = engine.run_cell(&cfg, Workload::Swim);
        assert_eq!(
            engine.report().store_inserts,
            2,
            "crossing the window flushes every accumulated result"
        );

        // A crashed sweep (no explicit persist) left both cells durable.
        let reader = RunEngine::new(rc()).with_disk_cache(&dir);
        let _ = reader.run_cell(&cfg, Workload::Compress);
        let _ = reader.run_cell(&cfg, Workload::Swim);
        assert_eq!(reader.report().store_hits, 2);
        assert_eq!(reader.report().simulated, 0);

        // `0` disables the automatic flush entirely.
        let manual = RunEngine::new(rc())
            .with_disk_cache(&dir)
            .with_persist_every(0);
        let _ = manual.run_cell(&cfg, Workload::Li);
        assert_eq!(manual.report().store_inserts, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_round_trips_between_engines() {
        let dir = std::env::temp_dir().join(format!("sdv-engine-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide).with_vectorization(true);

        let writer = RunEngine::new(rc()).with_disk_cache(&dir);
        let fresh = writer.run_cell(&cfg, Workload::Swim);
        assert_eq!(writer.report().simulated, 1);
        assert_eq!(writer.report().store_hits, 0);
        assert_eq!(writer.report().store_misses, 1);
        assert_eq!(writer.report().store_hit_rate(), Some(0.0));
        writer.persist().expect("store persisted");
        assert_eq!(writer.report().store_inserts, 1);
        assert_eq!(writer.store_dir(), Some(dir.as_path()));
        let store = writer.store().expect("store attached");
        assert!(store.verify().expect("verify runs").is_ok());
        assert_eq!(store.stats().expect("stats run").entries, 1);

        let reader = RunEngine::new(rc()).with_disk_cache(&dir);
        let cached = reader.run_cell(&cfg, Workload::Swim);
        assert_eq!(cached, fresh, "store hits are bit-identical");
        let report = reader.report();
        assert_eq!(report.simulated, 0, "nothing was re-simulated");
        assert_eq!(report.store_hits, 1);
        assert_eq!(report.store_misses, 0);
        assert_eq!(report.store_hit_rate(), Some(1.0));
        assert!(report.to_string().contains("100% hit rate"), "{report}");
        assert_eq!(reader.timing().cells.len(), 0, "store hits are not timed");
        reader.persist().expect("store persisted");
        assert_eq!(
            reader.report().store_inserts,
            0,
            "a fully warmed session adds nothing"
        );

        // A different budget is a different content hash: full miss — and
        // persisting this narrow session must not evict the earlier entry.
        let other = RunEngine::new(RunConfig {
            scale: 1,
            max_insts: 9_000,
        })
        .with_disk_cache(&dir);
        let _ = other.run_cell(&cfg, Workload::Swim);
        assert_eq!(other.report().simulated, 1);
        assert_eq!(other.report().store_hits, 0);
        other.persist().expect("store persisted");

        let merged = RunEngine::new(rc()).with_disk_cache(&dir);
        let _ = merged.run_cell(&cfg, Workload::Swim);
        assert_eq!(
            merged.report().store_hits,
            1,
            "the original entry survived the narrow session's persist"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observed_runs_are_bit_identical_and_recorded() {
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide).with_vectorization(true);
        let baseline = RunEngine::new(rc()).run_cell(&cfg, Workload::Compress);

        let observed = RunEngine::new(rc()).with_obs(ObsLevel::Trace);
        let stats = observed.run_cell(&cfg, Workload::Compress);
        assert_eq!(baseline, stats, "observation must not perturb results");

        let snap = observed.obs().snapshot();
        assert!(
            snap.counter("pipeline.cycles.committing").unwrap_or(0) > 0,
            "the cycle ledger was exported: {snap:?}"
        );
        let attributed: u64 = sdv_obs::CycleBucket::ALL
            .iter()
            .filter_map(|b| snap.counter(&format!("pipeline.cycles.{}", b.name())))
            .sum();
        assert_eq!(attributed, stats.cycles, "bucket-sum equals total cycles");
        assert!(
            snap.histogram("engine.batch.queue_depth").is_some(),
            "queue depth observed"
        );
        assert_eq!(observed.obs().dropped_events(), 0);
        assert!(
            observed.obs().trace_json().contains("\"name\": \"cell\""),
            "the cell span is in the trace"
        );
    }

    #[test]
    fn legacy_cache_files_are_imported_on_attach() {
        let dir = std::env::temp_dir().join(format!("sdv-engine-legacy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide).with_vectorization(true);
        let key = CellKey {
            config: cfg.clone(),
            workload: Workload::Compress,
            scale: rc().scale,
            max_insts: rc().max_insts,
        };
        let stats = super::simulate_cell(&key, u64::MAX, &Obs::default()).0;
        let mut entries = HashMap::new();
        entries.insert(key, stats.clone());
        cachefile::write_cache(&dir.join("cache.bin"), &entries, &HashMap::new())
            .expect("legacy cache written");

        // Attaching the store imports the legacy file: the cell hits.
        let engine = RunEngine::new(rc()).with_disk_cache(&dir);
        let served = engine.run_cell(&cfg, Workload::Compress);
        assert_eq!(served, stats, "legacy entries are served bit-identically");
        assert_eq!(engine.report().simulated, 0);
        assert_eq!(engine.report().store_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preflight_accepts_every_workload_and_memoizes_by_content() {
        let engine = RunEngine::new(rc());
        let all = Workload::extended();
        for &w in &all {
            engine.preflight(w).expect("in-tree kernels are clean");
        }
        let cached = engine.preflight_cached_programs();
        assert!(cached >= 1 && cached <= all.len());
        for &w in &all {
            engine.preflight(w).expect("memo hit stays clean");
        }
        assert_eq!(
            engine.preflight_cached_programs(),
            cached,
            "re-checks are content-hash memo hits"
        );
    }

    #[test]
    fn preflight_rejects_a_broken_program() {
        use sdv_isa::{ArchReg, Asm};
        let mut a = Asm::new();
        a.add(ArchReg::int(1), ArchReg::int(2), ArchReg::int(3)); // x2, x3 never written
        a.halt();
        let err = super::preflight_program(&a.finish()).expect_err("use-before-def is an error");
        assert!(err.contains("use-before-def"), "{err}");
    }

    #[test]
    fn run_cells_preflights_each_program_once() {
        let engine = RunEngine::new(rc());
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let _ = engine.run_cell(&cfg, Workload::Compress);
        assert_eq!(engine.preflight_cached_programs(), 1);
        // Cache hit: no new simulation, no new pre-flight entry.
        let _ = engine.run_cell(&cfg, Workload::Compress);
        // Different config, same workload: new cell, same program verdict.
        let _ = engine.run_cell(&cfg.with_vectorization(true), Workload::Compress);
        assert_eq!(engine.preflight_cached_programs(), 1);
    }

    #[test]
    fn suites_split_one_batch_per_config() {
        let engine = RunEngine::new(rc()).with_threads(2);
        let cfgs = [
            ProcessorConfig::four_way(1, PortKind::Wide),
            ProcessorConfig::four_way(1, PortKind::Wide).with_vectorization(true),
        ];
        let suites = engine.suites(&[Workload::Compress, Workload::Swim], &cfgs);
        assert_eq!(suites.len(), 2);
        for suite in &suites {
            assert_eq!(suite.runs.len(), 2);
            assert!(suite.mean(|s| s.ipc()) > 0.0);
        }
        assert_eq!(engine.report().simulated, 4);
    }

    #[test]
    fn panicking_cell_fails_typed_and_the_batch_completes() {
        let engine = RunEngine::new(rc())
            .with_threads(2)
            .with_cell_hook(Arc::new(|key: &CellKey| {
                if key.workload == Workload::Swim {
                    panic!("injected cell failure");
                }
            }));
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let cells = vec![
            (cfg.clone(), Workload::Compress),
            (cfg.clone(), Workload::Swim),
            (cfg, Workload::Li),
        ];
        let stats = engine.run_cells(&cells);
        assert_eq!(stats.len(), 3, "the batch keeps its shape");
        assert!(stats[0].cycles > 0);
        assert_eq!(
            stats[1],
            RunStats::new(0),
            "failed cell yields a zero record"
        );
        assert!(stats[2].cycles > 0);
        let report = engine.report();
        assert_eq!(report.failed_cells, 1);
        assert!(report.to_string().contains("FAILED"), "{report}");
        let failures = engine.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, CellFailure::Panic);
        assert_eq!(failures[0].workload, Workload::Swim);
        assert!(failures[0].message.contains("injected cell failure"));
        assert!(failures[0].to_string().contains("FAILED"));
    }

    #[test]
    fn cycle_budget_exhaustion_is_a_typed_failure() {
        let engine = RunEngine::new(rc()).with_cycle_budget(4);
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let stats = engine.run_cell(&cfg, Workload::Compress);
        assert_eq!(stats, RunStats::new(0));
        let failures = engine.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, CellFailure::CycleBudget);
        assert!(
            failures[0]
                .message
                .contains(sdv_uarch::CYCLE_BUDGET_EXCEEDED),
            "{}",
            failures[0].message
        );
    }

    #[test]
    fn failed_cells_are_memoized_and_not_retried() {
        let attempts = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&attempts);
        let engine = RunEngine::new(rc()).with_cell_hook(Arc::new(move |_key: &CellKey| {
            counter.fetch_add(1, Ordering::SeqCst);
            panic!("always fails");
        }));
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let _ = engine.run_cell(&cfg, Workload::Compress);
        let _ = engine.run_cell(&cfg, Workload::Compress);
        assert_eq!(
            attempts.load(Ordering::SeqCst),
            1,
            "a failed cell is never retried within the session"
        );
        assert_eq!(engine.report().failed_cells, 1);
    }

    #[test]
    fn persist_failure_degrades_to_in_memory_caching() {
        let dir = std::env::temp_dir().join(format!("sdv-engine-degrade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let io = Arc::new(sdv_store::FaultPlan::new().with_fault(
            sdv_store::IoOp::Write,
            0,
            sdv_store::Fault::Enospc,
        ));
        let store = sdv_store::Store::open_with_io(&dir, 1, io).expect("store opens");
        let engine = RunEngine::new(rc())
            .with_store(store)
            .with_persist_every(1)
            .with_max_retries(0);
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let stats = engine.run_cell(&cfg, Workload::Compress);
        assert!(stats.cycles > 0, "the simulation itself succeeds");
        assert!(
            engine.store_degraded(),
            "ENOSPC with no retries degrades to in-memory caching"
        );
        assert!(engine.store().is_none());
        assert!(engine.persist().is_ok(), "persist is a no-op once degraded");
        // Later cells keep working from the in-memory cache.
        let again = engine.run_cell(&cfg, Workload::Compress);
        assert_eq!(stats, again);
        assert_eq!(engine.report().simulated, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_store_errors_are_retried_then_persist() {
        let dir = std::env::temp_dir().join(format!("sdv-engine-retry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let io = Arc::new(sdv_store::FaultPlan::new().with_fault(
            sdv_store::IoOp::Write,
            0,
            sdv_store::Fault::Eio,
        ));
        let store = sdv_store::Store::open_with_io(&dir, 1, io).expect("store opens");
        let engine = RunEngine::new(rc())
            .with_store(store)
            .with_persist_every(1)
            .with_max_retries(2);
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let _ = engine.run_cell(&cfg, Workload::Compress);
        assert!(
            !engine.store_degraded(),
            "a transient EIO is absorbed by the retry loop"
        );
        let key = CellKey {
            config: cfg,
            workload: Workload::Compress,
            scale: rc().scale,
            max_insts: rc().max_insts,
        };
        let reopened = sdv_store::Store::open(&dir, 1).expect("store reopens");
        assert!(
            reopened.get(cachefile::key_hash(&key)).is_some(),
            "the retried persist landed on disk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

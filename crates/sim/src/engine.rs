//! The deduplicating, parallel experiment engine.
//!
//! Every measurement in this crate boils down to simulating a *cell*: one
//! `(processor configuration, workload, run budget)` triple.  Different
//! figures ask for heavily overlapping cell sets — the headline comparison,
//! Figure 11 and Figure 12 all contain the `1pV` suite, for example — so the
//! [`RunEngine`] content-hashes each cell, memoizes results for the whole
//! session, and executes the unique cells of a batch across a configurable
//! thread pool with deterministic (input-order) results.
//!
//! ```
//! use sdv_sim::{ProcessorConfig, RunConfig, RunEngine, Workload};
//!
//! let engine = RunEngine::new(RunConfig::quick()).with_threads(2);
//! let cfg = ProcessorConfig::builder().vectorization(true).build();
//! let suite = engine.suite(&[Workload::Compress, Workload::Swim], &cfg);
//! assert!(suite.mean(|s| s.ipc()) > 0.0);
//! // Re-running the same cells is free:
//! let again = engine.suite(&[Workload::Compress, Workload::Swim], &cfg);
//! assert_eq!(engine.report().simulated, 2);
//! assert_eq!(engine.report().requested, 4);
//! assert_eq!(suite.runs, again.runs);
//! ```

use crate::runner::{RunConfig, SuiteResult};
use crate::{ProcessorConfig, Workload};
use sdv_uarch::RunStats;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The content identity of one simulation: configuration, workload and budget.
///
/// Two cells with equal keys produce bit-identical [`RunStats`] (the simulator
/// is deterministic), which is what makes memoization sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// The processor configuration.
    pub config: ProcessorConfig,
    /// The workload.
    pub workload: Workload,
    /// Outer-iteration scale passed to [`Workload::build`].
    pub scale: u64,
    /// Maximum simulated (committed) instructions.
    pub max_insts: u64,
}

/// Session counters: how much work the engine was asked for vs. actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Cells requested by generators (including repeats).
    pub requested: u64,
    /// Unique cells actually simulated.
    pub simulated: u64,
}

impl EngineReport {
    /// Requests served from the memo cache instead of being re-simulated.
    #[must_use]
    pub fn deduplicated(&self) -> u64 {
        self.requested.saturating_sub(self.simulated)
    }
}

impl std::fmt::Display for EngineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "run engine: {} unique cells simulated, {} of {} requests served from cache",
            self.simulated,
            self.deduplicated(),
            self.requested
        )
    }
}

/// Deduplicating, memoizing, parallel executor for simulation cells.
///
/// The engine owns the run budget ([`RunConfig`]) so that every generator
/// built on top of it shares one memo space.  Results are deterministic and
/// independent of the thread count: unique cells are simulated in first-seen
/// order slots and each individual simulation is single-threaded.
pub struct RunEngine {
    rc: RunConfig,
    threads: usize,
    cache: Mutex<HashMap<CellKey, RunStats>>,
    requested: AtomicU64,
    simulated: AtomicU64,
}

impl RunEngine {
    /// Creates a serial engine with the given run budget.
    #[must_use]
    pub fn new(rc: RunConfig) -> Self {
        RunEngine {
            rc,
            threads: 1,
            cache: Mutex::new(HashMap::new()),
            requested: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
        }
    }

    /// Sets the number of worker threads used for a batch of unique cells
    /// (0 is treated as 1).  Results do not depend on this number.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// In-place version of [`Self::with_threads`]; the memo cache and session
    /// counters are untouched.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The run budget every cell is simulated with.
    #[must_use]
    pub fn run_config(&self) -> &RunConfig {
        &self.rc
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Session counters (cells requested vs. actually simulated).
    #[must_use]
    pub fn report(&self) -> EngineReport {
        EngineReport {
            requested: self.requested.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
        }
    }

    fn key(&self, cfg: &ProcessorConfig, workload: Workload) -> CellKey {
        CellKey {
            config: cfg.clone(),
            workload,
            scale: self.rc.scale,
            max_insts: self.rc.max_insts,
        }
    }

    /// Simulates one cell (through the cache).
    #[must_use]
    pub fn run_cell(&self, cfg: &ProcessorConfig, workload: Workload) -> RunStats {
        self.run_cells(&[(cfg.clone(), workload)])
            .pop()
            .expect("one cell in, one result out")
    }

    /// Runs every workload in `workloads` on `cfg`, as one parallel batch.
    #[must_use]
    pub fn suite(&self, workloads: &[Workload], cfg: &ProcessorConfig) -> SuiteResult {
        self.suites(workloads, std::slice::from_ref(cfg))
            .pop()
            .expect("one config in, one suite out")
    }

    /// Runs every workload on every configuration as a *single* batch (so the
    /// whole cross product shares one thread-pool dispatch), returning one
    /// [`SuiteResult`] per configuration in input order.
    #[must_use]
    pub fn suites(&self, workloads: &[Workload], cfgs: &[ProcessorConfig]) -> Vec<SuiteResult> {
        let cells: Vec<(ProcessorConfig, Workload)> = cfgs
            .iter()
            .flat_map(|cfg| workloads.iter().map(move |&w| (cfg.clone(), w)))
            .collect();
        let mut stats = self.run_cells(&cells).into_iter();
        cfgs.iter()
            .map(|_| SuiteResult {
                runs: workloads
                    .iter()
                    .map(|&w| (w, stats.next().expect("one result per cell")))
                    .collect(),
            })
            .collect()
    }

    /// Simulates a batch of cells, returning results in input order.
    ///
    /// Cells already in the session cache are not re-simulated; cells repeated
    /// within the batch are simulated once.  The unique misses execute on up
    /// to [`Self::threads`] worker threads.
    ///
    /// The engine may itself be shared across caller threads.  Two concurrent
    /// batches that overlap can redundantly simulate an in-flight cell (the
    /// cache is only consulted at batch start), but results stay correct and
    /// [`Self::report`] still counts each unique cell once: `simulated`
    /// tracks cells entering the cache, not simulations performed.
    #[must_use]
    pub fn run_cells(&self, cells: &[(ProcessorConfig, Workload)]) -> Vec<RunStats> {
        self.requested
            .fetch_add(cells.len() as u64, Ordering::Relaxed);
        let keys: Vec<CellKey> = cells.iter().map(|(c, w)| self.key(c, *w)).collect();

        // Collect the unique cells this batch actually needs to simulate.
        let misses: Vec<CellKey> = {
            let cache = self.cache.lock().expect("engine cache poisoned");
            let mut seen = HashSet::new();
            keys.iter()
                .filter(|k| !cache.contains_key(*k) && seen.insert((*k).clone()))
                .cloned()
                .collect()
        };

        // Simulate the misses into index-addressed slots: result order (and
        // content) is identical whatever the thread count.
        let slots: Vec<OnceLock<RunStats>> = misses.iter().map(|_| OnceLock::new()).collect();
        let workers = self.threads.min(misses.len());
        if workers <= 1 {
            for (key, slot) in misses.iter().zip(&slots) {
                slot.set(simulate_cell(key)).expect("slot written once");
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(key) = misses.get(i) else { break };
                        slots[i]
                            .set(simulate_cell(key))
                            .expect("each slot is claimed by exactly one worker");
                    });
                }
            });
        }

        let mut cache = self.cache.lock().expect("engine cache poisoned");
        let mut newly_cached = 0u64;
        for (key, slot) in misses.into_iter().zip(slots) {
            let stats = slot.into_inner().expect("all slots filled");
            if let std::collections::hash_map::Entry::Vacant(e) = cache.entry(key) {
                e.insert(stats);
                newly_cached += 1;
            }
        }
        self.simulated.fetch_add(newly_cached, Ordering::Relaxed);
        keys.iter()
            .map(|k| cache.get(k).expect("requested cell present").clone())
            .collect()
    }
}

impl std::fmt::Debug for RunEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunEngine")
            .field("run_config", &self.rc)
            .field("threads", &self.threads)
            .field("report", &self.report())
            .finish_non_exhaustive()
    }
}

/// The one place a cell becomes a simulation.
fn simulate_cell(key: &CellKey) -> RunStats {
    let program = key.workload.build(key.scale);
    sdv_uarch::simulate(&key.config, &program, key.max_insts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortKind;

    fn rc() -> RunConfig {
        RunConfig {
            scale: 1,
            max_insts: 8_000,
        }
    }

    #[test]
    fn cache_hits_do_not_resimulate() {
        let engine = RunEngine::new(rc());
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let first = engine.run_cell(&cfg, Workload::Compress);
        let second = engine.run_cell(&cfg, Workload::Compress);
        assert_eq!(first, second);
        let report = engine.report();
        assert_eq!(report.requested, 2);
        assert_eq!(report.simulated, 1);
        assert_eq!(report.deduplicated(), 1);
        assert!(report.to_string().contains("1 unique cells"));
    }

    #[test]
    fn in_batch_duplicates_simulate_once() {
        let engine = RunEngine::new(rc());
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let cells = vec![
            (cfg.clone(), Workload::Compress),
            (cfg.clone(), Workload::Swim),
            (cfg.clone(), Workload::Compress),
        ];
        let stats = engine.run_cells(&cells);
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0], stats[2]);
        assert_eq!(engine.report().simulated, 2);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let cfgs = [
            ProcessorConfig::four_way(1, PortKind::Wide),
            ProcessorConfig::four_way(2, PortKind::Scalar).with_vectorization(true),
        ];
        let ws = [Workload::Compress, Workload::Swim, Workload::Li];
        let serial = RunEngine::new(rc());
        let parallel = RunEngine::new(rc()).with_threads(4);
        assert_eq!(
            serial.suites(&ws, &cfgs),
            parallel.suites(&ws, &cfgs),
            "parallel execution must be bit-identical to serial"
        );
        assert_eq!(serial.report(), parallel.report());
    }

    #[test]
    fn suites_split_one_batch_per_config() {
        let engine = RunEngine::new(rc()).with_threads(2);
        let cfgs = [
            ProcessorConfig::four_way(1, PortKind::Wide),
            ProcessorConfig::four_way(1, PortKind::Wide).with_vectorization(true),
        ];
        let suites = engine.suites(&[Workload::Compress, Workload::Swim], &cfgs);
        assert_eq!(suites.len(), 2);
        for suite in &suites {
            assert_eq!(suite.runs.len(), 2);
            assert!(suite.mean(|s| s.ipc()) > 0.0);
        }
        assert_eq!(engine.report().simulated, 4);
    }
}

//! The unified experiment facade.
//!
//! An [`Experiment`] bundles a [`RunEngine`] (budget, thread pool, session
//! memo cache) with a workload list, and exposes every generator of the
//! paper's evaluation as a method.  All generators share the engine's cache,
//! so regenerating the full evaluation simulates each unique
//! `(config, workload)` cell exactly once — the `repro` binary reports the
//! resulting dedup via [`Experiment::report`].
//!
//! ```
//! use sdv_sim::{Experiment, RunConfig, Workload};
//!
//! let exp = Experiment::new(RunConfig::quick())
//!     .threads(2)
//!     .workloads(vec![Workload::Compress, Workload::Swim]);
//! let h = exp.headline();
//! assert!(h.ipc_1p_vect > 0.0);
//! // fig13 uses the same 1pV suite the headline already ran: zero new cells.
//! let before = exp.report().simulated;
//! let _ = exp.fig13();
//! assert_eq!(exp.report().simulated, before);
//! ```

use crate::engine::{CellError, EngineReport, EngineTiming, RunEngine};
use crate::figures::{
    fig1, fig10, fig13, fig14, fig15, fig3, fig7, fig9, headline, port_sweep, Fig1, Fig13, Fig15,
    Fig7, Headline, PortSweep, WorkloadSeries,
};
use crate::grid::SweepGrid;
use crate::runner::RunConfig;
use crate::Workload;

/// A session of the experiment API: one engine, one workload list, every
/// figure generator.
#[derive(Debug)]
pub struct Experiment {
    engine: RunEngine,
    workloads: Vec<Workload>,
}

impl Experiment {
    /// Creates a serial experiment over the full workload suite.
    #[must_use]
    pub fn new(rc: RunConfig) -> Self {
        Experiment {
            engine: RunEngine::new(rc),
            workloads: Workload::all().to_vec(),
        }
    }

    /// Sets the worker-thread count (results are identical for any value).
    /// The session memo cache and counters are preserved.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.engine.set_threads(threads);
        self
    }

    /// Sets the observability level (see [`RunEngine::with_obs`]): `Off`
    /// (default) costs one enum compare per probe, `Metrics` collects the
    /// registry behind `repro --metrics-json`, `Trace` additionally records
    /// Chrome-trace events.  Observation only — results are bit-identical at
    /// every level.  Call before [`Experiment::disk_cache`] or after; the
    /// handle is propagated to the store either way.
    #[must_use]
    pub fn obs(mut self, level: sdv_obs::ObsLevel) -> Self {
        self.engine = self.engine.with_obs(level);
        self
    }

    /// Attaches a persistent on-disk result cache in `dir` (see
    /// [`RunEngine::with_disk_cache`]).  Results are identical with or
    /// without the cache; only wall-clock changes.
    #[must_use]
    pub fn disk_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.engine = self.engine.with_disk_cache(dir);
        self
    }

    /// Persists the session's results to the attached disk cache, if any.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the cache file.
    pub fn persist(&self) -> std::io::Result<()> {
        self.engine.persist()
    }

    /// Wall-clock accounting for the cells this session actually simulated.
    #[must_use]
    pub fn timing(&self) -> EngineTiming {
        self.engine.timing()
    }

    /// Replaces the workload list.
    #[must_use]
    pub fn workloads(mut self, workloads: Vec<Workload>) -> Self {
        assert!(
            !workloads.is_empty(),
            "an experiment needs at least one workload"
        );
        self.workloads = workloads;
        self
    }

    /// Sets the store-persist retry budget (see
    /// [`RunEngine::with_max_retries`]).
    #[must_use]
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.engine = self.engine.with_max_retries(retries);
        self
    }

    /// Per-cell failure details for this session, sorted for stable output
    /// (see [`RunEngine::failures`]).
    #[must_use]
    pub fn failures(&self) -> Vec<CellError> {
        self.engine.failures()
    }

    /// The underlying engine (for custom cells next to the stock figures).
    #[must_use]
    pub fn engine(&self) -> &RunEngine {
        &self.engine
    }

    /// The workload list every generator uses.
    #[must_use]
    pub fn workload_list(&self) -> &[Workload] {
        &self.workloads
    }

    /// Session counters: cells requested vs. actually simulated.
    #[must_use]
    pub fn report(&self) -> EngineReport {
        self.engine.report()
    }

    /// Figure 1 — stride distribution (functional profiling).
    #[must_use]
    pub fn fig1(&self) -> Fig1 {
        fig1(&self.engine, &self.workloads)
    }

    /// Figure 3 — vectorizable instructions with unbounded resources.
    #[must_use]
    pub fn fig3(&self) -> WorkloadSeries {
        fig3(&self.engine, &self.workloads)
    }

    /// Figure 7 — decode blocking (real) vs not blocking (ideal).
    #[must_use]
    pub fn fig7(&self) -> Fig7 {
        fig7(&self.engine, &self.workloads)
    }

    /// Figure 9 — vector instances with non-zero source offsets.
    #[must_use]
    pub fn fig9(&self) -> WorkloadSeries {
        fig9(&self.engine, &self.workloads)
    }

    /// Figure 10 — control-flow-independent reuse after mispredictions.
    #[must_use]
    pub fn fig10(&self) -> WorkloadSeries {
        fig10(&self.engine, &self.workloads)
    }

    /// Figure 13 — useful words per wide-bus line read.
    #[must_use]
    pub fn fig13(&self) -> Fig13 {
        fig13(&self.engine, &self.workloads)
    }

    /// Figure 14 — validation-instruction percentage.
    #[must_use]
    pub fn fig14(&self) -> WorkloadSeries {
        fig14(&self.engine, &self.workloads)
    }

    /// Figure 15 — vector-register element usage.
    #[must_use]
    pub fn fig15(&self) -> Fig15 {
        fig15(&self.engine, &self.workloads)
    }

    /// The sweep behind Figures 11/12 (and any extended §4.3 grid).
    #[must_use]
    pub fn sweep(&self, grid: &SweepGrid) -> PortSweep {
        port_sweep(&self.engine, &self.workloads, grid)
    }

    /// The headline comparisons of §1/§6.
    #[must_use]
    pub fn headline(&self) -> Headline {
        headline(&self.engine, &self.workloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunConfig {
        RunConfig {
            scale: 1,
            max_insts: 8_000,
        }
    }

    #[test]
    fn defaults_cover_the_full_suite() {
        let exp = Experiment::new(quick());
        assert_eq!(exp.workload_list(), Workload::all());
        assert_eq!(exp.engine().threads(), 1);
        let exp = exp.threads(3).workloads(vec![Workload::Swim]);
        assert_eq!(exp.engine().threads(), 3);
        assert_eq!(exp.workload_list(), [Workload::Swim]);
    }

    #[test]
    fn generators_share_one_session_cache() {
        let exp = Experiment::new(quick()).workloads(vec![Workload::Compress, Workload::Swim]);
        let _ = exp.fig10(); // 4-way 1pV suite
        let after_fig10 = exp.report().simulated;
        let _ = exp.fig13(); // same configuration again
        assert_eq!(exp.report().simulated, after_fig10);
        let _ = exp.fig14(); // 8-way 1pV: new cells
        assert!(exp.report().simulated > after_fig10);
        assert!(exp.report().deduplicated() > 0);
    }

    #[test]
    fn changing_threads_keeps_the_session_cache() {
        let exp = Experiment::new(quick()).workloads(vec![Workload::Compress]);
        let _ = exp.fig10();
        let before = exp.report();
        let exp = exp.threads(4);
        let _ = exp.fig13(); // same 1pV cells as fig10
        let after = exp.report();
        assert_eq!(after.simulated, before.simulated);
        assert!(after.requested > before.requested);
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_workloads_are_rejected() {
        let _ = Experiment::new(quick()).workloads(Vec::new());
    }
}

//! Serialization glue between [`crate::RunEngine`] and the persistent result
//! store, plus the *legacy* single-file cache format it replaced.
//!
//! `CellKey → RunStats` entries persist in an [`sdv_store::Store`] (a sharded
//! directory of versioned binary files) so repeated `repro` invocations — and
//! CI jobs seeding developer machines — reuse earlier sessions instead of
//! re-simulating.  This module owns the two pieces the generic store does not
//! know about:
//!
//! * **Key and payload encoding** — [`key_hash`] turns a full `CellKey`
//!   (configuration, workload, budget) into a 128-bit content hash computed
//!   with two differently-seeded FNV-1a hashers (a stable algorithm, unlike
//!   `DefaultHasher`, so hashes survive toolchain updates), and
//!   [`stats_to_bytes`]/[`stats_from_bytes`] round-trip `RunStats` payloads.
//!   Every numeric field of `RunStats` is an integer counter, so the round
//!   trip is exact — a store hit returns bit-identical statistics.
//! * **Behaviour fingerprinting** — [`simulator_fingerprint`] hashes the
//!   statistics two canonical cells produce with the current binary, so
//!   editing the model invalidates results written by earlier builds instead
//!   of silently replaying their numbers.  The store records it per shard
//!   file (folded with the payload version, so a layout bump also
//!   invalidates); the legacy format records [`legacy_fingerprint`] — seeded
//!   exactly as pre-store builds seeded it — in its header, so genuine old
//!   `cache.bin` files still import when the model behaviour is unchanged.
//!
//! A configuration change therefore simply misses the store; a payload-layout
//! change bumps `CACHE_VERSION`; and results from a different build are
//! invisible.
//!
//! The pre-store format — one `cache.bin` per directory — survives as a read
//! path: [`import_legacy`] merges such a file into a store, and `RunEngine`
//! invokes it automatically when it finds one next to its store directory.

use crate::engine::CellKey;
use crate::{PortKind, ProcessorConfig, Workload};
use sdv_core::{DvStats, ElementUsage};
use sdv_mem::{CacheStats, PortStats, WideBusStats};
use sdv_uarch::RunStats;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::OnceLock;

const MAGIC: &[u8; 4] = b"SDVC";
/// Bump whenever the serialized layout (or the hashed key content) changes.
const CACHE_VERSION: u32 = 2;

/// A 64-bit FNV-1a hasher: trivially stable across Rust releases, which the
/// standard library's `DefaultHasher` explicitly is not.
struct Fnv1a(u64);

impl Fnv1a {
    fn seeded(seed: u64) -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325 ^ seed)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Deterministic 128-bit content hash of a cell key.
#[must_use]
pub fn key_hash(key: &CellKey) -> u128 {
    let mut lo = Fnv1a::seeded(0x5d);
    key.hash(&mut lo);
    let mut hi = Fnv1a::seeded(0xa7);
    key.hash(&mut hi);
    (u128::from(hi.finish()) << 64) | u128::from(lo.finish())
}

/// The behaviour hash behind both fingerprints: the full statistics of two
/// tiny canonical cells (one vectorizing, one scalar), hashed under `seed`.
/// Any model change that alters what those cells measure yields a different
/// hash.  Costs a few milliseconds per distinct seed.
fn behaviour_hash(seed: u64) -> u64 {
    let mut h = Fnv1a::seeded(seed);
    for (cfg, workload) in [
        (
            ProcessorConfig::four_way(1, PortKind::Wide).with_vectorization(true),
            Workload::Compress,
        ),
        (
            ProcessorConfig::four_way(2, PortKind::Scalar),
            Workload::Swim,
        ),
    ] {
        let stats = sdv_uarch::simulate(&cfg, &workload.build(1), 3_000);
        let mut ser = Ser { buf: Vec::new() };
        write_stats(&mut ser, &stats);
        h.write(&ser.buf);
    }
    h.finish()
}

/// The store's producer fingerprint for this binary: the behaviour hash,
/// additionally seeded with the payload version so a serialization-layout
/// bump makes shards written with an older layout invisible rather than
/// misdecoded.  Computed once per process.
#[must_use]
pub fn simulator_fingerprint() -> u64 {
    static FINGERPRINT: OnceLock<u64> = OnceLock::new();
    *FINGERPRINT.get_or_init(|| behaviour_hash(0xf1 ^ u64::from(CACHE_VERSION)))
}

/// The fingerprint the *legacy* single-file format records in its header:
/// seeded exactly as the pre-store builds seeded it (the format carries the
/// layout version as a separate header field), so a `cache.bin` written by an
/// older build with bit-identical model behaviour still imports.
#[must_use]
pub fn legacy_fingerprint() -> u64 {
    static FINGERPRINT: OnceLock<u64> = OnceLock::new();
    *FINGERPRINT.get_or_init(|| behaviour_hash(0xf1))
}

/// Serializes one [`RunStats`] into the byte payload persisted per cell.
#[must_use]
pub fn stats_to_bytes(stats: &RunStats) -> Vec<u8> {
    let mut s = Ser { buf: Vec::new() };
    write_stats(&mut s, stats);
    s.buf
}

/// Decodes a payload written by [`stats_to_bytes`].  Returns `None` on
/// truncation or trailing bytes, so damaged store entries can only ever cause
/// a miss, never wrong statistics.
#[must_use]
pub fn stats_from_bytes(bytes: &[u8]) -> Option<RunStats> {
    let mut d = De { buf: bytes };
    let stats = read_stats(&mut d)?;
    if d.buf.is_empty() {
        Some(stats)
    } else {
        None
    }
}

/// Imports a legacy single-file cache (the pre-store `cache.bin` format) into
/// `store`, returning how many entries were new to it.  A file written by a
/// different build — cache version or simulator fingerprint mismatch — is
/// stale and imports nothing.
///
/// # Errors
///
/// Propagates I/O errors from writing the store; reading a missing or
/// malformed legacy file is not an error (it imports zero entries).
pub fn import_legacy(store: &sdv_store::Store, path: &Path) -> io::Result<u64> {
    let entries = read_cache(path);
    let batch: Vec<(u128, Vec<u8>)> = entries
        .iter()
        .map(|(&hash, stats)| (hash, stats_to_bytes(stats)))
        .collect();
    Ok(store.put_batch(&batch)?.inserted)
}

// ---------------------------------------------------------------- writing

struct Ser {
    buf: Vec<u8>,
}

impl Ser {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn option<T, F: FnOnce(&mut Self, &T)>(&mut self, v: &Option<T>, f: F) {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1);
                f(self, inner);
            }
        }
    }
}

fn write_cache_stats(s: &mut Ser, c: &CacheStats) {
    s.u64(c.accesses);
    s.u64(c.hits);
    s.u64(c.misses);
    s.u64(c.writebacks);
}

fn write_stats(s: &mut Ser, r: &RunStats) {
    s.u64(r.cycles);
    s.u64(r.committed);
    s.u64(r.committed_loads);
    s.u64(r.committed_stores);
    s.u64(r.committed_control);
    s.u64(r.committed_validations);
    s.u64(r.committed_vector_mode);
    s.u64(r.branch_lookups);
    s.u64(r.mispredictions);
    s.u64(r.memory_accesses);
    s.u64(r.vector_line_accesses);
    s.u64(r.load_accesses);
    s.u64(r.loads_served_by_peer);
    s.u64(r.store_forwards);
    s.u64(r.scalar_arith_executed);
    s.u64(r.decode_blocked_cycles);
    s.u64(r.post_mispredict_window);
    s.u64(r.post_mispredict_reused);
    s.usize(r.port_count);
    s.u64(r.ports.grants);
    s.u64(r.ports.cycles);
    s.u64(r.ports.conflicts);
    s.option(&r.wide_bus, |s, w| {
        s.usize(w.words_per_line());
        s.u32(w.used_counts().len() as u32);
        for &count in w.used_counts() {
            s.u64(count);
        }
        s.u64(w.count_unused());
    });
    write_cache_stats(s, &r.l1d);
    write_cache_stats(s, &r.l1i);
    s.option(&r.dv, |s, d| {
        s.u64(d.loads_observed);
        s.u64(d.load_instances);
        s.u64(d.arith_instances);
        s.u64(d.load_validations);
        s.u64(d.arith_validations);
        s.u64(d.validation_failures);
        s.u64(d.no_free_vreg);
        s.u64(d.instances_with_nonzero_offset);
        s.u64(d.stores_checked);
        s.u64(d.store_conflicts);
        s.u64(d.elements_launched);
    });
    s.option(&r.element_usage, |s, u| {
        s.u64(u.computed_used);
        s.u64(u.computed_not_used);
        s.u64(u.not_computed);
        s.u64(u.registers_released);
    });
}

/// Writes a *legacy* single-file cache holding this session's entries plus
/// any `retained` entries from a previously loaded cache that the session did
/// not revisit.  Written atomically via a sibling temp file.
///
/// The engine no longer writes this format — sessions persist into the
/// sharded store — but the writer is kept so the [`import_legacy`] path stays
/// honestly testable against real files.
pub fn write_cache(
    path: &Path,
    entries: &HashMap<CellKey, RunStats>,
    retained: &HashMap<u128, RunStats>,
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let hashed: Vec<(u128, &RunStats)> = entries
        .iter()
        .map(|(key, stats)| (key_hash(key), stats))
        .collect();
    let carried: Vec<(u128, &RunStats)> = retained
        .iter()
        .filter(|(hash, _)| hashed.iter().all(|(h, _)| h != *hash))
        .map(|(&hash, stats)| (hash, stats))
        .collect();
    let mut s = Ser { buf: Vec::new() };
    s.buf.extend_from_slice(MAGIC);
    s.u32(CACHE_VERSION);
    s.u64(legacy_fingerprint());
    s.u64((hashed.len() + carried.len()) as u64);
    for (hash, stats) in hashed.into_iter().chain(carried) {
        s.u64(hash as u64);
        s.u64((hash >> 64) as u64);
        write_stats(&mut s, stats);
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&s.buf)?;
    }
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------- reading

struct De<'a> {
    buf: &'a [u8],
}

impl De<'_> {
    fn u8(&mut self) -> Option<u8> {
        let (&v, rest) = self.buf.split_first()?;
        self.buf = rest;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let (head, rest) = self.buf.split_at_checked(4)?;
        self.buf = rest;
        Some(u32::from_le_bytes(head.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.buf.split_at_checked(8)?;
        self.buf = rest;
        Some(u64::from_le_bytes(head.try_into().ok()?))
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }
}

fn read_cache_stats(d: &mut De) -> Option<CacheStats> {
    Some(CacheStats {
        accesses: d.u64()?,
        hits: d.u64()?,
        misses: d.u64()?,
        writebacks: d.u64()?,
    })
}

fn read_stats(d: &mut De) -> Option<RunStats> {
    let mut r = RunStats::new(1);
    r.cycles = d.u64()?;
    r.committed = d.u64()?;
    r.committed_loads = d.u64()?;
    r.committed_stores = d.u64()?;
    r.committed_control = d.u64()?;
    r.committed_validations = d.u64()?;
    r.committed_vector_mode = d.u64()?;
    r.branch_lookups = d.u64()?;
    r.mispredictions = d.u64()?;
    r.memory_accesses = d.u64()?;
    r.vector_line_accesses = d.u64()?;
    r.load_accesses = d.u64()?;
    r.loads_served_by_peer = d.u64()?;
    r.store_forwards = d.u64()?;
    r.scalar_arith_executed = d.u64()?;
    r.decode_blocked_cycles = d.u64()?;
    r.post_mispredict_window = d.u64()?;
    r.post_mispredict_reused = d.u64()?;
    r.port_count = d.usize()?;
    r.ports = PortStats {
        grants: d.u64()?,
        cycles: d.u64()?,
        conflicts: d.u64()?,
    };
    r.wide_bus = if d.u8()? == 1 {
        let words_per_line = d.usize()?;
        let n = d.u32()? as usize;
        if n != words_per_line + 1 {
            return None;
        }
        let mut used = Vec::with_capacity(n);
        for _ in 0..n {
            used.push(d.u64()?);
        }
        let unused = d.u64()?;
        Some(WideBusStats::from_counts(words_per_line, used, unused))
    } else {
        None
    };
    r.l1d = read_cache_stats(d)?;
    r.l1i = read_cache_stats(d)?;
    r.dv = if d.u8()? == 1 {
        Some(DvStats {
            loads_observed: d.u64()?,
            load_instances: d.u64()?,
            arith_instances: d.u64()?,
            load_validations: d.u64()?,
            arith_validations: d.u64()?,
            validation_failures: d.u64()?,
            no_free_vreg: d.u64()?,
            instances_with_nonzero_offset: d.u64()?,
            stores_checked: d.u64()?,
            store_conflicts: d.u64()?,
            elements_launched: d.u64()?,
        })
    } else {
        None
    };
    r.element_usage = if d.u8()? == 1 {
        Some(ElementUsage {
            computed_used: d.u64()?,
            computed_not_used: d.u64()?,
            not_computed: d.u64()?,
            registers_released: d.u64()?,
        })
    } else {
        None
    };
    Some(r)
}

/// Loads a legacy cache file; returns an empty map when the file is missing,
/// truncated, from a different cache version, or written by a build whose
/// simulator fingerprint differs (the results would be stale).
#[must_use]
pub fn read_cache(path: &Path) -> HashMap<u128, RunStats> {
    let mut bytes = Vec::new();
    let Ok(mut f) = std::fs::File::open(path) else {
        return HashMap::new();
    };
    if f.read_to_end(&mut bytes).is_err() {
        return HashMap::new();
    }
    let mut d = De { buf: &bytes };
    let Some(magic) = d.buf.split_at_checked(4) else {
        return HashMap::new();
    };
    if magic.0 != MAGIC {
        return HashMap::new();
    }
    d.buf = magic.1;
    if d.u32() != Some(CACHE_VERSION) {
        return HashMap::new();
    }
    if d.u64() != Some(legacy_fingerprint()) {
        return HashMap::new();
    }
    let Some(count) = d.u64() else {
        return HashMap::new();
    };
    let mut out = HashMap::new();
    for _ in 0..count {
        let Some(lo) = d.u64() else {
            return HashMap::new();
        };
        let Some(hi) = d.u64() else {
            return HashMap::new();
        };
        let Some(stats) = read_stats(&mut d) else {
            return HashMap::new();
        };
        out.insert((u128::from(hi) << 64) | u128::from(lo), stats);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;
    use crate::{ProcessorConfig, Workload};

    fn sample() -> (CellKey, RunStats) {
        let rc = RunConfig {
            scale: 1,
            max_insts: 5_000,
        };
        let cfg = ProcessorConfig::builder().vectorization(true).build();
        let key = CellKey {
            config: cfg.clone(),
            workload: Workload::Compress,
            scale: rc.scale,
            max_insts: rc.max_insts,
        };
        let stats = sdv_uarch::simulate(&cfg, &Workload::Compress.build(rc.scale), rc.max_insts);
        (key, stats)
    }

    #[test]
    fn round_trip_is_bit_exact_and_retains_foreign_entries() {
        let (key, stats) = sample();
        let dir = std::env::temp_dir().join(format!("sdv-cache-test-{}", std::process::id()));
        let path = dir.join("cache.bin");
        let mut entries = HashMap::new();
        entries.insert(key.clone(), stats.clone());
        // A previously loaded entry the session never revisited survives the
        // rewrite (narrow sessions must not shrink a broad cache), and a
        // stale copy of a revisited key is replaced, not duplicated.
        let mut retained = HashMap::new();
        retained.insert(0xdead_beef_u128, stats.clone());
        retained.insert(key_hash(&key), RunStats::new(9));
        write_cache(&path, &entries, &retained).expect("cache written");
        let loaded = read_cache(&path);
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.get(&key_hash(&key)),
            Some(&stats),
            "a disk hit must be bit-identical (and session entries win)"
        );
        assert_eq!(loaded.get(&0xdead_beef_u128), Some(&stats));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(simulator_fingerprint(), simulator_fingerprint());
        assert_ne!(simulator_fingerprint(), 0);
        assert_eq!(legacy_fingerprint(), legacy_fingerprint());
        assert_ne!(
            legacy_fingerprint(),
            simulator_fingerprint(),
            "the store fingerprint folds in the payload version; the legacy \
             header fingerprint must stay exactly what pre-store builds wrote"
        );
    }

    #[test]
    fn stats_payloads_round_trip_bit_exactly() {
        let (_, stats) = sample();
        let bytes = stats_to_bytes(&stats);
        assert_eq!(stats_from_bytes(&bytes), Some(stats));
        // Truncated or over-long payloads must miss, never misdecode.
        assert_eq!(stats_from_bytes(&bytes[..bytes.len() - 1]), None);
        let mut long = bytes;
        long.push(0);
        assert_eq!(stats_from_bytes(&long), None);
        // The scalar sample exercises the `None` arms of the option fields.
        let scalar = sdv_uarch::simulate(
            &ProcessorConfig::four_way(1, crate::PortKind::Scalar),
            &Workload::Swim.build(1),
            3_000,
        );
        assert_eq!(stats_from_bytes(&stats_to_bytes(&scalar)), Some(scalar));
    }

    #[test]
    fn legacy_files_import_into_a_store() {
        let dir = std::env::temp_dir().join(format!("sdv-legacy-import-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (key, stats) = sample();
        let legacy = dir.join("cache.bin");
        let mut entries = HashMap::new();
        entries.insert(key.clone(), stats.clone());
        write_cache(&legacy, &entries, &HashMap::new()).expect("legacy file written");

        let store =
            sdv_store::Store::open(dir.join("store"), simulator_fingerprint()).expect("store");
        assert_eq!(import_legacy(&store, &legacy).expect("imported"), 1);
        let payload = store.get(key_hash(&key)).expect("entry present");
        assert_eq!(stats_from_bytes(&payload), Some(stats));
        // Re-importing is idempotent, and a missing file imports nothing.
        assert_eq!(import_legacy(&store, &legacy).expect("re-imported"), 0);
        assert_eq!(
            import_legacy(&store, &dir.join("absent.bin")).expect("no-op"),
            0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_hash_distinguishes_configs_and_budgets() {
        let (key, _) = sample();
        let mut other = key.clone();
        other.max_insts += 1;
        assert_ne!(key_hash(&key), key_hash(&other));
        let mut scalar = key.clone();
        scalar.config = ProcessorConfig::four_way(1, crate::PortKind::Scalar);
        assert_ne!(key_hash(&key), key_hash(&scalar));
        assert_eq!(key_hash(&key), key_hash(&key.clone()));
    }

    #[test]
    fn bad_files_are_discarded() {
        let dir = std::env::temp_dir().join(format!("sdv-cache-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");
        assert!(read_cache(&path).is_empty(), "missing file");
        std::fs::write(&path, b"not a cache").unwrap();
        assert!(read_cache(&path).is_empty(), "wrong magic");
        std::fs::write(&path, b"SDVC\xff\xff\xff\xff").unwrap();
        assert!(read_cache(&path).is_empty(), "wrong version");
        // Right magic and version but a foreign simulator fingerprint.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(legacy_fingerprint() ^ 1).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            read_cache(&path).is_empty(),
            "a different build's results are stale"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Generators for every figure in the paper's evaluation (§2 and §4) plus the
//! headline numbers of §1/§6.
//!
//! Each generator is a thin projection over [`RunEngine`] output: it declares
//! the cells it needs (configuration × workload), lets the engine deduplicate
//! and execute them, and folds the resulting statistics into the rows/series
//! the paper plots.  Because every generator shares one engine, overlapping
//! cells across figures — the `1pV` suite appears in the headline, Figure 11
//! and Figure 12, for example — are simulated exactly once per session.
//!
//! Each result implements [`std::fmt::Display`] so the `repro` binary in
//! `sdv-bench` can print the same rows/series the paper reports;
//! `EXPERIMENTS.md` records the measured values next to the paper's.

use crate::engine::RunEngine;
use crate::grid::{CellSpec, SweepGrid};
use crate::runner::SuiteResult;
use crate::{MachineWidth, ProcessorConfig, Variant, Workload};
use sdv_core::DvConfig;
use sdv_emu::{Emulator, StrideProfiler, StrideStats};
use std::fmt;

// ---------------------------------------------------------------- helpers

/// A per-workload series of a single metric, with SpecInt/SpecFP/overall means
/// (the shape of Figures 3, 9, 10 and 14).
#[derive(Debug, Clone)]
pub struct WorkloadSeries {
    /// What the metric is (used as the Display title).
    pub title: String,
    /// Per-workload values.
    pub rows: Vec<(Workload, f64)>,
}

impl WorkloadSeries {
    /// Mean over the SpecInt-analogue workloads.
    #[must_use]
    pub fn int_mean(&self) -> f64 {
        Self::mean(self.rows.iter().filter(|(w, _)| !w.is_fp()))
    }

    /// Mean over the SpecFP-analogue workloads.
    #[must_use]
    pub fn fp_mean(&self) -> f64 {
        Self::mean(self.rows.iter().filter(|(w, _)| w.is_fp()))
    }

    /// Mean over every workload.
    #[must_use]
    pub fn total_mean(&self) -> f64 {
        Self::mean(self.rows.iter())
    }

    /// The value for one workload.
    #[must_use]
    pub fn get(&self, workload: Workload) -> Option<f64> {
        self.rows
            .iter()
            .find(|(w, _)| *w == workload)
            .map(|(_, v)| *v)
    }

    fn mean<'a, I: Iterator<Item = &'a (Workload, f64)>>(iter: I) -> f64 {
        let values: Vec<f64> = iter.map(|(_, v)| *v).collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }
}

impl fmt::Display for WorkloadSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        for (w, v) in &self.rows {
            writeln!(f, "  {:<10} {:6.2}%", w.name(), v * 100.0)?;
        }
        writeln!(f, "  {:<10} {:6.2}%", "INT", self.int_mean() * 100.0)?;
        writeln!(f, "  {:<10} {:6.2}%", "FP", self.fp_mean() * 100.0)?;
        writeln!(f, "  {:<10} {:6.2}%", "TOTAL", self.total_mean() * 100.0)
    }
}

fn series<F: Fn(&sdv_uarch::RunStats) -> f64>(
    title: &str,
    engine: &RunEngine,
    workloads: &[Workload],
    cfg: &ProcessorConfig,
    metric: F,
) -> WorkloadSeries {
    let suite = engine.suite(workloads, cfg);
    WorkloadSeries {
        title: title.to_string(),
        rows: suite.runs.iter().map(|(w, s)| (*w, metric(s))).collect(),
    }
}

// ---------------------------------------------------------------- figure 1

/// Figure 1: stride distribution for the SpecInt and SpecFP suites.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Aggregate stride statistics over the integer workloads.
    pub int: StrideStats,
    /// Aggregate stride statistics over the FP workloads.
    pub fp: StrideStats,
}

/// Generates Figure 1 by functionally profiling every load in `workloads`.
///
/// This is the one generator that does not go through timing cells: it drives
/// the functional emulator with the engine's run budget.
#[must_use]
pub fn fig1(engine: &RunEngine, workloads: &[Workload]) -> Fig1 {
    let rc = engine.run_config();
    let mut int = StrideStats::default();
    let mut fp = StrideStats::default();
    for &w in workloads {
        let mut profiler = StrideProfiler::new();
        let mut emu = Emulator::new(&w.build(rc.scale));
        emu.run_with(rc.max_insts, |r| profiler.observe_retired(r));
        if w.is_fp() {
            fp.merge(profiler.stats());
        } else {
            int.merge(profiler.stats());
        }
    }
    Fig1 { int, fp }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1 — stride distribution (percentage of dynamic loads)"
        )?;
        writeln!(f, "  stride      SpecInt   SpecFP")?;
        for s in 0..10 {
            writeln!(
                f,
                "  {:<10} {:7.2}%  {:7.2}%",
                s,
                self.int.fraction(s) * 100.0,
                self.fp.fraction(s) * 100.0
            )?;
        }
        writeln!(
            f,
            "  {:<10} {:7.2}%  {:7.2}%",
            "other",
            (1.0 - (0..10).map(|s| self.int.fraction(s)).sum::<f64>()) * 100.0,
            (1.0 - (0..10).map(|s| self.fp.fraction(s)).sum::<f64>()) * 100.0
        )?;
        writeln!(
            f,
            "  strides < 4 elements: SpecInt {:5.1}%, SpecFP {:5.1}%",
            self.int.fraction_below(4) * 100.0,
            self.fp.fraction_below(4) * 100.0
        )
    }
}

// ---------------------------------------------------------------- figure 3

/// Figure 3: percentage of vectorizable (vector-mode) instructions with
/// unbounded vectorization resources.
#[must_use]
pub fn fig3(engine: &RunEngine, workloads: &[Workload]) -> WorkloadSeries {
    let cfg = ProcessorConfig::builder()
        .issue_width(8)
        .dv_config(DvConfig::unbounded())
        .build();
    series(
        "Figure 3 — percentage of vectorizable instructions (unbounded resources)",
        engine,
        workloads,
        &cfg,
        |s| s.vector_mode_fraction(),
    )
}

// ---------------------------------------------------------------- figure 7

/// Figure 7: IPC with decode blocking on not-ready scalar operands ("real")
/// versus without the blocking ("ideal").
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Per-workload `(real IPC, ideal IPC)`.
    pub rows: Vec<(Workload, f64, f64)>,
}

/// Generates Figure 7 on the 4-way, 1 wide-port, vectorizing configuration.
#[must_use]
pub fn fig7(engine: &RunEngine, workloads: &[Workload]) -> Fig7 {
    let real_cfg = ProcessorConfig::builder().vectorization(true).build();
    let ideal_cfg = ProcessorConfig::builder()
        .vectorization(true)
        .block_on_scalar_operand(false)
        .build();
    let mut suites = engine.suites(workloads, &[real_cfg, ideal_cfg]).into_iter();
    let (real, ideal) = (
        suites.next().expect("real suite"),
        suites.next().expect("ideal suite"),
    );
    let rows = real
        .runs
        .iter()
        .zip(ideal.runs.iter())
        .map(|((w, r), (_, i))| (*w, r.ipc(), i.ipc()))
        .collect();
    Fig7 { rows }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7 — IPC blocking (real) vs not blocking (ideal) on scalar operands"
        )?;
        writeln!(f, "  {:<10} {:>8} {:>8}", "workload", "real", "ideal")?;
        for (w, real, ideal) in &self.rows {
            writeln!(f, "  {:<10} {:>8.3} {:>8.3}", w.name(), real, ideal)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- figure 9

/// Figure 9: percentage of vector instances whose source offsets are not zero.
#[must_use]
pub fn fig9(engine: &RunEngine, workloads: &[Workload]) -> WorkloadSeries {
    let cfg = ProcessorConfig::builder()
        .issue_width(8)
        .vectorization(true)
        .build();
    series(
        "Figure 9 — vector instructions with a non-zero source offset",
        engine,
        workloads,
        &cfg,
        |s| s.dv.map_or(0.0, |dv| dv.nonzero_offset_rate()),
    )
}

// --------------------------------------------------------------- figure 10

/// Figure 10: control-flow independence — the fraction of the 100 instructions
/// following a mispredicted branch that reuse already-computed vector results.
#[must_use]
pub fn fig10(engine: &RunEngine, workloads: &[Workload]) -> WorkloadSeries {
    let cfg = ProcessorConfig::builder().vectorization(true).build();
    series(
        "Figure 10 — instructions reused after a branch misprediction",
        engine,
        workloads,
        &cfg,
        |s| s.cfi_reuse_fraction(),
    )
}

// --------------------------------------------------- figures 11 and 12

/// One cell of a sweep: the grid point plus its per-workload results.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The grid point (width, ports, bus width, variant, config).
    pub spec: CellSpec,
    /// Per-workload results.
    pub suite: SuiteResult,
}

impl SweepCell {
    /// The paper's label for this cell (`1pnoIM`, `2pV`, `1pVb8`, …),
    /// derived from the configuration.
    #[must_use]
    pub fn label(&self) -> String {
        self.spec.label()
    }
}

/// The full sweep behind Figures 11 and 12 (and the extended §4.3 surface).
#[derive(Debug, Clone)]
pub struct PortSweep {
    /// Every grid point that was simulated, in grid order.
    pub cells: Vec<SweepCell>,
}

impl PortSweep {
    /// Finds a cell by its paper coordinates (any bus width).
    #[must_use]
    pub fn get(&self, width: MachineWidth, ports: usize, variant: Variant) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.spec.width == width && c.spec.ports == ports && c.spec.variant == variant)
    }

    /// Finds a cell by its full coordinates, including the bus width.
    #[must_use]
    pub fn get_with_bus(
        &self,
        width: MachineWidth,
        ports: usize,
        bus_words: usize,
        variant: Variant,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.spec.width == width
                && c.spec.ports == ports
                && c.spec.bus_words == bus_words
                && c.spec.variant == variant
        })
    }

    /// The distinct machine widths present, in cell order.
    #[must_use]
    pub fn widths(&self) -> Vec<MachineWidth> {
        let mut widths = Vec::new();
        for cell in &self.cells {
            if !widths.contains(&cell.spec.width) {
                widths.push(cell.spec.width);
            }
        }
        widths
    }

    /// Cells with configuration-identical duplicates removed, in cell order
    /// (first occurrence wins).  Labels are injective over the configuration
    /// axes, so an equal `(width, label)` pair means an equal cell — e.g. the
    /// scalar baseline repeated along the bus axis.  Both the `Fig11`/`Fig12`
    /// text output and the CSV export print exactly these cells.
    #[must_use]
    pub fn unique_cells(&self) -> Vec<&SweepCell> {
        let mut seen = std::collections::HashSet::new();
        self.cells
            .iter()
            .filter(|c| seen.insert((c.spec.width, c.label())))
            .collect()
    }
}

/// Expands `grid` and simulates every cell as one deduplicated batch.
#[must_use]
pub fn port_sweep(engine: &RunEngine, workloads: &[Workload], grid: &SweepGrid) -> PortSweep {
    let specs = grid.cells();
    let configs: Vec<ProcessorConfig> = specs.iter().map(|s| s.config.clone()).collect();
    let suites = engine.suites(workloads, &configs);
    PortSweep {
        cells: specs
            .into_iter()
            .zip(suites)
            .map(|(spec, suite)| SweepCell { spec, suite })
            .collect(),
    }
}

/// Figure 11: IPC for every configuration of the sweep.
#[derive(Debug, Clone)]
pub struct Fig11<'a>(pub &'a PortSweep);

/// Figure 12: memory-port occupancy for every configuration of the sweep.
#[derive(Debug, Clone)]
pub struct Fig12<'a>(pub &'a PortSweep);

/// How one sweep metric is aggregated across a suite.
enum SweepAggregate {
    /// Harmonic mean — the suite-level aggregate for rates such as IPC.
    Harmonic,
    /// Arithmetic mean — for fractions such as port occupancy.
    Arithmetic,
}

fn fmt_sweep<F: Fn(&sdv_uarch::RunStats) -> f64>(
    f: &mut fmt::Formatter<'_>,
    sweep: &PortSweep,
    title: &str,
    metric: F,
    aggregate: &SweepAggregate,
    percent: bool,
) -> fmt::Result {
    writeln!(f, "{title}")?;
    let unique = sweep.unique_cells();
    for width in sweep.widths() {
        writeln!(f, "  {}:", width.label())?;
        write!(f, "    {:<10}", "config")?;
        writeln!(f, " {:>8} {:>8} {:>8}", "INT", "FP", "ALL")?;
        for cell in unique.iter().filter(|c| c.spec.width == width) {
            let (int, fp, all) = match aggregate {
                SweepAggregate::Harmonic => (
                    cell.suite.hmean_int(&metric),
                    cell.suite.hmean_fp(&metric),
                    cell.suite.hmean(&metric),
                ),
                SweepAggregate::Arithmetic => (
                    cell.suite.mean_int(&metric),
                    cell.suite.mean_fp(&metric),
                    cell.suite.mean(&metric),
                ),
            };
            let scale = if percent { 100.0 } else { 1.0 };
            writeln!(
                f,
                "    {:<10} {:>8.3} {:>8.3} {:>8.3}",
                cell.label(),
                int * scale,
                fp * scale,
                all * scale
            )?;
        }
    }
    Ok(())
}

impl fmt::Display for Fig11<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_sweep(
            f,
            self.0,
            "Figure 11 — IPC (harmonic mean) by number of ports and variant",
            |s| s.ipc(),
            &SweepAggregate::Harmonic,
            false,
        )
    }
}

impl fmt::Display for Fig12<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_sweep(
            f,
            self.0,
            "Figure 12 — memory-port occupancy (%) by number of ports and variant",
            |s| s.port_occupancy(),
            &SweepAggregate::Arithmetic,
            true,
        )
    }
}

// --------------------------------------------------------------- figure 13

/// Figure 13: how many useful words each wide-bus line read contributed.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// Per workload: fraction of accesses contributing 1, 2, 3, 4 useful words
    /// and the fraction of unused (speculative) accesses.
    pub rows: Vec<(Workload, [f64; 4], f64)>,
}

/// Generates Figure 13 on the 4-way, 1 wide-port, vectorizing configuration.
#[must_use]
pub fn fig13(engine: &RunEngine, workloads: &[Workload]) -> Fig13 {
    let cfg = ProcessorConfig::builder().vectorization(true).build();
    let suite = engine.suite(workloads, &cfg);
    let rows = suite
        .runs
        .iter()
        .map(|(w, s)| {
            let mut used = [0.0; 4];
            let mut unused = 0.0;
            if let Some(wide) = &s.wide_bus {
                for (i, slot) in used.iter_mut().enumerate() {
                    *slot = wide.fraction_used(i + 1);
                }
                unused = wide.fraction_unused();
            }
            (*w, used, unused)
        })
        .collect();
    Fig13 { rows }
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 13 — useful words per wide-bus line read")?;
        writeln!(
            f,
            "  {:<10} {:>7} {:>7} {:>7} {:>7} {:>8}",
            "workload", "1pos", "2pos", "3pos", "4pos", "unused"
        )?;
        for (w, used, unused) in &self.rows {
            writeln!(
                f,
                "  {:<10} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>7.1}%",
                w.name(),
                used[0] * 100.0,
                used[1] * 100.0,
                used[2] * 100.0,
                used[3] * 100.0,
                unused * 100.0
            )?;
        }
        Ok(())
    }
}

// --------------------------------------------------------------- figure 14

/// Figure 14: percentage of instructions that became validations.
#[must_use]
pub fn fig14(engine: &RunEngine, workloads: &[Workload]) -> WorkloadSeries {
    let cfg = ProcessorConfig::builder()
        .issue_width(8)
        .vectorization(true)
        .build();
    series(
        "Figure 14 — percentage of validation instructions",
        engine,
        workloads,
        &cfg,
        |s| s.validation_fraction(),
    )
}

// --------------------------------------------------------------- figure 15

/// Figure 15: average vector-register element usage.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// Per workload: (computed & used, computed but not used, not computed),
    /// averaged over released vector registers.
    pub rows: Vec<(Workload, f64, f64, f64)>,
}

/// Generates Figure 15 on the 8-way, 1 wide-port, vectorizing configuration.
#[must_use]
pub fn fig15(engine: &RunEngine, workloads: &[Workload]) -> Fig15 {
    let cfg = ProcessorConfig::builder()
        .issue_width(8)
        .vectorization(true)
        .build();
    let suite = engine.suite(workloads, &cfg);
    let rows = suite
        .runs
        .iter()
        .map(|(w, s)| {
            let u = s.element_usage.unwrap_or_default();
            (
                *w,
                u.avg_computed_used(),
                u.avg_computed_not_used(),
                u.avg_not_computed(),
            )
        })
        .collect();
    Fig15 { rows }
}

impl fmt::Display for Fig15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 15 — average vector register elements per released register"
        )?;
        writeln!(
            f,
            "  {:<10} {:>10} {:>14} {:>10}",
            "workload", "comp.used", "comp.not-used", "not comp."
        )?;
        for (w, used, not_used, not_comp) in &self.rows {
            writeln!(
                f,
                "  {:<10} {:>10.2} {:>14.2} {:>10.2}",
                w.name(),
                used,
                not_used,
                not_comp
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- headline

/// The headline comparisons of §1 and §6.
///
/// Suite-level IPC aggregates are harmonic means (the correct aggregate for a
/// rate); the reductions and per-workload speed-up ratios use arithmetic
/// means, matching the paper's reporting.
#[derive(Debug, Clone)]
pub struct Headline {
    /// IPC (harmonic mean) of the 4-way processor with one wide port and
    /// dynamic vectorization.
    pub ipc_1p_vect: f64,
    /// IPC (harmonic mean) of the 4-way processor with one wide port (no
    /// vectorization).
    pub ipc_1p_wide: f64,
    /// IPC (harmonic mean) of the 4-way processor with four scalar ports (no
    /// vectorization).
    pub ipc_4p_scalar: f64,
    /// Memory-request reduction of vectorization vs. the wide-bus baseline,
    /// SpecInt mean (positive = fewer requests).
    pub mem_reduction_int: f64,
    /// Memory-request reduction, SpecFP mean.
    pub mem_reduction_fp: f64,
    /// Scalar-arithmetic reduction (instructions moved to the vector units), SpecInt mean.
    pub arith_reduction_int: f64,
    /// Scalar-arithmetic reduction, SpecFP mean.
    pub arith_reduction_fp: f64,
    /// Fraction of committed instructions that became validations, SpecInt mean.
    pub validation_int: f64,
    /// Fraction of committed instructions that became validations, SpecFP mean.
    pub validation_fp: f64,
    /// Per-workload IPC on the 4-way 1-wide-port machine: `(workload,
    /// scalar IPC, vectorized IPC)`, in suite order.
    pub per_workload_ipc: Vec<(Workload, f64, f64)>,
}

impl Headline {
    /// Speed-up of `4-way, 1 wide port, DV` over `4-way, 4 scalar ports`
    /// (the paper reports ≈1.19).
    #[must_use]
    pub fn speedup_vs_four_scalar_ports(&self) -> f64 {
        if self.ipc_4p_scalar == 0.0 {
            0.0
        } else {
            self.ipc_1p_vect / self.ipc_4p_scalar
        }
    }

    /// IPC gain of adding DV to the 1-wide-port 4-way processor.
    #[must_use]
    pub fn dv_ipc_gain(&self) -> f64 {
        if self.ipc_1p_wide == 0.0 {
            0.0
        } else {
            self.ipc_1p_vect / self.ipc_1p_wide - 1.0
        }
    }
}

/// Computes the headline numbers over `workloads`.
#[must_use]
pub fn headline(engine: &RunEngine, workloads: &[Workload]) -> Headline {
    let cfg_vect = Variant::Vectorized.config(MachineWidth::FourWay, 1);
    let cfg_wide = Variant::WideBus.config(MachineWidth::FourWay, 1);
    let cfg_scalar4 = Variant::ScalarBus.config(MachineWidth::FourWay, 4);
    let mut suites = engine
        .suites(workloads, &[cfg_vect, cfg_wide, cfg_scalar4])
        .into_iter();
    let (vect, wide, scalar4) = (
        suites.next().expect("vectorized suite"),
        suites.next().expect("wide suite"),
        suites.next().expect("scalar suite"),
    );

    let reduction = |suite_base: &SuiteResult,
                     suite_new: &SuiteResult,
                     fp: bool,
                     f: &dyn Fn(&sdv_uarch::RunStats) -> f64| {
        let pick = |s: &SuiteResult| {
            if fp {
                s.mean_fp(f)
            } else {
                s.mean_int(f)
            }
        };
        let base = pick(suite_base);
        let new = pick(suite_new);
        if base == 0.0 {
            0.0
        } else {
            1.0 - new / base
        }
    };
    let mem = |s: &sdv_uarch::RunStats| s.memory_accesses as f64 / s.committed.max(1) as f64;
    let arith =
        |s: &sdv_uarch::RunStats| s.scalar_arith_executed as f64 / s.committed.max(1) as f64;

    Headline {
        ipc_1p_vect: vect.hmean(|s| s.ipc()),
        ipc_1p_wide: wide.hmean(|s| s.ipc()),
        ipc_4p_scalar: scalar4.hmean(|s| s.ipc()),
        mem_reduction_int: reduction(&wide, &vect, false, &mem),
        mem_reduction_fp: reduction(&wide, &vect, true, &mem),
        arith_reduction_int: reduction(&wide, &vect, false, &arith),
        arith_reduction_fp: reduction(&wide, &vect, true, &arith),
        validation_int: vect.mean_int(|s| s.validation_fraction()),
        validation_fp: vect.mean_fp(|s| s.validation_fraction()),
        per_workload_ipc: wide
            .runs
            .iter()
            .zip(vect.runs.iter())
            .map(|((w, base), (_, dv))| (*w, base.ipc(), dv.ipc()))
            .collect(),
    }
}

impl fmt::Display for Headline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Headline comparisons (§1/§6, harmonic-mean IPC)")?;
        writeln!(f, "  IPC 4-way 1 wide port + DV : {:6.3}", self.ipc_1p_vect)?;
        writeln!(f, "  IPC 4-way 1 wide port      : {:6.3}", self.ipc_1p_wide)?;
        writeln!(
            f,
            "  IPC 4-way 4 scalar ports   : {:6.3}",
            self.ipc_4p_scalar
        )?;
        writeln!(
            f,
            "  speed-up of 1pV over 4pnoIM : {:5.1}%  (paper: ~19%)",
            (self.speedup_vs_four_scalar_ports() - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "  DV IPC gain over 1pIM       : {:5.1}%",
            self.dv_ipc_gain() * 100.0
        )?;
        writeln!(
            f,
            "  memory requests (per inst)  : SpecInt {:+5.1}%, SpecFP {:+5.1}%  (paper: -15%, -20%)",
            -self.mem_reduction_int * 100.0,
            -self.mem_reduction_fp * 100.0
        )?;
        writeln!(
            f,
            "  scalar arithmetic executed  : SpecInt {:+5.1}%, SpecFP {:+5.1}%  (paper: -28%, -23%)",
            -self.arith_reduction_int * 100.0,
            -self.arith_reduction_fp * 100.0
        )?;
        writeln!(
            f,
            "  validation instructions     : SpecInt {:4.1}%, SpecFP {:4.1}%  (paper: 28%, 23%)",
            self.validation_int * 100.0,
            self.validation_fp * 100.0
        )?;
        writeln!(f, "  per-workload IPC (4-way, 1 wide port):")?;
        writeln!(f, "    workload     no-DV       DV    gain")?;
        for (workload, base, dv) in &self.per_workload_ipc {
            let gain = if *base > 0.0 { dv / base - 1.0 } else { 0.0 };
            writeln!(
                f,
                "    {:<10} {base:7.3}  {dv:7.3}  {:+5.1}%",
                workload.to_string(),
                gain * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;

    const QUICK_INT: [Workload; 2] = [Workload::Compress, Workload::Vortex];
    const QUICK_MIX: [Workload; 3] = [Workload::Compress, Workload::Swim, Workload::Li];

    fn engine() -> RunEngine {
        RunEngine::new(RunConfig {
            scale: 1,
            max_insts: 12_000,
        })
    }

    #[test]
    fn fig1_fractions_are_normalised() {
        let fig = fig1(&engine(), &QUICK_MIX);
        let int_sum: f64 = (0..10).map(|s| fig.int.fraction(s)).sum();
        assert!(int_sum <= 1.0 + 1e-9);
        assert!(fig.int.total > 0 && fig.fp.total > 0);
        let text = fig.to_string();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("strides < 4"));
    }

    #[test]
    fn fig3_reports_substantial_vectorization() {
        let fig = fig3(&engine(), &QUICK_MIX);
        assert_eq!(fig.rows.len(), 3);
        assert!(fig.total_mean() > 0.10, "mean {}", fig.total_mean());
        assert!(fig.to_string().contains("Figure 3"));
    }

    #[test]
    fn fig7_ideal_is_at_least_real() {
        let fig = fig7(&engine(), &QUICK_INT);
        for (w, real, ideal) in &fig.rows {
            assert!(real > &0.0 && ideal > &0.0, "{w}: zero IPC");
            assert!(
                ideal >= &(real * 0.8),
                "{w}: ideal should not be far below real"
            );
        }
        assert!(fig.to_string().contains("ideal"));
    }

    #[test]
    fn fig9_and_fig14_are_bounded_fractions() {
        let engine = engine();
        for series in [
            fig9(&engine, &QUICK_MIX),
            fig14(&engine, &QUICK_MIX),
            fig10(&engine, &QUICK_MIX),
        ] {
            for (w, v) in &series.rows {
                assert!((0.0..=1.0).contains(v), "{w}: {v} out of range");
            }
        }
    }

    #[test]
    fn sweep_supports_fig11_and_fig12() {
        let grid = SweepGrid::new()
            .widths(vec![MachineWidth::FourWay])
            .ports(vec![1, 2]);
        let sweep = port_sweep(&engine(), &QUICK_INT, &grid);
        assert_eq!(sweep.cells.len(), 6);
        let one_p_v = sweep
            .get(MachineWidth::FourWay, 1, Variant::Vectorized)
            .unwrap();
        assert_eq!(one_p_v.label(), "1pV");
        assert!(one_p_v.suite.mean(|s| s.ipc()) > 0.0);
        assert!(sweep
            .get(MachineWidth::EightWay, 1, Variant::WideBus)
            .is_none());
        let f11 = Fig11(&sweep).to_string();
        let f12 = Fig12(&sweep).to_string();
        assert!(f11.contains("1pnoIM") && f11.contains("2pV"));
        assert!(f12.contains("occupancy"));
    }

    #[test]
    fn sweep_covers_the_bus_axis() {
        let grid = SweepGrid::new()
            .widths(vec![MachineWidth::FourWay])
            .ports(vec![1])
            .bus_words(vec![2, 8])
            .variants(vec![Variant::Vectorized]);
        let engine = engine();
        let sweep = port_sweep(&engine, &[Workload::Compress], &grid);
        assert_eq!(sweep.cells.len(), 2);
        let narrow = sweep
            .get_with_bus(MachineWidth::FourWay, 1, 2, Variant::Vectorized)
            .unwrap();
        assert_eq!(narrow.label(), "1pVb2");
        assert!(Fig11(&sweep).to_string().contains("1pVb8"));
    }

    #[test]
    fn fig13_fractions_sum_to_at_most_one() {
        let fig = fig13(&engine(), &QUICK_INT);
        for (w, used, unused) in &fig.rows {
            let sum: f64 = used.iter().sum::<f64>() + unused;
            assert!(sum <= 1.0 + 1e-9, "{w}: {sum}");
        }
        assert!(fig.to_string().contains("unused"));
    }

    #[test]
    fn fig15_elements_sum_to_vector_length() {
        let fig = fig15(&engine(), &QUICK_MIX);
        for (w, used, not_used, not_comp) in &fig.rows {
            let total = used + not_used + not_comp;
            if total > 0.0 {
                assert!(
                    (total - 4.0).abs() < 1e-6,
                    "{w}: {total} elements per register"
                );
            }
        }
    }

    #[test]
    fn headline_produces_consistent_numbers() {
        let h = headline(&engine(), &QUICK_MIX);
        assert!(h.ipc_1p_vect > 0.0 && h.ipc_1p_wide > 0.0 && h.ipc_4p_scalar > 0.0);
        assert!(h.validation_int > 0.0);
        assert!(h.speedup_vs_four_scalar_ports() > 0.5);
        let text = h.to_string();
        assert!(text.contains("speed-up"));
        assert!(text.contains("validation"));
    }

    #[test]
    fn headline_and_sweep_share_cells() {
        let engine = engine();
        let _ = port_sweep(
            &engine,
            &QUICK_INT,
            &SweepGrid::new().widths(vec![MachineWidth::FourWay]),
        );
        let simulated_after_sweep = engine.report().simulated;
        let _ = headline(&engine, &QUICK_INT);
        assert_eq!(
            engine.report().simulated,
            simulated_after_sweep,
            "every headline cell already exists in the paper sweep"
        );
    }
}

//! Run drivers: simulate workloads on processor configurations and aggregate
//! suite-level statistics.

use crate::ProcessorConfig;
use sdv_isa::Program;
use sdv_uarch::RunStats;
use sdv_workloads::Workload;

/// How much work each measurement simulates.
///
/// The paper simulates 100 M instructions per benchmark; that is far more than
/// needed for the synthetic kernels to reach steady state, so the default
/// budgets are smaller (and the bench harness uses larger ones than the test
/// suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunConfig {
    /// Outer-iteration scale passed to [`Workload::build`].
    pub scale: u64,
    /// Maximum simulated (committed) instructions per run.
    pub max_insts: u64,
}

impl RunConfig {
    /// A tiny budget for unit/integration tests (tens of thousands of instructions).
    #[must_use]
    pub fn quick() -> Self {
        RunConfig {
            scale: 1,
            max_insts: 20_000,
        }
    }

    /// The default budget used by the bench harness.
    #[must_use]
    pub fn standard() -> Self {
        RunConfig {
            scale: 8,
            max_insts: 300_000,
        }
    }

    /// A larger budget for reproducing the figures with lower noise.
    #[must_use]
    pub fn thorough() -> Self {
        RunConfig {
            scale: 64,
            max_insts: 2_000_000,
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::standard()
    }
}

/// Simulates `program` on `cfg` for at most `max_insts` committed instructions.
///
/// Thin convenience wrapper over [`sdv_uarch::simulate`].
#[must_use]
pub fn run_program(cfg: &ProcessorConfig, program: &Program, max_insts: u64) -> RunStats {
    sdv_uarch::simulate(cfg, program, max_insts)
}

/// Builds and simulates one workload.
#[must_use]
pub fn run_workload(workload: Workload, cfg: &ProcessorConfig, rc: &RunConfig) -> RunStats {
    let program = workload.build(rc.scale);
    run_program(cfg, &program, rc.max_insts)
}

/// The result of running a set of workloads on one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// Per-workload statistics, in the order they were run.
    pub runs: Vec<(Workload, RunStats)>,
}

impl SuiteResult {
    /// Statistics for one workload, if it was part of the suite.
    #[must_use]
    pub fn get(&self, workload: Workload) -> Option<&RunStats> {
        self.runs
            .iter()
            .find(|(w, _)| *w == workload)
            .map(|(_, s)| s)
    }

    /// Arithmetic mean of a per-run metric over the whole suite.
    #[must_use]
    pub fn mean<F: Fn(&RunStats) -> f64>(&self, f: F) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(|(_, s)| f(s)).sum::<f64>() / self.runs.len() as f64
    }

    /// Arithmetic mean over the SpecInt-analogue subset.
    #[must_use]
    pub fn mean_int<F: Fn(&RunStats) -> f64>(&self, f: F) -> f64 {
        self.mean_filtered(|w| !w.is_fp(), f)
    }

    /// Arithmetic mean over the SpecFP-analogue subset.
    #[must_use]
    pub fn mean_fp<F: Fn(&RunStats) -> f64>(&self, f: F) -> f64 {
        self.mean_filtered(Workload::is_fp, f)
    }

    fn mean_filtered<P: Fn(&Workload) -> bool, F: Fn(&RunStats) -> f64>(&self, p: P, f: F) -> f64 {
        let selected: Vec<f64> = self
            .runs
            .iter()
            .filter(|(w, _)| p(w))
            .map(|(_, s)| f(s))
            .collect();
        if selected.is_empty() {
            0.0
        } else {
            selected.iter().sum::<f64>() / selected.len() as f64
        }
    }

    /// Harmonic mean of a per-run metric over the whole suite.
    ///
    /// The harmonic mean is the correct suite-level aggregate for *rates* such
    /// as IPC (it weighs every workload by the time it takes, not by its
    /// rate); arithmetic means remain in use for speed-up ratios and
    /// fractions.  Returns 0 if the suite is empty or any value is ≤ 0.
    #[must_use]
    pub fn hmean<F: Fn(&RunStats) -> f64>(&self, f: F) -> f64 {
        Self::harmonic(self.runs.iter().map(|(_, s)| f(s)))
    }

    /// Harmonic mean over the SpecInt-analogue subset.
    #[must_use]
    pub fn hmean_int<F: Fn(&RunStats) -> f64>(&self, f: F) -> f64 {
        Self::harmonic(
            self.runs
                .iter()
                .filter(|(w, _)| !w.is_fp())
                .map(|(_, s)| f(s)),
        )
    }

    /// Harmonic mean over the SpecFP-analogue subset.
    #[must_use]
    pub fn hmean_fp<F: Fn(&RunStats) -> f64>(&self, f: F) -> f64 {
        Self::harmonic(
            self.runs
                .iter()
                .filter(|(w, _)| w.is_fp())
                .map(|(_, s)| f(s)),
        )
    }

    fn harmonic<I: Iterator<Item = f64>>(values: I) -> f64 {
        let mut n = 0usize;
        let mut recip = 0.0f64;
        for v in values {
            if v <= 0.0 {
                return 0.0;
            }
            n += 1;
            recip += 1.0 / v;
        }
        if n == 0 {
            0.0
        } else {
            n as f64 / recip
        }
    }

    /// Sum of an integer counter over the whole suite.
    #[must_use]
    pub fn total<F: Fn(&RunStats) -> u64>(&self, f: F) -> u64 {
        self.runs.iter().map(|(_, s)| f(s)).sum()
    }
}

/// Runs every workload in `workloads` on `cfg`.
#[must_use]
pub fn run_suite(workloads: &[Workload], cfg: &ProcessorConfig, rc: &RunConfig) -> SuiteResult {
    SuiteResult {
        runs: workloads
            .iter()
            .map(|&w| (w, run_workload(w, cfg, rc)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortKind;

    #[test]
    fn run_configs_scale_budgets() {
        assert!(RunConfig::quick().max_insts < RunConfig::standard().max_insts);
        assert!(RunConfig::standard().max_insts < RunConfig::thorough().max_insts);
        assert_eq!(RunConfig::default(), RunConfig::standard());
    }

    #[test]
    fn suite_runs_and_aggregates() {
        let cfg = ProcessorConfig::four_way(1, PortKind::Wide);
        let rc = RunConfig::quick();
        let suite = run_suite(&[Workload::Compress, Workload::Swim], &cfg, &rc);
        assert_eq!(suite.runs.len(), 2);
        assert!(suite.get(Workload::Compress).is_some());
        assert!(suite.get(Workload::Go).is_none());
        assert!(suite.mean(|s| s.ipc()) > 0.0);
        assert!(suite.mean_int(|s| s.ipc()) > 0.0);
        assert!(suite.mean_fp(|s| s.ipc()) > 0.0);
        assert!(suite.total(|s| s.committed) > 0);
    }

    #[test]
    fn empty_suite_is_safe() {
        let suite = SuiteResult { runs: Vec::new() };
        assert_eq!(suite.mean(|s| s.ipc()), 0.0);
        assert_eq!(suite.mean_fp(|s| s.ipc()), 0.0);
        assert_eq!(suite.hmean(|s| s.ipc()), 0.0);
        assert_eq!(suite.total(|s| s.committed), 0);
    }

    /// Pins the two suite-level aggregates against hand-computed values: the
    /// arithmetic mean of IPCs {1, 3} is 2, their harmonic mean is 1.5.
    #[test]
    fn arithmetic_and_harmonic_means_are_pinned() {
        let mut fast = RunStats::new(1);
        fast.cycles = 100;
        fast.committed = 300; // IPC 3.0
        let mut slow = RunStats::new(1);
        slow.cycles = 100;
        slow.committed = 100; // IPC 1.0
        let suite = SuiteResult {
            runs: vec![(Workload::Compress, slow), (Workload::Swim, fast)],
        };
        assert!((suite.mean(|s| s.ipc()) - 2.0).abs() < 1e-12);
        assert!((suite.hmean(|s| s.ipc()) - 1.5).abs() < 1e-12);
        // Per-suite splits use the same definitions.
        assert!((suite.hmean_int(|s| s.ipc()) - 1.0).abs() < 1e-12);
        assert!((suite.hmean_fp(|s| s.ipc()) - 3.0).abs() < 1e-12);
        // A zero rate collapses the harmonic mean (and only that one).
        let zero = RunStats::new(1);
        let with_zero = SuiteResult {
            runs: vec![(Workload::Compress, zero)],
        };
        assert_eq!(with_zero.hmean(|s| s.ipc()), 0.0);
    }
}

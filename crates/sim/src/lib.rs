//! Experiment layer: processor configurations, run drivers and generators for
//! every table and figure in the paper's evaluation.
//!
//! The crate ties the stack together:
//!
//! * [`table1`] builds the two processor configurations of Table 1,
//! * [`runner`] runs workloads on configurations and aggregates statistics,
//! * [`figures`] regenerates every figure (1, 3, 7, 9–15) and the headline
//!   speed-up numbers of §1/§6, each as a structured result that also
//!   implements [`std::fmt::Display`] so the bench harness can print the same
//!   rows/series the paper reports.
//!
//! ```
//! use sdv_sim::{run_program, ProcessorConfig, PortKind};
//! use sdv_workloads::Workload;
//!
//! let program = Workload::Compress.build(1);
//! let cfg = ProcessorConfig::four_way(1, PortKind::Wide).with_vectorization(true);
//! let stats = run_program(&cfg, &program, 50_000);
//! assert!(stats.ipc() > 0.0);
//! ```

pub mod figures;
pub mod report;
pub mod runner;
pub mod table1;

pub use figures::*;
pub use runner::{run_program, run_suite, run_workload, RunConfig, SuiteResult};
pub use table1::Table1;

// Re-exported so downstream users (examples, benches) need only this crate.
pub use sdv_mem::PortKind;
pub use sdv_uarch::RunStats;
pub use sdv_uarch::UarchConfig as ProcessorConfig;
pub use sdv_workloads::Workload;

/// The three memory front-end variants compared throughout §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `xpnoIM`: scalar buses, no vectorization.
    ScalarBus,
    /// `xpIM`: wide buses, no vectorization.
    WideBus,
    /// `xpV`: wide buses plus speculative dynamic vectorization.
    Vectorized,
}

impl Variant {
    /// All three variants in the paper's plotting order.
    #[must_use]
    pub fn all() -> [Variant; 3] {
        [Variant::ScalarBus, Variant::WideBus, Variant::Vectorized]
    }

    /// The label used in the paper's legends (for `ports` ports).
    #[must_use]
    pub fn label(&self, ports: usize) -> String {
        match self {
            Variant::ScalarBus => format!("{ports}pnoIM"),
            Variant::WideBus => format!("{ports}pIM"),
            Variant::Vectorized => format!("{ports}pV"),
        }
    }

    /// Builds the processor configuration for this variant.
    #[must_use]
    pub fn config(&self, width: MachineWidth, ports: usize) -> ProcessorConfig {
        let base = match (self, width) {
            (Variant::ScalarBus, MachineWidth::FourWay) => {
                ProcessorConfig::four_way(ports, PortKind::Scalar)
            }
            (Variant::ScalarBus, MachineWidth::EightWay) => {
                ProcessorConfig::eight_way(ports, PortKind::Scalar)
            }
            (_, MachineWidth::FourWay) => ProcessorConfig::four_way(ports, PortKind::Wide),
            (_, MachineWidth::EightWay) => ProcessorConfig::eight_way(ports, PortKind::Wide),
        };
        base.with_vectorization(matches!(self, Variant::Vectorized))
    }
}

/// The two issue widths evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineWidth {
    /// The 4-way configuration of Table 1.
    FourWay,
    /// The 8-way configuration of Table 1.
    EightWay,
}

impl MachineWidth {
    /// Both widths.
    #[must_use]
    pub fn all() -> [MachineWidth; 2] {
        [MachineWidth::FourWay, MachineWidth::EightWay]
    }

    /// A short label ("4-way" / "8-way").
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            MachineWidth::FourWay => "4-way",
            MachineWidth::EightWay => "8-way",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_configs_match_their_labels() {
        let cfg = Variant::ScalarBus.config(MachineWidth::FourWay, 2);
        assert_eq!(cfg.label(), "2pnoIM");
        assert!(!cfg.vectorization_enabled());
        let cfg = Variant::WideBus.config(MachineWidth::EightWay, 1);
        assert_eq!(cfg.label(), "1pIM");
        assert_eq!(cfg.fetch_width, 8);
        let cfg = Variant::Vectorized.config(MachineWidth::FourWay, 4);
        assert_eq!(cfg.label(), "4pV");
        assert!(cfg.vectorization_enabled());
    }

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::ScalarBus.label(1), "1pnoIM");
        assert_eq!(Variant::WideBus.label(2), "2pIM");
        assert_eq!(Variant::Vectorized.label(4), "4pV");
        assert_eq!(Variant::all().len(), 3);
        assert_eq!(MachineWidth::all().len(), 2);
        assert_eq!(MachineWidth::FourWay.label(), "4-way");
    }
}

//! Experiment layer: processor configurations, the deduplicating parallel run
//! engine, and generators for every table and figure in the paper's
//! evaluation.
//!
//! The crate ties the stack together:
//!
//! * [`engine`] — the [`RunEngine`]: content-hashed memoization of
//!   `(config, workload, budget)` cells and a scoped thread pool,
//! * [`grid`] — the declarative [`SweepGrid`] that expands
//!   `{width} × {ports} × {bus width} × {variant}` cartesian products,
//! * [`experiment`] — the [`Experiment`] facade every figure generator,
//!   bench and the `repro` binary go through,
//! * [`table1`] builds the two processor configurations of Table 1,
//! * [`runner`] holds the per-run plumbing and suite-level aggregates,
//! * [`figures`] regenerates every figure (1, 3, 7, 9–15) and the headline
//!   speed-up numbers of §1/§6 as thin projections over [`RunEngine`] output.
//!
//! # Experiment API
//!
//! ```
//! use sdv_sim::{Experiment, RunConfig, Workload};
//!
//! let exp = Experiment::new(RunConfig::quick())
//!     .threads(2)
//!     .workloads(vec![Workload::Compress, Workload::Swim]);
//! let headline = exp.headline();
//! assert!(headline.ipc_1p_vect > 0.0);
//! // Figure 13 projects the same 1pV suite the headline already simulated,
//! // so it costs zero new cells:
//! let fig13 = exp.fig13();
//! assert_eq!(fig13.rows.len(), 2);
//! let report = exp.report();
//! assert!(report.simulated < report.requested);
//! ```
//!
//! Custom grids map the §4.3 trade-off surface beyond the paper's
//! `[1, 2, 4]`-port cut:
//!
//! ```
//! use sdv_sim::{Experiment, MachineWidth, RunConfig, SweepGrid, Workload};
//!
//! let grid = SweepGrid::new()
//!     .widths(vec![MachineWidth::FourWay])
//!     .ports(vec![1, 8])
//!     .bus_words(vec![2, 8]);
//! let exp = Experiment::new(RunConfig::quick()).workloads(vec![Workload::Swim]);
//! let sweep = exp.sweep(&grid);
//! assert_eq!(grid.cells().len(), sweep.cells.len());
//! ```

pub mod cachefile;
pub mod engine;
pub mod experiment;
pub mod figures;
pub mod grid;
pub mod report;
pub mod runner;
pub mod table1;

pub use engine::{
    preflight_program, CellError, CellFailure, CellKey, CellTiming, EngineReport, EngineTiming,
    RunEngine, DEFAULT_MAX_RETRIES, DEFAULT_PERSIST_EVERY,
};
pub use experiment::Experiment;
pub use figures::*;
pub use grid::{CellSpec, SweepGrid};
pub use report::*;
pub use runner::{run_program, run_suite, run_workload, RunConfig, SuiteResult};
pub use table1::Table1;

// Re-exported so downstream users (examples, benches) need only this crate.
pub use sdv_mem::PortKind;
pub use sdv_obs::{Obs, ObsLevel};
pub use sdv_uarch::UarchConfig as ProcessorConfig;
pub use sdv_uarch::{BusyPath, Processor, RunStats};
pub use sdv_workloads::Workload;

/// The three memory front-end variants compared throughout §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `xpnoIM`: scalar buses, no vectorization.
    ScalarBus,
    /// `xpIM`: wide buses, no vectorization.
    WideBus,
    /// `xpV`: wide buses plus speculative dynamic vectorization.
    Vectorized,
}

impl Variant {
    /// All three variants in the paper's plotting order.
    #[must_use]
    pub fn all() -> [Variant; 3] {
        [Variant::ScalarBus, Variant::WideBus, Variant::Vectorized]
    }

    /// The port kind this variant uses.
    #[must_use]
    pub fn port_kind(&self) -> PortKind {
        match self {
            Variant::ScalarBus => PortKind::Scalar,
            Variant::WideBus | Variant::Vectorized => PortKind::Wide,
        }
    }

    /// Whether this variant enables dynamic vectorization.
    #[must_use]
    pub fn vectorized(&self) -> bool {
        matches!(self, Variant::Vectorized)
    }

    /// The label used in the paper's legends (for `ports` ports).
    ///
    /// Derived from the configuration itself (see
    /// [`sdv_uarch::UarchConfig::label`]), so the label can never disagree
    /// with the config that produced it.
    #[must_use]
    pub fn label(&self, ports: usize) -> String {
        self.config(MachineWidth::FourWay, ports).label()
    }

    /// Builds the processor configuration for this variant with the paper's
    /// default bus width.
    #[must_use]
    pub fn config(&self, width: MachineWidth, ports: usize) -> ProcessorConfig {
        self.config_with_bus(width, ports, sdv_uarch::DEFAULT_BUS_WORDS)
    }

    /// Builds the processor configuration for this variant with an explicit
    /// wide-bus width (in 64-bit elements; ignored by [`Variant::ScalarBus`]).
    #[must_use]
    pub fn config_with_bus(
        &self,
        width: MachineWidth,
        ports: usize,
        bus_words: usize,
    ) -> ProcessorConfig {
        let paper = sdv_core::DvConfig::default();
        self.config_with_dv(
            width,
            ports,
            bus_words,
            paper.vector_length,
            paper.vector_registers,
        )
    }

    /// Builds the processor configuration for this variant with explicit
    /// wide-bus width and DV sizing (vector length in elements, number of
    /// vector registers).  The DV axes are ignored by the non-vectorizing
    /// variants, which therefore collapse across them in a sweep.
    #[must_use]
    pub fn config_with_dv(
        &self,
        width: MachineWidth,
        ports: usize,
        bus_words: usize,
        vector_length: usize,
        vector_registers: usize,
    ) -> ProcessorConfig {
        let builder = ProcessorConfig::builder()
            .issue_width(width.issue_width())
            .ports(ports)
            .port_kind(self.port_kind())
            .bus_words(bus_words);
        let builder = if self.vectorized() {
            builder.dv_config(sdv_core::DvConfig {
                vector_length,
                vector_registers,
                ..sdv_core::DvConfig::default()
            })
        } else {
            builder
        };
        builder.build()
    }
}

/// The machine issue width: the paper's two columns of Table 1, plus custom
/// widths for sweeps beyond them.
///
/// Equality and hashing go by the issue width itself, so
/// `MachineWidth::Custom(4) == MachineWidth::FourWay` — the two spellings
/// build identical configurations and must name the same sweep coordinate.
#[derive(Debug, Clone, Copy)]
pub enum MachineWidth {
    /// The 4-way configuration of Table 1.
    FourWay,
    /// The 8-way configuration of Table 1.
    EightWay,
    /// An arbitrary issue width (window, LSQ and functional units scale).
    Custom(usize),
}

impl PartialEq for MachineWidth {
    fn eq(&self, other: &Self) -> bool {
        self.issue_width() == other.issue_width()
    }
}

impl Eq for MachineWidth {}

impl std::hash::Hash for MachineWidth {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.issue_width().hash(state);
    }
}

impl MachineWidth {
    /// The two widths evaluated in the paper.
    #[must_use]
    pub fn all() -> [MachineWidth; 2] {
        [MachineWidth::FourWay, MachineWidth::EightWay]
    }

    /// The fetch/issue/commit width.
    #[must_use]
    pub fn issue_width(&self) -> usize {
        match self {
            MachineWidth::FourWay => 4,
            MachineWidth::EightWay => 8,
            MachineWidth::Custom(w) => *w,
        }
    }

    /// A short label ("4-way" / "8-way" / "6-way").
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}-way", self.issue_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_configs_match_their_labels() {
        let cfg = Variant::ScalarBus.config(MachineWidth::FourWay, 2);
        assert_eq!(cfg.label(), "2pnoIM");
        assert!(!cfg.vectorization_enabled());
        let cfg = Variant::WideBus.config(MachineWidth::EightWay, 1);
        assert_eq!(cfg.label(), "1pIM");
        assert_eq!(cfg.fetch_width, 8);
        let cfg = Variant::Vectorized.config(MachineWidth::FourWay, 4);
        assert_eq!(cfg.label(), "4pV");
        assert!(cfg.vectorization_enabled());
    }

    #[test]
    fn variant_labels_delegate_to_the_config() {
        assert_eq!(Variant::ScalarBus.label(1), "1pnoIM");
        assert_eq!(Variant::WideBus.label(2), "2pIM");
        assert_eq!(Variant::Vectorized.label(4), "4pV");
        for variant in Variant::all() {
            for ports in [1, 2, 4, 8] {
                assert_eq!(
                    variant.label(ports),
                    variant.config(MachineWidth::EightWay, ports).label(),
                    "label and config must agree for {variant:?} at {ports} ports"
                );
            }
        }
        assert_eq!(Variant::all().len(), 3);
        assert_eq!(MachineWidth::all().len(), 2);
        assert_eq!(MachineWidth::FourWay.label(), "4-way");
    }

    #[test]
    fn bus_width_reaches_the_config() {
        let cfg = Variant::Vectorized.config_with_bus(MachineWidth::FourWay, 1, 8);
        assert_eq!(cfg.line_words(), 8);
        assert_eq!(cfg.label(), "1pVb8");
        let scalar = Variant::ScalarBus.config_with_bus(MachineWidth::FourWay, 1, 8);
        assert_eq!(
            scalar,
            Variant::ScalarBus.config(MachineWidth::FourWay, 1),
            "scalar variants ignore the bus axis"
        );
    }

    #[test]
    fn custom_widths_scale() {
        assert_eq!(MachineWidth::Custom(6).issue_width(), 6);
        assert_eq!(MachineWidth::Custom(6).label(), "6-way");
        let cfg = Variant::WideBus.config(MachineWidth::Custom(2), 1);
        assert_eq!(cfg.issue_width, 2);
        assert_eq!(cfg.rob_size, 64);
    }

    #[test]
    fn custom_and_named_widths_are_the_same_coordinate() {
        assert_eq!(MachineWidth::Custom(4), MachineWidth::FourWay);
        assert_eq!(MachineWidth::Custom(8), MachineWidth::EightWay);
        assert_ne!(MachineWidth::Custom(2), MachineWidth::FourWay);
        use std::collections::HashSet;
        let set: HashSet<MachineWidth> = [MachineWidth::FourWay, MachineWidth::Custom(4)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 1, "equal widths must hash identically");
    }
}

//! Architectural registers.
//!
//! The SDV ISA has 32 integer registers and 32 floating-point registers.  The
//! whole set is addressed through a single flat index space (0‥63) so that the
//! rename table of the timing model can be a plain array; [`ArchReg`] is a
//! light new-type over that index.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: usize = 32;
/// Total number of architectural registers (integer + floating point).
pub const NUM_ARCH_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// The class (integer or floating point) of an architectural register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Integer register file (`x0`‥`x31`).
    Int,
    /// Floating-point register file (`f0`‥`f31`).
    Fp,
}

/// An architectural register.
///
/// Integer registers occupy flat indices `0..32`, floating-point registers
/// occupy `32..64`.  Register `x0` is hard-wired to zero by the emulator and
/// the timing model.
///
/// ```
/// use sdv_isa::{ArchReg, RegClass};
///
/// let a = ArchReg::int(5);
/// let f = ArchReg::fp(5);
/// assert_ne!(a, f);
/// assert_eq!(a.class(), RegClass::Int);
/// assert_eq!(f.class(), RegClass::Fp);
/// assert_eq!(f.number(), 5);
/// assert_eq!(f.flat_index(), 37);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u8);

impl ArchReg {
    /// The integer register that always reads as zero.
    pub const ZERO: ArchReg = ArchReg(0);

    /// Conventional stack-pointer register (`x29`).
    pub const SP: ArchReg = ArchReg(29);

    /// Conventional link register written by `jal`/`jalr` (`x31`).
    pub const RA: ArchReg = ArchReg(31);

    /// Creates the integer register `x<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub const fn int(n: u8) -> Self {
        assert!((n as usize) < NUM_INT_REGS, "integer register out of range");
        ArchReg(n)
    }

    /// Creates the floating-point register `f<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub const fn fp(n: u8) -> Self {
        assert!((n as usize) < NUM_FP_REGS, "fp register out of range");
        ArchReg(n + NUM_INT_REGS as u8)
    }

    /// Reconstructs a register from its flat index (`0..64`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS`.
    #[must_use]
    pub const fn from_flat_index(index: usize) -> Self {
        assert!(index < NUM_ARCH_REGS, "flat register index out of range");
        ArchReg(index as u8)
    }

    /// The flat index of this register in `0..64`.
    #[must_use]
    pub const fn flat_index(self) -> usize {
        self.0 as usize
    }

    /// The register number within its own class (`0..32`).
    #[must_use]
    pub const fn number(self) -> u8 {
        if self.0 < NUM_INT_REGS as u8 {
            self.0
        } else {
            self.0 - NUM_INT_REGS as u8
        }
    }

    /// The class of this register.
    #[must_use]
    pub const fn class(self) -> RegClass {
        if self.0 < NUM_INT_REGS as u8 {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// Whether this is an integer register.
    #[must_use]
    pub const fn is_int(self) -> bool {
        matches!(self.class(), RegClass::Int)
    }

    /// Whether this is a floating-point register.
    #[must_use]
    pub const fn is_fp(self) -> bool {
        matches!(self.class(), RegClass::Fp)
    }

    /// Whether this register is the hard-wired zero register.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over every architectural register in flat-index order.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS).map(ArchReg::from_flat_index)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "x{}", self.number()),
            RegClass::Fp => write!(f, "f{}", self.number()),
        }
    }
}

impl From<ArchReg> for usize {
    fn from(value: ArchReg) -> Self {
        value.flat_index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_registers_do_not_alias() {
        for n in 0..32u8 {
            assert_ne!(ArchReg::int(n), ArchReg::fp(n));
            assert_eq!(ArchReg::int(n).number(), n);
            assert_eq!(ArchReg::fp(n).number(), n);
        }
    }

    #[test]
    fn flat_index_round_trips() {
        for r in ArchReg::all() {
            assert_eq!(ArchReg::from_flat_index(r.flat_index()), r);
        }
        assert_eq!(ArchReg::all().count(), NUM_ARCH_REGS);
    }

    #[test]
    fn classes_are_correct() {
        assert!(ArchReg::int(3).is_int());
        assert!(!ArchReg::int(3).is_fp());
        assert!(ArchReg::fp(3).is_fp());
        assert_eq!(ArchReg::int(31).flat_index(), 31);
        assert_eq!(ArchReg::fp(0).flat_index(), 32);
    }

    #[test]
    fn zero_register() {
        assert!(ArchReg::ZERO.is_zero());
        assert!(ArchReg::ZERO.is_int());
        assert!(!ArchReg::fp(0).is_zero());
        assert!(!ArchReg::int(1).is_zero());
    }

    #[test]
    fn display_names() {
        assert_eq!(ArchReg::int(7).to_string(), "x7");
        assert_eq!(ArchReg::fp(21).to_string(), "f21");
        assert_eq!(ArchReg::SP.to_string(), "x29");
        assert_eq!(ArchReg::RA.to_string(), "x31");
    }

    #[test]
    #[should_panic(expected = "integer register out of range")]
    fn int_register_out_of_range_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "fp register out of range")]
    fn fp_register_out_of_range_panics() {
        let _ = ArchReg::fp(32);
    }

    #[test]
    #[should_panic(expected = "flat register index out of range")]
    fn flat_index_out_of_range_panics() {
        let _ = ArchReg::from_flat_index(64);
    }
}

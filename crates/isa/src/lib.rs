//! The SDV instruction set architecture.
//!
//! The paper evaluates speculative dynamic vectorization on Alpha binaries run
//! under SimpleScalar.  The mechanism itself is ISA-agnostic: it only observes
//! program counters, effective addresses and register dataflow.  This crate
//! defines a compact 64-bit load/store ISA ("SDV ISA") that the rest of the
//! workspace emulates and simulates:
//!
//! * 32 integer registers (`x0`‥`x31`, `x0` hard-wired to zero) and
//!   32 floating-point registers (`f0`‥`f31`),
//! * fixed 4-byte instruction slots starting at [`TEXT_BASE`],
//! * the usual RISC repertoire: integer/FP arithmetic, sized loads and stores,
//!   conditional branches, jumps and a `halt`.
//!
//! Programs are built with the embedded assembler [`Asm`], which resolves
//! labels and lays out data segments, and are executed by `sdv-emu`.
//!
//! ```
//! use sdv_isa::{Asm, ArchReg};
//!
//! let mut a = Asm::new();
//! let xs = a.data_u64(&[1, 2, 3, 4]);
//! let (n, sum, ptr, x) = (ArchReg::int(1), ArchReg::int(2), ArchReg::int(3), ArchReg::int(4));
//! a.li(n, 4);
//! a.li(sum, 0);
//! a.li(ptr, xs as i64);
//! a.label("loop");
//! a.ld(x, ptr, 0);
//! a.add(sum, sum, x);
//! a.addi(ptr, ptr, 8);
//! a.addi(n, n, -1);
//! a.bne(n, ArchReg::ZERO, "loop");
//! a.halt();
//! let program = a.finish();
//! assert_eq!(program.len(), 9);
//! ```

pub mod asm;
pub mod inst;
pub mod op;
pub mod program;
pub mod reg;

pub use asm::Asm;
pub use inst::Inst;
pub use op::{MemWidth, OpClass, Opcode};
pub use program::{DataSegment, Program, DATA_BASE, INST_BYTES, STACK_TOP, TEXT_BASE};
pub use reg::{ArchReg, RegClass, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS};

//! Opcodes and opcode classification.
//!
//! The timing model cares about *classes* of operations (which functional unit
//! an instruction needs, whether it touches memory, whether it can be
//! vectorized) much more than about individual opcodes, so every [`Opcode`]
//! maps onto an [`OpClass`] and, for memory operations, a [`MemWidth`].

use std::fmt;

/// Width in bytes of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemWidth {
    /// One byte.
    B1,
    /// Two bytes.
    B2,
    /// Four bytes.
    B4,
    /// Eight bytes.
    B8,
}

impl MemWidth {
    /// The access size in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// Broad operation classes used by the issue logic and functional-unit pool.
///
/// The latencies associated with each class are configuration of the timing
/// model (`sdv-uarch`), mirroring Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Simple integer ALU operation (1-cycle class in the paper).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Simple floating-point operation (add/sub/compare/convert).
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump / call / return.
    Jump,
    /// No operation.
    Nop,
    /// Stops the program.
    Halt,
}

impl OpClass {
    /// Whether the class accesses memory.
    #[must_use]
    pub const fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the class transfers control.
    #[must_use]
    pub const fn is_control(self) -> bool {
        matches!(self, OpClass::Branch | OpClass::Jump)
    }

    /// Whether instructions of this class are candidates for dynamic
    /// vectorization (loads and arithmetic, per §3.1/§3.2 of the paper).
    #[must_use]
    pub const fn is_vectorizable(self) -> bool {
        matches!(
            self,
            OpClass::IntAlu
                | OpClass::IntMul
                | OpClass::IntDiv
                | OpClass::FpAdd
                | OpClass::FpMul
                | OpClass::FpDiv
                | OpClass::Load
        )
    }
}

/// Every opcode of the SDV ISA.
///
/// Operand conventions (see [`crate::Inst`]):
/// * three-register ALU ops use `dst`, `src1`, `src2`;
/// * immediate ALU ops use `dst`, `src1` and `imm`;
/// * loads use `dst`, base register `src1` and displacement `imm`;
/// * stores use data register `src2`, base register `src1` and displacement `imm`;
/// * branches compare `src1` with `src2` and jump to the absolute target `imm`;
/// * `J`/`Jal` jump to the absolute target `imm`; `Jr`/`Jalr` jump to `src1 + imm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are systematic; class/semantics documented above
pub enum Opcode {
    // Integer ALU (register-register).
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    // Integer ALU (register-immediate).
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    /// Load a 64-bit immediate into an integer register.
    Li,
    // Integer multiply / divide.
    Mul,
    Mulh,
    Div,
    Rem,
    // Floating point.
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    Fsqrt,
    Fneg,
    Fabs,
    Fmin,
    Fmax,
    /// Convert a signed 64-bit integer (`src1`, integer reg) to f64 (`dst`, fp reg).
    Fcvtlf,
    /// Convert an f64 (`src1`, fp reg) to a signed 64-bit integer (`dst`, integer reg).
    Fcvtfl,
    /// FP compare equal; writes 1/0 to an integer register.
    Feq,
    /// FP compare less-than; writes 1/0 to an integer register.
    Flt,
    /// FP compare less-or-equal; writes 1/0 to an integer register.
    Fle,
    // Loads.
    Lb,
    Lbu,
    Lh,
    Lhu,
    Lw,
    Lwu,
    Ld,
    Flw,
    Fld,
    // Stores.
    Sb,
    Sh,
    Sw,
    Sd,
    Fsw,
    Fsd,
    // Branches.
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    // Jumps.
    J,
    Jal,
    Jr,
    Jalr,
    // Misc.
    Nop,
    Halt,
}

impl Opcode {
    /// The operation class of this opcode.
    #[must_use]
    pub const fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Addi | Andi | Ori
            | Xori | Slli | Srli | Srai | Slti | Li => OpClass::IntAlu,
            Mul | Mulh => OpClass::IntMul,
            Div | Rem => OpClass::IntDiv,
            Fadd | Fsub | Fneg | Fabs | Fmin | Fmax | Fcvtlf | Fcvtfl | Feq | Flt | Fle => {
                OpClass::FpAdd
            }
            Fmul => OpClass::FpMul,
            Fdiv | Fsqrt => OpClass::FpDiv,
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Flw | Fld => OpClass::Load,
            Sb | Sh | Sw | Sd | Fsw | Fsd => OpClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => OpClass::Branch,
            J | Jal | Jr | Jalr => OpClass::Jump,
            Nop => OpClass::Nop,
            Halt => OpClass::Halt,
        }
    }

    /// The width of the memory access performed by this opcode, if any.
    #[must_use]
    pub const fn mem_width(self) -> Option<MemWidth> {
        use Opcode::*;
        match self {
            Lb | Lbu | Sb => Some(MemWidth::B1),
            Lh | Lhu | Sh => Some(MemWidth::B2),
            Lw | Lwu | Sw | Flw | Fsw => Some(MemWidth::B4),
            Ld | Fld | Sd | Fsd => Some(MemWidth::B8),
            _ => None,
        }
    }

    /// Whether this opcode is a load.
    #[must_use]
    pub const fn is_load(self) -> bool {
        matches!(self.class(), OpClass::Load)
    }

    /// Whether this opcode is a store.
    #[must_use]
    pub const fn is_store(self) -> bool {
        matches!(self.class(), OpClass::Store)
    }

    /// Whether this opcode is a conditional branch.
    #[must_use]
    pub const fn is_branch(self) -> bool {
        matches!(self.class(), OpClass::Branch)
    }

    /// Whether this opcode transfers control (branch or jump).
    #[must_use]
    pub const fn is_control(self) -> bool {
        self.class().is_control()
    }

    /// Whether the destination register (if any) is a floating-point register.
    #[must_use]
    pub const fn writes_fp(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fneg | Fabs | Fmin | Fmax | Fcvtlf | Flw | Fld
        )
    }

    /// A short lowercase mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Slti => "slti",
            Li => "li",
            Mul => "mul",
            Mulh => "mulh",
            Div => "div",
            Rem => "rem",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fsqrt => "fsqrt",
            Fneg => "fneg",
            Fabs => "fabs",
            Fmin => "fmin",
            Fmax => "fmax",
            Fcvtlf => "fcvt.l.f",
            Fcvtfl => "fcvt.f.l",
            Feq => "feq",
            Flt => "flt",
            Fle => "fle",
            Lb => "lb",
            Lbu => "lbu",
            Lh => "lh",
            Lhu => "lhu",
            Lw => "lw",
            Lwu => "lwu",
            Ld => "ld",
            Flw => "flw",
            Fld => "fld",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Sd => "sd",
            Fsw => "fsw",
            Fsd => "fsd",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            J => "j",
            Jal => "jal",
            Jr => "jr",
            Jalr => "jalr",
            Nop => "nop",
            Halt => "halt",
        }
    }

    /// Iterates over every opcode (useful for exhaustive tests).
    pub fn all() -> impl Iterator<Item = Opcode> {
        use Opcode::*;
        [
            Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Addi, Andi, Ori, Xori, Slli, Srli,
            Srai, Slti, Li, Mul, Mulh, Div, Rem, Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fneg, Fabs, Fmin,
            Fmax, Fcvtlf, Fcvtfl, Feq, Flt, Fle, Lb, Lbu, Lh, Lhu, Lw, Lwu, Ld, Flw, Fld, Sb, Sh,
            Sw, Sd, Fsw, Fsd, Beq, Bne, Blt, Bge, Bltu, Bgeu, J, Jal, Jr, Jalr, Nop, Halt,
        ]
        .into_iter()
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_opcodes_have_widths() {
        for op in Opcode::all() {
            match op.class() {
                OpClass::Load | OpClass::Store => {
                    assert!(op.mem_width().is_some(), "{op} should have a width");
                }
                _ => assert!(op.mem_width().is_none(), "{op} should not have a width"),
            }
        }
    }

    #[test]
    fn class_predicates_are_consistent() {
        for op in Opcode::all() {
            assert_eq!(op.is_load(), op.class() == OpClass::Load);
            assert_eq!(op.is_store(), op.class() == OpClass::Store);
            assert_eq!(op.is_branch(), op.class() == OpClass::Branch);
            assert_eq!(op.is_control(), op.class().is_control());
        }
    }

    #[test]
    fn stores_and_branches_are_never_vectorizable() {
        assert!(!OpClass::Store.is_vectorizable());
        assert!(!OpClass::Branch.is_vectorizable());
        assert!(!OpClass::Jump.is_vectorizable());
        assert!(OpClass::Load.is_vectorizable());
        assert!(OpClass::IntAlu.is_vectorizable());
        assert!(OpClass::FpMul.is_vectorizable());
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B2.bytes(), 2);
        assert_eq!(MemWidth::B4.bytes(), 4);
        assert_eq!(MemWidth::B8.bytes(), 8);
        assert_eq!(Opcode::Ld.mem_width(), Some(MemWidth::B8));
        assert_eq!(Opcode::Flw.mem_width(), Some(MemWidth::B4));
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::all() {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
        }
    }

    #[test]
    fn fp_destination_classification() {
        assert!(Opcode::Fadd.writes_fp());
        assert!(Opcode::Fld.writes_fp());
        assert!(!Opcode::Fcvtfl.writes_fp());
        assert!(!Opcode::Feq.writes_fp());
        assert!(!Opcode::Add.writes_fp());
    }
}

//! Program container: an instruction image plus initial data segments.

use crate::inst::Inst;
use std::collections::HashMap;
use std::fmt;

/// Base address of the text (instruction) segment.
pub const TEXT_BASE: u64 = 0x0000_1000;

/// Size of one instruction slot in bytes.
pub const INST_BYTES: u64 = 4;

/// Default base address for data allocated by the assembler.
pub const DATA_BASE: u64 = 0x0010_0000;

/// Default address of the top of the downward-growing stack.
pub const STACK_TOP: u64 = 0x7fff_0000;

/// A contiguous chunk of initialised memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// First byte address of the segment.
    pub addr: u64,
    /// Initial contents.
    pub bytes: Vec<u8>,
}

impl DataSegment {
    /// The exclusive end address of the segment.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.addr + self.bytes.len() as u64
    }
}

/// A complete program: instructions, label map and initial data image.
///
/// Instructions occupy consecutive 4-byte slots starting at [`TEXT_BASE`];
/// the PC of instruction `i` is `TEXT_BASE + 4 * i`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    data: Vec<DataSegment>,
}

impl Program {
    /// Creates a program from raw parts.  Normally produced by [`crate::Asm::finish`].
    #[must_use]
    pub fn new(insts: Vec<Inst>, labels: HashMap<String, usize>, data: Vec<DataSegment>) -> Self {
        Program {
            insts,
            labels,
            data,
        }
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry PC (the address of the first instruction).
    #[must_use]
    pub fn entry_pc(&self) -> u64 {
        TEXT_BASE
    }

    /// The PC of the instruction at index `idx`.
    #[must_use]
    pub fn pc_of(idx: usize) -> u64 {
        TEXT_BASE + idx as u64 * INST_BYTES
    }

    /// The instruction index corresponding to `pc`, if `pc` falls inside the
    /// text segment.
    #[must_use]
    pub fn index_of_pc(&self, pc: u64) -> Option<usize> {
        if pc < TEXT_BASE || !(pc - TEXT_BASE).is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = ((pc - TEXT_BASE) / INST_BYTES) as usize;
        (idx < self.insts.len()).then_some(idx)
    }

    /// The instruction stored at `pc`, if any.
    #[must_use]
    pub fn inst_at(&self, pc: u64) -> Option<&Inst> {
        self.index_of_pc(pc).map(|i| &self.insts[i])
    }

    /// All instructions in text order.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The PC a label resolves to, if the label exists.
    #[must_use]
    pub fn label_pc(&self, name: &str) -> Option<u64> {
        self.labels.get(name).map(|&i| Self::pc_of(i))
    }

    /// Initial data segments.
    #[must_use]
    pub fn data_segments(&self) -> &[DataSegment] {
        &self.data
    }

    /// Iterates over `(pc, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Inst)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (Self::pc_of(i), inst))
    }

    /// Total number of initialised data bytes.
    #[must_use]
    pub fn data_bytes(&self) -> usize {
        self.data.iter().map(|d| d.bytes.len()).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut pc_labels: HashMap<usize, Vec<&str>> = HashMap::new();
        for (name, &idx) in &self.labels {
            pc_labels.entry(idx).or_default().push(name);
        }
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(names) = pc_labels.get(&i) {
                for name in names {
                    writeln!(f, "{name}:")?;
                }
            }
            writeln!(f, "  {:#06x}:  {inst}", Self::pc_of(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;
    use crate::reg::ArchReg;

    fn tiny() -> Program {
        let insts = vec![
            Inst::ri(Opcode::Li, ArchReg::int(1), 7),
            Inst::rrr(
                Opcode::Add,
                ArchReg::int(2),
                ArchReg::int(1),
                ArchReg::int(1),
            ),
            Inst::halt(),
        ];
        let mut labels = HashMap::new();
        labels.insert("start".to_string(), 0);
        labels.insert("end".to_string(), 2);
        Program::new(
            insts,
            labels,
            vec![DataSegment {
                addr: 0x0001_0000,
                bytes: vec![1, 2, 3],
            }],
        )
    }

    #[test]
    fn pc_index_round_trip() {
        let p = tiny();
        for i in 0..p.len() {
            let pc = Program::pc_of(i);
            assert_eq!(p.index_of_pc(pc), Some(i));
            assert_eq!(p.inst_at(pc), Some(&p.insts()[i]));
        }
        assert_eq!(p.index_of_pc(TEXT_BASE + 2), None, "misaligned pc");
        assert_eq!(p.index_of_pc(TEXT_BASE - 4), None, "pc below text");
        assert_eq!(p.index_of_pc(Program::pc_of(p.len())), None, "pc past end");
    }

    #[test]
    fn labels_resolve_to_pcs() {
        let p = tiny();
        assert_eq!(p.label_pc("start"), Some(TEXT_BASE));
        assert_eq!(p.label_pc("end"), Some(TEXT_BASE + 8));
        assert_eq!(p.label_pc("missing"), None);
    }

    #[test]
    fn iteration_and_sizes() {
        let p = tiny();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.iter().count(), 3);
        assert_eq!(p.entry_pc(), TEXT_BASE);
        assert_eq!(p.data_bytes(), 3);
        assert_eq!(p.data_segments()[0].end(), 0x0001_0000 + 3);
    }

    #[test]
    fn display_contains_labels_and_mnemonics() {
        let text = tiny().to_string();
        assert!(text.contains("start:"));
        assert!(text.contains("end:"));
        assert!(text.contains("add x2, x1, x1"));
        assert!(text.contains("halt"));
    }
}

//! Instruction words.

use crate::op::{OpClass, Opcode};
use crate::reg::ArchReg;
use std::fmt;

/// A decoded instruction.
///
/// All operand slots are optional; which ones are meaningful depends on the
/// [`Opcode`] (see its documentation for the conventions).  Instructions are
/// plain values: the assembler produces them, the emulator interprets them and
/// the timing model copies them into pipeline structures.
///
/// ```
/// use sdv_isa::{ArchReg, Inst, Opcode};
///
/// let add = Inst::rrr(Opcode::Add, ArchReg::int(1), ArchReg::int(2), ArchReg::int(3));
/// assert_eq!(add.defs(), Some(ArchReg::int(1)));
/// assert_eq!(add.uses(), vec![ArchReg::int(2), ArchReg::int(3)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub op: Opcode,
    /// Destination register, if the instruction writes one.
    pub dst: Option<ArchReg>,
    /// First source register.
    pub src1: Option<ArchReg>,
    /// Second source register.
    pub src2: Option<ArchReg>,
    /// Immediate operand: displacement for memory operations, absolute target
    /// for control transfers, literal for immediate ALU operations.
    pub imm: i64,
}

impl Inst {
    /// A register-register-register instruction (`dst = src1 op src2`).
    #[must_use]
    pub const fn rrr(op: Opcode, dst: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        Inst {
            op,
            dst: Some(dst),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
        }
    }

    /// A register-register-immediate instruction (`dst = src1 op imm`).
    #[must_use]
    pub const fn rri(op: Opcode, dst: ArchReg, src1: ArchReg, imm: i64) -> Self {
        Inst {
            op,
            dst: Some(dst),
            src1: Some(src1),
            src2: None,
            imm,
        }
    }

    /// A register-immediate instruction (`dst = imm`), e.g. `li`.
    #[must_use]
    pub const fn ri(op: Opcode, dst: ArchReg, imm: i64) -> Self {
        Inst {
            op,
            dst: Some(dst),
            src1: None,
            src2: None,
            imm,
        }
    }

    /// A unary register-register instruction (`dst = op src1`).
    #[must_use]
    pub const fn rr(op: Opcode, dst: ArchReg, src1: ArchReg) -> Self {
        Inst {
            op,
            dst: Some(dst),
            src1: Some(src1),
            src2: None,
            imm: 0,
        }
    }

    /// A load: `dst = mem[src1 + imm]`.
    #[must_use]
    pub const fn load(op: Opcode, dst: ArchReg, base: ArchReg, offset: i64) -> Self {
        Inst {
            op,
            dst: Some(dst),
            src1: Some(base),
            src2: None,
            imm: offset,
        }
    }

    /// A store: `mem[src1 + imm] = src2`.
    #[must_use]
    pub const fn store(op: Opcode, data: ArchReg, base: ArchReg, offset: i64) -> Self {
        Inst {
            op,
            dst: None,
            src1: Some(base),
            src2: Some(data),
            imm: offset,
        }
    }

    /// A conditional branch comparing `src1` and `src2`, targeting the
    /// absolute PC `target`.
    #[must_use]
    pub const fn branch(op: Opcode, src1: ArchReg, src2: ArchReg, target: i64) -> Self {
        Inst {
            op,
            dst: None,
            src1: Some(src1),
            src2: Some(src2),
            imm: target,
        }
    }

    /// An instruction with no operands (`nop`, `halt`, `j target`).
    #[must_use]
    pub const fn op_only(op: Opcode, imm: i64) -> Self {
        Inst {
            op,
            dst: None,
            src1: None,
            src2: None,
            imm,
        }
    }

    /// The operation class (shorthand for `self.op.class()`).
    #[must_use]
    pub const fn class(&self) -> OpClass {
        self.op.class()
    }

    /// The register defined (written) by this instruction.
    ///
    /// Writes to the hard-wired zero register are reported here unchanged; the
    /// emulator and the rename stage ignore them.
    #[must_use]
    pub fn defs(&self) -> Option<ArchReg> {
        self.dst
    }

    /// The registers used (read) by this instruction, in `src1`, `src2` order.
    #[must_use]
    pub fn uses(&self) -> Vec<ArchReg> {
        self.src1.into_iter().chain(self.src2).collect()
    }

    /// Whether this instruction reads or writes memory.
    #[must_use]
    pub const fn is_mem(&self) -> bool {
        self.op.class().is_mem()
    }

    /// Whether this instruction is a load.
    #[must_use]
    pub const fn is_load(&self) -> bool {
        self.op.is_load()
    }

    /// Whether this instruction is a store.
    #[must_use]
    pub const fn is_store(&self) -> bool {
        self.op.is_store()
    }

    /// Whether this instruction transfers control.
    #[must_use]
    pub const fn is_control(&self) -> bool {
        self.op.is_control()
    }

    /// A `nop` instruction.
    #[must_use]
    pub const fn nop() -> Self {
        Inst::op_only(Opcode::Nop, 0)
    }

    /// A `halt` instruction.
    #[must_use]
    pub const fn halt() -> Self {
        Inst::op_only(Opcode::Halt, 0)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use OpClass::*;
        match self.class() {
            Load => write!(
                f,
                "{} {}, {}({})",
                self.op,
                self.dst.expect("load has dst"),
                self.imm,
                self.src1.expect("load has base"),
            ),
            Store => write!(
                f,
                "{} {}, {}({})",
                self.op,
                self.src2.expect("store has data"),
                self.imm,
                self.src1.expect("store has base"),
            ),
            Branch => write!(
                f,
                "{} {}, {}, {:#x}",
                self.op,
                self.src1.expect("branch has src1"),
                self.src2.expect("branch has src2"),
                self.imm,
            ),
            Jump => match (self.dst, self.src1) {
                (Some(d), Some(s)) => write!(f, "{} {}, {}, {:#x}", self.op, d, s, self.imm),
                (Some(d), None) => write!(f, "{} {}, {:#x}", self.op, d, self.imm),
                (None, Some(s)) => write!(f, "{} {}", self.op, s),
                (None, None) => write!(f, "{} {:#x}", self.op, self.imm),
            },
            Nop | Halt => write!(f, "{}", self.op),
            _ => {
                write!(f, "{}", self.op)?;
                let mut sep = " ";
                if let Some(d) = self.dst {
                    write!(f, "{sep}{d}")?;
                    sep = ", ";
                }
                if let Some(s) = self.src1 {
                    write!(f, "{sep}{s}")?;
                    sep = ", ";
                }
                if let Some(s) = self.src2 {
                    write!(f, "{sep}{s}")?;
                    sep = ", ";
                }
                if (self.src2.is_none() || self.imm != 0)
                    && (matches!(self.op, Opcode::Li)
                        || self.src2.is_none() && !matches!(self.op, Opcode::Fneg | Opcode::Fabs))
                {
                    write!(f, "{sep}{}", self.imm)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_operands() {
        let ld = Inst::load(Opcode::Ld, ArchReg::int(1), ArchReg::int(2), 16);
        assert_eq!(ld.defs(), Some(ArchReg::int(1)));
        assert_eq!(ld.uses(), vec![ArchReg::int(2)]);
        assert!(ld.is_load() && ld.is_mem() && !ld.is_store());

        let st = Inst::store(Opcode::Sd, ArchReg::int(3), ArchReg::int(4), -8);
        assert_eq!(st.defs(), None);
        assert_eq!(st.uses(), vec![ArchReg::int(4), ArchReg::int(3)]);
        assert!(st.is_store() && st.is_mem());

        let br = Inst::branch(Opcode::Beq, ArchReg::int(1), ArchReg::int(2), 0x1040);
        assert!(br.is_control());
        assert_eq!(br.defs(), None);
    }

    #[test]
    fn display_formats_common_shapes() {
        let add = Inst::rrr(
            Opcode::Add,
            ArchReg::int(1),
            ArchReg::int(2),
            ArchReg::int(3),
        );
        assert_eq!(add.to_string(), "add x1, x2, x3");
        let ld = Inst::load(Opcode::Fld, ArchReg::fp(1), ArchReg::int(2), 24);
        assert_eq!(ld.to_string(), "fld f1, 24(x2)");
        let st = Inst::store(Opcode::Sw, ArchReg::int(5), ArchReg::int(6), 4);
        assert_eq!(st.to_string(), "sw x5, 4(x6)");
        let li = Inst::ri(Opcode::Li, ArchReg::int(9), 1234);
        assert_eq!(li.to_string(), "li x9, 1234");
        let halt = Inst::halt();
        assert_eq!(halt.to_string(), "halt");
        let beq = Inst::branch(Opcode::Beq, ArchReg::int(1), ArchReg::ZERO, 0x1000);
        assert_eq!(beq.to_string(), "beq x1, x0, 0x1000");
    }

    #[test]
    fn nop_and_halt_helpers() {
        assert_eq!(Inst::nop().op, Opcode::Nop);
        assert_eq!(Inst::halt().op, Opcode::Halt);
        assert!(Inst::nop().uses().is_empty());
        assert_eq!(Inst::halt().defs(), None);
    }
}

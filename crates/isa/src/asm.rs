//! An embedded assembler for building SDV programs from Rust code.
//!
//! The synthetic workloads of `sdv-workloads` and the unit tests of the rest
//! of the workspace construct programs with [`Asm`]: each method appends one
//! instruction, labels may be referenced before they are defined, and data can
//! be laid out in the data segment with the `data_*`/`alloc` helpers.

use crate::inst::Inst;
use crate::op::Opcode;
use crate::program::{DataSegment, Program, DATA_BASE};
use crate::reg::ArchReg;
use std::collections::HashMap;

/// Builder for [`Program`]s.
///
/// # Examples
///
/// ```
/// use sdv_isa::{Asm, ArchReg};
///
/// let mut a = Asm::new();
/// let buf = a.alloc(64, 8);
/// let (i, p) = (ArchReg::int(1), ArchReg::int(2));
/// a.li(i, 8);
/// a.li(p, buf as i64);
/// a.label("fill");
/// a.sd(i, p, 0);
/// a.addi(p, p, 8);
/// a.addi(i, i, -1);
/// a.bne(i, ArchReg::ZERO, "fill");
/// a.halt();
/// let prog = a.finish();
/// assert_eq!(prog.label_pc("fill"), Some(sdv_isa::TEXT_BASE + 8));
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    /// (instruction index, label name) pairs whose `imm` still needs patching.
    fixups: Vec<(usize, String)>,
    data: Vec<DataSegment>,
    next_data: u64,
}

impl Asm {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Asm {
            next_data: DATA_BASE,
            ..Asm::default()
        }
    }

    /// The index of the next instruction to be emitted.
    #[must_use]
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.insts.len());
        assert!(prev.is_none(), "label `{name}` defined twice");
    }

    /// Appends an arbitrary pre-built instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    // ----------------------------------------------------------------- data

    /// Reserves `len` zero-initialised bytes aligned to `align` and returns the address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, len: usize, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next_data + align - 1) & !(align - 1);
        self.next_data = addr + len as u64;
        self.data.push(DataSegment {
            addr,
            bytes: vec![0; len],
        });
        addr
    }

    /// Lays out raw bytes in the data segment and returns their address.
    pub fn data_bytes(&mut self, bytes: &[u8], align: u64) -> u64 {
        let addr = self.alloc(bytes.len(), align);
        let seg = self.data.last_mut().expect("alloc pushed a segment");
        seg.bytes.copy_from_slice(bytes);
        addr
    }

    /// Lays out an array of `u64` values and returns its address.
    pub fn data_u64(&mut self, values: &[u64]) -> u64 {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.data_bytes(&bytes, 8)
    }

    /// Lays out an array of `f64` values and returns its address.
    pub fn data_f64(&mut self, values: &[f64]) -> u64 {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.data_bytes(&bytes, 8)
    }

    /// Lays out an array of `u32` values and returns its address.
    pub fn data_u32(&mut self, values: &[u32]) -> u64 {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.data_bytes(&bytes, 4)
    }

    // --------------------------------------------------------- integer alu

    /// `dst = src1 + src2`
    pub fn add(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Add, dst, src1, src2));
    }
    /// `dst = src1 - src2`
    pub fn sub(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Sub, dst, src1, src2));
    }
    /// `dst = src1 & src2`
    pub fn and(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::And, dst, src1, src2));
    }
    /// `dst = src1 | src2`
    pub fn or(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Or, dst, src1, src2));
    }
    /// `dst = src1 ^ src2`
    pub fn xor(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Xor, dst, src1, src2));
    }
    /// `dst = src1 << (src2 & 63)`
    pub fn sll(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Sll, dst, src1, src2));
    }
    /// `dst = src1 >> (src2 & 63)` (logical)
    pub fn srl(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Srl, dst, src1, src2));
    }
    /// `dst = src1 >> (src2 & 63)` (arithmetic)
    pub fn sra(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Sra, dst, src1, src2));
    }
    /// `dst = (src1 as i64) < (src2 as i64)`
    pub fn slt(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Slt, dst, src1, src2));
    }
    /// `dst = src1 < src2` (unsigned)
    pub fn sltu(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Sltu, dst, src1, src2));
    }
    /// `dst = src1 + imm`
    pub fn addi(&mut self, dst: ArchReg, src1: ArchReg, imm: i64) {
        self.push(Inst::rri(Opcode::Addi, dst, src1, imm));
    }
    /// `dst = src1 & imm`
    pub fn andi(&mut self, dst: ArchReg, src1: ArchReg, imm: i64) {
        self.push(Inst::rri(Opcode::Andi, dst, src1, imm));
    }
    /// `dst = src1 | imm`
    pub fn ori(&mut self, dst: ArchReg, src1: ArchReg, imm: i64) {
        self.push(Inst::rri(Opcode::Ori, dst, src1, imm));
    }
    /// `dst = src1 ^ imm`
    pub fn xori(&mut self, dst: ArchReg, src1: ArchReg, imm: i64) {
        self.push(Inst::rri(Opcode::Xori, dst, src1, imm));
    }
    /// `dst = src1 << imm`
    pub fn slli(&mut self, dst: ArchReg, src1: ArchReg, imm: i64) {
        self.push(Inst::rri(Opcode::Slli, dst, src1, imm));
    }
    /// `dst = src1 >> imm` (logical)
    pub fn srli(&mut self, dst: ArchReg, src1: ArchReg, imm: i64) {
        self.push(Inst::rri(Opcode::Srli, dst, src1, imm));
    }
    /// `dst = src1 >> imm` (arithmetic)
    pub fn srai(&mut self, dst: ArchReg, src1: ArchReg, imm: i64) {
        self.push(Inst::rri(Opcode::Srai, dst, src1, imm));
    }
    /// `dst = (src1 as i64) < imm`
    pub fn slti(&mut self, dst: ArchReg, src1: ArchReg, imm: i64) {
        self.push(Inst::rri(Opcode::Slti, dst, src1, imm));
    }
    /// `dst = imm`
    pub fn li(&mut self, dst: ArchReg, imm: i64) {
        self.push(Inst::ri(Opcode::Li, dst, imm));
    }
    /// `dst = src` (encoded as `ori dst, src, 0`)
    pub fn mv(&mut self, dst: ArchReg, src: ArchReg) {
        self.push(Inst::rri(Opcode::Ori, dst, src, 0));
    }
    /// `dst = src1 * src2` (low 64 bits)
    pub fn mul(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Mul, dst, src1, src2));
    }
    /// `dst = high 64 bits of src1 * src2`
    pub fn mulh(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Mulh, dst, src1, src2));
    }
    /// `dst = src1 / src2` (signed; division by zero yields -1)
    pub fn div(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Div, dst, src1, src2));
    }
    /// `dst = src1 % src2` (signed; modulo by zero yields src1)
    pub fn rem(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Rem, dst, src1, src2));
    }

    // -------------------------------------------------------- floating point

    /// `dst = src1 + src2`
    pub fn fadd(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Fadd, dst, src1, src2));
    }
    /// `dst = src1 - src2`
    pub fn fsub(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Fsub, dst, src1, src2));
    }
    /// `dst = src1 * src2`
    pub fn fmul(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Fmul, dst, src1, src2));
    }
    /// `dst = src1 / src2`
    pub fn fdiv(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Fdiv, dst, src1, src2));
    }
    /// `dst = sqrt(src1)`
    pub fn fsqrt(&mut self, dst: ArchReg, src1: ArchReg) {
        self.push(Inst::rr(Opcode::Fsqrt, dst, src1));
    }
    /// `dst = -src1`
    pub fn fneg(&mut self, dst: ArchReg, src1: ArchReg) {
        self.push(Inst::rr(Opcode::Fneg, dst, src1));
    }
    /// `dst = |src1|`
    pub fn fabs(&mut self, dst: ArchReg, src1: ArchReg) {
        self.push(Inst::rr(Opcode::Fabs, dst, src1));
    }
    /// `dst = min(src1, src2)`
    pub fn fmin(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Fmin, dst, src1, src2));
    }
    /// `dst = max(src1, src2)`
    pub fn fmax(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Fmax, dst, src1, src2));
    }
    /// `dst(fp) = src1(int) as f64`
    pub fn fcvt_from_int(&mut self, dst: ArchReg, src1: ArchReg) {
        self.push(Inst::rr(Opcode::Fcvtlf, dst, src1));
    }
    /// `dst(int) = src1(fp) as i64`
    pub fn fcvt_to_int(&mut self, dst: ArchReg, src1: ArchReg) {
        self.push(Inst::rr(Opcode::Fcvtfl, dst, src1));
    }
    /// `dst(int) = src1 == src2`
    pub fn feq(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Feq, dst, src1, src2));
    }
    /// `dst(int) = src1 < src2`
    pub fn flt(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Flt, dst, src1, src2));
    }
    /// `dst(int) = src1 <= src2`
    pub fn fle(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) {
        self.push(Inst::rrr(Opcode::Fle, dst, src1, src2));
    }

    // ---------------------------------------------------------------- memory

    /// `dst = sign_extend(mem8[base + offset])`
    pub fn lb(&mut self, dst: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::load(Opcode::Lb, dst, base, offset));
    }
    /// `dst = mem8[base + offset]`
    pub fn lbu(&mut self, dst: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::load(Opcode::Lbu, dst, base, offset));
    }
    /// `dst = sign_extend(mem16[base + offset])`
    pub fn lh(&mut self, dst: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::load(Opcode::Lh, dst, base, offset));
    }
    /// `dst = mem16[base + offset]`
    pub fn lhu(&mut self, dst: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::load(Opcode::Lhu, dst, base, offset));
    }
    /// `dst = sign_extend(mem32[base + offset])`
    pub fn lw(&mut self, dst: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::load(Opcode::Lw, dst, base, offset));
    }
    /// `dst = mem32[base + offset]`
    pub fn lwu(&mut self, dst: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::load(Opcode::Lwu, dst, base, offset));
    }
    /// `dst = mem64[base + offset]`
    pub fn ld(&mut self, dst: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::load(Opcode::Ld, dst, base, offset));
    }
    /// `dst(fp) = mem32[base + offset] as f32 as f64`
    pub fn flw(&mut self, dst: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::load(Opcode::Flw, dst, base, offset));
    }
    /// `dst(fp) = mem64[base + offset] as f64`
    pub fn fld(&mut self, dst: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::load(Opcode::Fld, dst, base, offset));
    }
    /// `mem8[base + offset] = data`
    pub fn sb(&mut self, data: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::store(Opcode::Sb, data, base, offset));
    }
    /// `mem16[base + offset] = data`
    pub fn sh(&mut self, data: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::store(Opcode::Sh, data, base, offset));
    }
    /// `mem32[base + offset] = data`
    pub fn sw(&mut self, data: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::store(Opcode::Sw, data, base, offset));
    }
    /// `mem64[base + offset] = data`
    pub fn sd(&mut self, data: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::store(Opcode::Sd, data, base, offset));
    }
    /// `mem32[base + offset] = data(fp) as f32`
    pub fn fsw(&mut self, data: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::store(Opcode::Fsw, data, base, offset));
    }
    /// `mem64[base + offset] = data(fp)`
    pub fn fsd(&mut self, data: ArchReg, base: ArchReg, offset: i64) {
        self.push(Inst::store(Opcode::Fsd, data, base, offset));
    }

    // --------------------------------------------------------------- control

    fn branch_to(&mut self, op: Opcode, src1: ArchReg, src2: ArchReg, target: &str) {
        self.fixups.push((self.insts.len(), target.to_string()));
        self.push(Inst::branch(op, src1, src2, 0));
    }

    /// Branch to `target` if `src1 == src2`.
    pub fn beq(&mut self, src1: ArchReg, src2: ArchReg, target: &str) {
        self.branch_to(Opcode::Beq, src1, src2, target);
    }
    /// Branch to `target` if `src1 != src2`.
    pub fn bne(&mut self, src1: ArchReg, src2: ArchReg, target: &str) {
        self.branch_to(Opcode::Bne, src1, src2, target);
    }
    /// Branch to `target` if `src1 < src2` (signed).
    pub fn blt(&mut self, src1: ArchReg, src2: ArchReg, target: &str) {
        self.branch_to(Opcode::Blt, src1, src2, target);
    }
    /// Branch to `target` if `src1 >= src2` (signed).
    pub fn bge(&mut self, src1: ArchReg, src2: ArchReg, target: &str) {
        self.branch_to(Opcode::Bge, src1, src2, target);
    }
    /// Branch to `target` if `src1 < src2` (unsigned).
    pub fn bltu(&mut self, src1: ArchReg, src2: ArchReg, target: &str) {
        self.branch_to(Opcode::Bltu, src1, src2, target);
    }
    /// Branch to `target` if `src1 >= src2` (unsigned).
    pub fn bgeu(&mut self, src1: ArchReg, src2: ArchReg, target: &str) {
        self.branch_to(Opcode::Bgeu, src1, src2, target);
    }
    /// Unconditional jump to `target`.
    pub fn j(&mut self, target: &str) {
        self.fixups.push((self.insts.len(), target.to_string()));
        self.push(Inst::op_only(Opcode::J, 0));
    }
    /// Jump to `target`, writing the return address to `link`.
    pub fn jal(&mut self, link: ArchReg, target: &str) {
        self.fixups.push((self.insts.len(), target.to_string()));
        self.push(Inst {
            op: Opcode::Jal,
            dst: Some(link),
            src1: None,
            src2: None,
            imm: 0,
        });
    }
    /// Indirect jump to the address in `src`.
    pub fn jr(&mut self, src: ArchReg) {
        self.push(Inst {
            op: Opcode::Jr,
            dst: None,
            src1: Some(src),
            src2: None,
            imm: 0,
        });
    }
    /// Indirect jump to `src + offset`, writing the return address to `link`.
    pub fn jalr(&mut self, link: ArchReg, src: ArchReg, offset: i64) {
        self.push(Inst {
            op: Opcode::Jalr,
            dst: Some(link),
            src1: Some(src),
            src2: None,
            imm: offset,
        });
    }
    /// No operation.
    pub fn nop(&mut self) {
        self.push(Inst::nop());
    }
    /// Halt the program.
    pub fn halt(&mut self) {
        self.push(Inst::halt());
    }

    // ----------------------------------------------------------------- finish

    /// Resolves all label references and produces the [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if an instruction references a label that was never defined.
    #[must_use]
    pub fn finish(mut self) -> Program {
        for (idx, name) in &self.fixups {
            let target = *self
                .labels
                .get(name)
                .unwrap_or_else(|| panic!("undefined label `{name}` referenced at inst {idx}"));
            self.insts[*idx].imm = Program::pc_of(target) as i64;
        }
        Program::new(self.insts, self.labels, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::TEXT_BASE;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let r = ArchReg::int(1);
        a.label("top");
        a.addi(r, r, 1);
        a.beq(r, ArchReg::ZERO, "bottom"); // forward reference
        a.j("top"); // backward reference
        a.label("bottom");
        a.halt();
        let p = a.finish();
        assert_eq!(p.insts()[1].imm, (TEXT_BASE + 12) as i64);
        assert_eq!(p.insts()[2].imm, TEXT_BASE as i64);
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Asm::new();
        a.j("nowhere");
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut a = Asm::new();
        a.label("x");
        a.label("x");
    }

    #[test]
    fn data_layout_is_aligned_and_disjoint() {
        let mut a = Asm::new();
        let b0 = a.data_bytes(&[1, 2, 3], 1);
        let b1 = a.data_u64(&[10, 20]);
        let b2 = a.data_f64(&[1.5]);
        let b3 = a.alloc(100, 64);
        assert!(b1.is_multiple_of(8) && b2.is_multiple_of(8) && b3.is_multiple_of(64));
        assert!(b0 < b1 && b1 < b2 && b2 < b3);
        let p = a.finish();
        assert_eq!(p.data_segments().len(), 4);
        assert_eq!(
            p.data_segments()[1].bytes,
            10u64
                .to_le_bytes()
                .iter()
                .chain(20u64.to_le_bytes().iter())
                .copied()
                .collect::<Vec<u8>>()
        );
        // segments must not overlap
        for w in p.data_segments().windows(2) {
            assert!(w[0].end() <= w[1].addr);
        }
    }

    #[test]
    fn data_u32_layout() {
        let mut a = Asm::new();
        let addr = a.data_u32(&[0xdead_beef, 0x1234_5678]);
        let p = a.finish();
        let seg = &p.data_segments()[0];
        assert_eq!(seg.addr, addr);
        assert_eq!(seg.bytes.len(), 8);
        assert_eq!(&seg.bytes[0..4], &0xdead_beefu32.to_le_bytes());
    }

    #[test]
    fn every_helper_emits_one_instruction() {
        let mut a = Asm::new();
        let (x1, x2, x3) = (ArchReg::int(1), ArchReg::int(2), ArchReg::int(3));
        let (f1, f2, f3) = (ArchReg::fp(1), ArchReg::fp(2), ArchReg::fp(3));
        a.add(x1, x2, x3);
        a.sub(x1, x2, x3);
        a.and(x1, x2, x3);
        a.or(x1, x2, x3);
        a.xor(x1, x2, x3);
        a.sll(x1, x2, x3);
        a.srl(x1, x2, x3);
        a.sra(x1, x2, x3);
        a.slt(x1, x2, x3);
        a.sltu(x1, x2, x3);
        a.addi(x1, x2, 1);
        a.andi(x1, x2, 1);
        a.ori(x1, x2, 1);
        a.xori(x1, x2, 1);
        a.slli(x1, x2, 1);
        a.srli(x1, x2, 1);
        a.srai(x1, x2, 1);
        a.slti(x1, x2, 1);
        a.li(x1, 1);
        a.mv(x1, x2);
        a.mul(x1, x2, x3);
        a.mulh(x1, x2, x3);
        a.div(x1, x2, x3);
        a.rem(x1, x2, x3);
        a.fadd(f1, f2, f3);
        a.fsub(f1, f2, f3);
        a.fmul(f1, f2, f3);
        a.fdiv(f1, f2, f3);
        a.fsqrt(f1, f2);
        a.fneg(f1, f2);
        a.fabs(f1, f2);
        a.fmin(f1, f2, f3);
        a.fmax(f1, f2, f3);
        a.fcvt_from_int(f1, x1);
        a.fcvt_to_int(x1, f1);
        a.feq(x1, f1, f2);
        a.flt(x1, f1, f2);
        a.fle(x1, f1, f2);
        a.lb(x1, x2, 0);
        a.lbu(x1, x2, 0);
        a.lh(x1, x2, 0);
        a.lhu(x1, x2, 0);
        a.lw(x1, x2, 0);
        a.lwu(x1, x2, 0);
        a.ld(x1, x2, 0);
        a.flw(f1, x2, 0);
        a.fld(f1, x2, 0);
        a.sb(x1, x2, 0);
        a.sh(x1, x2, 0);
        a.sw(x1, x2, 0);
        a.sd(x1, x2, 0);
        a.fsw(f1, x2, 0);
        a.fsd(f1, x2, 0);
        a.label("t");
        a.beq(x1, x2, "t");
        a.bne(x1, x2, "t");
        a.blt(x1, x2, "t");
        a.bge(x1, x2, "t");
        a.bltu(x1, x2, "t");
        a.bgeu(x1, x2, "t");
        a.j("t");
        a.jal(ArchReg::RA, "t");
        a.jr(ArchReg::RA);
        a.jalr(ArchReg::RA, x1, 0);
        a.nop();
        a.halt();
        let n = a.here();
        let p = a.finish();
        assert_eq!(p.len(), n);
        assert_eq!(p.len(), 65);
    }
}

//! Functional-unit issue tracking.

use crate::config::FuConfig;
use sdv_isa::OpClass;

/// Tracks per-cycle issue slots for a set of pipelined functional units.
///
/// Units are fully pipelined: a unit accepts at most one new operation per
/// cycle, and the result becomes available `latency` cycles later.
#[derive(Debug, Clone)]
pub struct FuPool {
    cfg: FuConfig,
    used_int_alu: usize,
    used_int_mul: usize,
    used_fp_add: usize,
    used_fp_mul: usize,
    issued_ops: u64,
}

impl FuPool {
    /// Creates a pool from a configuration.
    #[must_use]
    pub fn new(cfg: FuConfig) -> Self {
        FuPool {
            cfg,
            used_int_alu: 0,
            used_int_mul: 0,
            used_fp_add: 0,
            used_fp_mul: 0,
            issued_ops: 0,
        }
    }

    /// Starts a new cycle: every unit can accept a new operation again.
    pub fn begin_cycle(&mut self) {
        self.used_int_alu = 0;
        self.used_int_mul = 0;
        self.used_fp_add = 0;
        self.used_fp_mul = 0;
    }

    /// Tries to issue an operation of `class` this cycle; returns its latency
    /// on success and `None` when every unit of that class is busy.
    pub fn try_issue(&mut self, class: OpClass) -> Option<u64> {
        let (used, count): (&mut usize, usize) = match class {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump => {
                (&mut self.used_int_alu, self.cfg.int_alu.count)
            }
            OpClass::IntMul | OpClass::IntDiv => (&mut self.used_int_mul, self.cfg.int_mul.count),
            OpClass::FpAdd => (&mut self.used_fp_add, self.cfg.fp_add.count),
            OpClass::FpMul | OpClass::FpDiv => (&mut self.used_fp_mul, self.cfg.fp_mul.count),
            // Memory, nop and halt do not use an arithmetic unit.
            _ => {
                self.issued_ops += 1;
                return Some(1);
            }
        };
        if *used < count {
            *used += 1;
            self.issued_ops += 1;
            Some(self.cfg.latency_for(class))
        } else {
            None
        }
    }

    /// Total operations issued through this pool.
    #[must_use]
    pub fn issued_ops(&self) -> u64 {
        self.issued_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cycle_limits_per_class() {
        let mut pool = FuPool::new(FuConfig::four_way());
        pool.begin_cycle();
        assert_eq!(pool.try_issue(OpClass::IntAlu), Some(1));
        assert_eq!(pool.try_issue(OpClass::IntAlu), Some(1));
        assert_eq!(
            pool.try_issue(OpClass::Branch),
            Some(1),
            "branches share the ALUs"
        );
        assert_eq!(pool.try_issue(OpClass::IntAlu), None, "only three ALUs");
        assert_eq!(pool.try_issue(OpClass::FpMul), Some(4));
        assert_eq!(
            pool.try_issue(OpClass::FpDiv),
            None,
            "single FP mul/div unit"
        );
        pool.begin_cycle();
        assert_eq!(pool.try_issue(OpClass::IntAlu), Some(1));
        assert_eq!(pool.try_issue(OpClass::FpDiv), Some(14));
    }

    #[test]
    fn divides_share_units_but_have_long_latency() {
        let mut pool = FuPool::new(FuConfig::four_way());
        pool.begin_cycle();
        assert_eq!(pool.try_issue(OpClass::IntDiv), Some(12));
        assert_eq!(pool.try_issue(OpClass::IntMul), Some(2));
        assert_eq!(pool.try_issue(OpClass::IntDiv), None);
    }

    #[test]
    fn memory_ops_bypass_the_pool() {
        let mut pool = FuPool::new(FuConfig::four_way());
        pool.begin_cycle();
        for _ in 0..20 {
            assert!(pool.try_issue(OpClass::Load).is_some());
        }
        assert_eq!(pool.issued_ops(), 20);
    }
}

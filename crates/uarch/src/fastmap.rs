//! A minimal multiply-rotate hasher for the pipeline's hot small-key maps.
//!
//! The busy-cycle loops hit [`std::collections::HashMap`]s keyed by cache
//! lines and vector-register ids several times per simulated cycle
//! (store-set disambiguation, Figure-13 access records).  SipHash — the
//! standard library's DoS-resistant default — costs more than the probe it
//! guards on those paths, and none of them hash attacker-controlled input,
//! so they use this Fx-style word hasher instead: one rotate, one xor and
//! one multiply per written word.
//!
//! Only the *hasher* changes; the map behaviour is untouched.  Every map
//! switched to [`FastMap`] is used point-wise (insert / lookup / remove) or
//! drained into commutative aggregates, so iteration order — the one thing
//! a hasher swap can perturb — never reaches an observable result.  The
//! golden-stats suite pins that claim.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant from Firefox/rustc's Fx hash: a 64-bit odd
/// number with high-entropy bits that spreads consecutive keys well.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiplicative hasher (not collision resistant; do
/// not use for untrusted keys).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// A `HashMap` with the [`FxHasher`]; construct with `FastMap::default()`.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_operations_match_std_map() {
        let mut fast: FastMap<u64, u32> = FastMap::default();
        let mut std_map: HashMap<u64, u32> = HashMap::new();
        for k in [0u64, 1, 63, 64, 1 << 40, u64::MAX] {
            fast.insert(k, k as u32 ^ 7);
            std_map.insert(k, k as u32 ^ 7);
        }
        for k in [0u64, 63, 1 << 40, 5] {
            assert_eq!(fast.get(&k), std_map.get(&k));
        }
        assert_eq!(fast.remove(&63), std_map.remove(&63));
        assert_eq!(fast.len(), std_map.len());
    }

    #[test]
    fn distinct_words_rarely_collide() {
        // Not a cryptographic property — just a sanity check that the
        // constant actually spreads consecutive cache-line keys.
        let mut seen = std::collections::HashSet::new();
        for line in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(line);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}

//! Cycle-level out-of-order superscalar pipeline with speculative dynamic
//! vectorization.
//!
//! This crate is the timing model of the reproduction: a SimpleScalar-style,
//! execution-driven out-of-order core (fetch → decode/rename → issue →
//! execute/memory → commit) parameterised by [`UarchConfig`] (Table 1 of the
//! paper) and optionally extended with the dynamic-vectorization mechanism of
//! `sdv-core` plus a vector data path.
//!
//! The main entry points are [`Processor`] (stateful, lets you inspect the
//! architectural state afterwards) and the [`simulate`] convenience function.
//!
//! Three toggles select between fast and reference loops, all bit-identical
//! by construction and pinned by property tests: [`Scheduler`] picks the
//! issue engine (event-driven wakeup vs. the naive full scan), [`Stepping`]
//! picks the clock discipline (macro-stepped jumps over proven stall windows
//! vs. ticking every cycle), and [`BusyPath`] picks the busy-cycle loop
//! structure (batched group dispatch and run-retire commit vs. the
//! entry-at-a-time reference loops).  See the `pipeline` module docs for the
//! proof obligations behind each.
//!
//! ```
//! use sdv_isa::{ArchReg, Asm};
//! use sdv_mem::PortKind;
//! use sdv_uarch::{simulate, UarchConfig};
//!
//! // A tiny strided loop.
//! let mut a = Asm::new();
//! let xs = a.data_u64(&(0..128).collect::<Vec<u64>>());
//! let (p, s, v, n) = (ArchReg::int(1), ArchReg::int(2), ArchReg::int(3), ArchReg::int(4));
//! a.li(p, xs as i64);
//! a.li(s, 0);
//! a.li(n, 128);
//! a.label("l");
//! a.ld(v, p, 0);
//! a.add(s, s, v);
//! a.addi(p, p, 8);
//! a.addi(n, n, -1);
//! a.bne(n, ArchReg::ZERO, "l");
//! a.halt();
//! let program = a.finish();
//!
//! let baseline = simulate(&UarchConfig::four_way(1, PortKind::Wide), &program, 100_000);
//! let dv = simulate(
//!     &UarchConfig::four_way(1, PortKind::Wide).with_vectorization(true),
//!     &program,
//!     100_000,
//! );
//! assert!(dv.committed_validations > 0, "the strided load was vectorized");
//! assert!(dv.memory_accesses <= baseline.memory_accesses);
//! ```

pub mod config;
pub mod fastmap;
pub mod fu;
pub mod pipeline;
pub mod rob;
pub mod seqset;
pub mod stats;
pub mod vector_dp;

pub use config::{ConfigBuilder, FuClassConfig, FuConfig, UarchConfig, DEFAULT_BUS_WORDS};
pub use fu::FuPool;
pub use pipeline::{
    simulate, simulate_bounded, BusyPath, Processor, Scheduler, Stepping, CYCLE_BUDGET_EXCEEDED,
};
pub use rob::WaiterStats;
// Re-exported so pipeline consumers can read the cycle-attribution ledger
// without a direct sdv-obs dependency.
pub use sdv_obs::{CycleBucket, CycleLedger};
pub use stats::RunStats;
pub use vector_dp::VectorDatapath;

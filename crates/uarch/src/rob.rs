//! Struct-of-arrays reorder buffer and the pooled waiter arena.
//!
//! The busy-cycle loops (issue walk, commit-gate recomputation, run-retire
//! commit) touch a handful of scalar fields of every in-flight instruction —
//! `issued`, `complete_cycle`, the issue-group tag — thousands of times per
//! simulated kernel.  Keeping those fields inside a ~150-byte AoS `RobEntry`
//! made every probe a strided cache miss and every `pop_front` a full-entry
//! `memmove`.  [`Rob`] instead stores the hot fields in parallel,
//! index-aligned lanes (`u8`/`u64` vectors) and leaves the cold decode-time
//! payload ([`RobCold`]: the retired record, exec mode and source mappings)
//! in a separate lane that is written once at dispatch and read at
//! issue/commit only where needed.
//!
//! # Layout
//!
//! The buffer is a power-of-two ring indexed **directly by sequence number**:
//! in-flight instructions always occupy a contiguous run of sequence numbers
//! (`head..tail`), so `slot = seq & mask` is collision-free while
//! `tail - head <= capacity`.  Push/pop never move data — retiring a run of
//! `n` entries advances `head` once.
//!
//! # Waiter arena
//!
//! The wakeup scheduler keeps, per producer, the list of dependents to wake
//! at completion.  Per-entry `Vec<u64>`s allocate on first push and free (or
//! round-trip through a recycling pool) at commit.  [`WaiterArena`] replaces
//! them with intrusive singly-linked lists over one node pool: a push is a
//! bump (or free-list pop), freeing a list is O(length) pointer writes, and
//! the pool is pre-sized to the hard bound of `2 × window` live nodes (every
//! in-flight instruction holds at most two source edges), so steady-state
//! dispatch performs **zero** heap allocations — counted, and pinned by a
//! unit test, via [`WaiterArena::stats`].

use sdv_core::VregId;
use sdv_emu::Retired;
use sdv_isa::OpClass;

/// Sentinel for "no node" in [`WaiterArena`] lists.
pub const NO_WAITER: u32 = u32::MAX;

/// Cold per-entry payload: written once at dispatch, read at issue (loads,
/// validations) and commit.  Everything the busy loops probe repeatedly lives
/// in the hot lanes of [`Rob`] instead.
#[derive(Debug, Clone)]
pub struct RobCold {
    /// The retired record from the functional emulator.
    pub retired: Retired,
    /// Cached `retired.inst.op.class()`.
    pub class: OpClass,
    /// How the instruction executes (scalar or vector-element validation).
    pub mode: crate::pipeline::ExecMode,
    /// Scalar in-flight producers of the two source operands.
    pub src_scalar: [Option<u64>; 2],
    /// Vector-element sources of the two source operands.
    pub src_vec: [Option<(VregId, u64, usize)>; 2],
}

impl RobCold {
    /// Whether this entry's result can wake scalar dependents (only entries
    /// with a non-zero scalar destination ever appear in the map table).
    #[must_use]
    pub fn wakes_dependents(&self) -> bool {
        matches!(self.mode, crate::pipeline::ExecMode::Scalar)
            && self.retired.inst.dst.is_some_and(|d| !d.is_zero())
    }
}

/// Pool statistics for [`WaiterArena`], the hook behind the
/// zero-allocation-after-warmup test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaiterStats {
    /// Number of node-pool heap growths (reallocations) since construction.
    /// Zero when the pre-sized pool never overflowed.
    pub heap_growths: u64,
    /// Total nodes ever handed out.
    pub pushes: u64,
    /// Nodes currently live (allocated and not yet freed).
    pub live: usize,
    /// Node-pool capacity in nodes.
    pub capacity: usize,
}

/// A pool of singly-linked waiter nodes: `(dependent seq, next)` pairs.
///
/// Lists are identified by their head node index (`NO_WAITER` = empty) and
/// owned by the ROB's `waiter_head` lane.  Duplicate dependents are
/// deliberately kept — an instruction reading the same producer through both
/// operands must be woken (pending-count decremented) twice.
#[derive(Debug, Clone, Default)]
pub struct WaiterArena {
    dep: Vec<u64>,
    next: Vec<u32>,
    free: u32,
    stats: WaiterStats,
}

impl WaiterArena {
    /// Creates an arena pre-sized for `nodes` live nodes (use `2 × window`:
    /// each in-flight instruction holds at most two source edges).
    #[must_use]
    pub fn with_capacity(nodes: usize) -> Self {
        let mut a = WaiterArena {
            dep: Vec::with_capacity(nodes),
            next: Vec::with_capacity(nodes),
            free: NO_WAITER,
            stats: WaiterStats::default(),
        };
        a.stats.capacity = a.dep.capacity();
        a
    }

    /// Pool statistics (the zero-allocation hook).
    #[must_use]
    pub fn stats(&self) -> WaiterStats {
        self.stats
    }

    fn alloc(&mut self, dep: u64, next: u32) -> u32 {
        self.stats.pushes += 1;
        self.stats.live += 1;
        if self.free != NO_WAITER {
            let node = self.free;
            self.free = self.next[node as usize];
            self.dep[node as usize] = dep;
            self.next[node as usize] = next;
            return node;
        }
        if self.dep.len() == self.dep.capacity() {
            self.stats.heap_growths += 1;
        }
        let node = u32::try_from(self.dep.len()).expect("waiter pool fits in u32");
        self.dep.push(dep);
        self.next.push(next);
        self.stats.capacity = self.dep.capacity();
        node
    }

    /// Prepends `dep` to the list headed by `head`; returns the new head.
    #[must_use]
    pub fn push(&mut self, head: u32, dep: u64) -> u32 {
        self.alloc(dep, head)
    }

    /// Prepends a run of dependents to the list headed by `head` in one pass;
    /// returns the new head.  This is the group-dispatch path: one call per
    /// producer instead of one [`Self::push`] per (producer, dependent) edge.
    #[must_use]
    pub fn push_run(&mut self, mut head: u32, deps: &[u64]) -> u32 {
        for &dep in deps {
            head = self.alloc(dep, head);
        }
        head
    }

    /// Drains the list headed by `head` into `out` (appending) and returns
    /// the nodes to the free list.
    pub fn drain_into(&mut self, mut head: u32, out: &mut Vec<u64>) {
        while head != NO_WAITER {
            let node = head as usize;
            out.push(self.dep[node]);
            head = self.next[node];
            self.next[node] = self.free;
            self.free = node as u32;
            self.stats.live -= 1;
        }
    }

    /// Returns every node of the list headed by `head` to the free list.
    pub fn free_list(&mut self, mut head: u32) {
        while head != NO_WAITER {
            let node = head as usize;
            head = self.next[node];
            self.next[node] = self.free;
            self.free = node as u32;
            self.stats.live -= 1;
        }
    }

    /// Frees every node at once (squash rebuild).  Keeps the pool storage, so
    /// this never gives memory back or allocates.
    pub fn reset(&mut self) {
        self.dep.clear();
        self.next.clear();
        self.free = NO_WAITER;
        self.stats.live = 0;
    }
}

/// The struct-of-arrays reorder buffer: a sequence-number-indexed ring with
/// hot scalar lanes and a cold payload lane.
///
/// Invariant: the in-flight window is the contiguous sequence range
/// `head()..tail()`, and `len() <= capacity`, so `seq & mask` addresses are
/// unique.  All lane accessors take raw sequence numbers and debug-assert
/// the seq is in flight.
#[derive(Debug)]
pub struct Rob {
    mask: u64,
    head: u64,
    tail: u64,
    cold: Vec<Option<RobCold>>,
    issued: Vec<bool>,
    complete_cycle: Vec<u64>,
    store_addr_known: Vec<bool>,
    pending_scalar: Vec<u8>,
    has_vec_wait: Vec<bool>,
    queue: Vec<u8>,
    disamb_epoch: Vec<u64>,
    disamb_fwd: Vec<bool>,
    waiter_head: Vec<u32>,
}

impl Rob {
    /// Creates a ROB able to hold `window` in-flight instructions.
    #[must_use]
    pub fn new(window: usize) -> Self {
        let cap = window.max(2).next_power_of_two();
        Rob {
            mask: (cap - 1) as u64,
            head: 0,
            tail: 0,
            cold: vec![None; cap],
            issued: vec![false; cap],
            complete_cycle: vec![0; cap],
            store_addr_known: vec![false; cap],
            pending_scalar: vec![0; cap],
            has_vec_wait: vec![false; cap],
            queue: vec![0; cap],
            disamb_epoch: vec![u64::MAX; cap],
            disamb_fwd: vec![false; cap],
            waiter_head: vec![NO_WAITER; cap],
        }
    }

    #[inline]
    fn slot(&self, seq: u64) -> usize {
        debug_assert!(self.contains(seq), "seq {seq} not in flight");
        (seq & self.mask) as usize
    }

    /// Number of in-flight entries.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Whether the window is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Sequence number of the oldest in-flight entry (the commit head).
    #[inline]
    #[must_use]
    pub fn head(&self) -> u64 {
        self.head
    }

    /// One past the youngest in-flight sequence number.
    #[inline]
    #[must_use]
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Whether `seq` is in flight.
    #[inline]
    #[must_use]
    pub fn contains(&self, seq: u64) -> bool {
        seq >= self.head && seq < self.tail
    }

    /// The in-flight sequence range, oldest first.
    #[inline]
    #[must_use]
    pub fn seqs(&self) -> std::ops::Range<u64> {
        self.head..self.tail
    }

    /// Appends an entry; `retired.seq` must equal [`Self::tail`].
    pub fn push(&mut self, cold: RobCold, queue: u8) {
        debug_assert_eq!(cold.retired.seq, self.tail, "seqs are contiguous");
        debug_assert!(self.len() < self.mask as usize + 1, "window overflow");
        let slot = (self.tail & self.mask) as usize;
        self.cold[slot] = Some(cold);
        self.issued[slot] = false;
        self.complete_cycle[slot] = 0;
        self.store_addr_known[slot] = false;
        self.pending_scalar[slot] = 0;
        self.has_vec_wait[slot] = false;
        self.queue[slot] = queue;
        self.disamb_epoch[slot] = u64::MAX;
        self.disamb_fwd[slot] = false;
        self.waiter_head[slot] = NO_WAITER;
        self.tail += 1;
    }

    /// Retires the head entry, returning its cold payload.
    ///
    /// The caller must have freed (or taken over) the entry's waiter list.
    pub fn pop_front(&mut self) -> Option<RobCold> {
        if self.is_empty() {
            return None;
        }
        let slot = (self.head & self.mask) as usize;
        debug_assert_eq!(self.waiter_head[slot], NO_WAITER, "waiters leaked");
        let cold = self.cold[slot].take();
        self.head += 1;
        cold
    }

    /// Run retire: advances the head past `n` entries whose waiter lists have
    /// already been freed, without touching the cold lane entry by entry.
    pub fn advance_head(&mut self, n: u64) {
        debug_assert!(n <= self.tail - self.head);
        for seq in self.head..self.head + n {
            let slot = (seq & self.mask) as usize;
            debug_assert_eq!(self.waiter_head[slot], NO_WAITER, "waiters leaked");
            self.cold[slot] = None;
        }
        self.head += n;
    }

    // ---------------------------------------------------------- hot lanes

    /// Whether `seq` has issued.
    #[inline]
    #[must_use]
    pub fn issued(&self, seq: u64) -> bool {
        self.issued[self.slot(seq)]
    }

    /// Marks `seq` issued/unissued.
    #[inline]
    pub fn set_issued(&mut self, seq: u64, v: bool) {
        let s = self.slot(seq);
        self.issued[s] = v;
    }

    /// Completion cycle of `seq` (meaningful once issued).
    #[inline]
    #[must_use]
    pub fn complete_cycle(&self, seq: u64) -> u64 {
        self.complete_cycle[self.slot(seq)]
    }

    /// Sets the completion cycle of `seq`.
    #[inline]
    pub fn set_complete_cycle(&mut self, seq: u64, cycle: u64) {
        let s = self.slot(seq);
        self.complete_cycle[s] = cycle;
    }

    /// Whether `seq` has issued and its result is available at `cycle`.
    #[inline]
    #[must_use]
    pub fn completed(&self, seq: u64, cycle: u64) -> bool {
        let s = self.slot(seq);
        self.issued[s] && cycle >= self.complete_cycle[s]
    }

    /// Whether the store `seq` has computed its address.
    #[inline]
    #[must_use]
    pub fn store_addr_known(&self, seq: u64) -> bool {
        self.store_addr_known[self.slot(seq)]
    }

    /// Marks the store `seq`'s address as known/unknown.
    #[inline]
    pub fn set_store_addr_known(&mut self, seq: u64, v: bool) {
        let s = self.slot(seq);
        self.store_addr_known[s] = v;
    }

    /// Number of incomplete scalar producers of `seq`.
    #[inline]
    #[must_use]
    pub fn pending_scalar(&self, seq: u64) -> u8 {
        self.pending_scalar[self.slot(seq)]
    }

    /// Sets the pending-producer count of `seq`.
    #[inline]
    pub fn set_pending_scalar(&mut self, seq: u64, v: u8) {
        let s = self.slot(seq);
        self.pending_scalar[s] = v;
    }

    /// Whether `seq` has vector-element sources that must be polled.
    #[inline]
    #[must_use]
    pub fn has_vec_wait(&self, seq: u64) -> bool {
        self.has_vec_wait[self.slot(seq)]
    }

    /// Sets the vector-wait flag of `seq`.
    #[inline]
    pub fn set_has_vec_wait(&mut self, seq: u64, v: bool) {
        let s = self.slot(seq);
        self.has_vec_wait[s] = v;
    }

    /// Issue group of `seq` (`Q_LOAD`..`Q_VALIDATION`).
    #[inline]
    #[must_use]
    pub fn queue(&self, seq: u64) -> u8 {
        self.queue[self.slot(seq)]
    }

    /// Store-epoch at which `seq`'s disambiguation verdict was cached.
    #[inline]
    #[must_use]
    pub fn disamb_epoch(&self, seq: u64) -> u64 {
        self.disamb_epoch[self.slot(seq)]
    }

    /// Cached forwarding verdict of the load `seq`.
    #[inline]
    #[must_use]
    pub fn disamb_fwd(&self, seq: u64) -> bool {
        self.disamb_fwd[self.slot(seq)]
    }

    /// Caches the disambiguation verdict of the load `seq`.
    #[inline]
    pub fn set_disamb(&mut self, seq: u64, epoch: u64, fwd: bool) {
        let s = self.slot(seq);
        self.disamb_epoch[s] = epoch;
        self.disamb_fwd[s] = fwd;
    }

    /// Head node of `seq`'s waiter list ([`NO_WAITER`] = empty).
    #[inline]
    #[must_use]
    pub fn waiter_head(&self, seq: u64) -> u32 {
        self.waiter_head[self.slot(seq)]
    }

    /// Replaces the head node of `seq`'s waiter list, returning the old head.
    #[inline]
    pub fn swap_waiter_head(&mut self, seq: u64, head: u32) -> u32 {
        let s = self.slot(seq);
        std::mem::replace(&mut self.waiter_head[s], head)
    }

    // --------------------------------------------------------- cold lane

    /// Cold payload of `seq`.
    #[inline]
    #[must_use]
    pub fn cold(&self, seq: u64) -> &RobCold {
        let s = self.slot(seq);
        self.cold[s]
            .as_ref()
            .expect("in-flight entries have cold data")
    }

    /// The retired record of `seq`.
    #[inline]
    #[must_use]
    pub fn retired(&self, seq: u64) -> &Retired {
        &self.cold(seq).retired
    }

    /// Memory address of `seq` (0 for non-memory instructions).
    #[inline]
    #[must_use]
    pub fn addr(&self, seq: u64) -> u64 {
        self.retired(seq).mem.map_or(0, |m| m.addr)
    }

    /// Memory access width of `seq` (0 for non-memory instructions).
    #[inline]
    #[must_use]
    pub fn width(&self, seq: u64) -> u64 {
        self.retired(seq).mem.map_or(0, |m| m.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retired(seq: u64) -> Retired {
        use sdv_isa::{ArchReg, Asm};
        // Any instruction works; the ring only checks the seq.
        let mut a = Asm::new();
        a.li(ArchReg::int(1), 7);
        a.halt();
        let program = a.finish();
        let mut emu = sdv_emu::Emulator::new(&program);
        let mut r = emu.step().expect("one instruction");
        r.seq = seq;
        r
    }

    fn cold(seq: u64) -> RobCold {
        RobCold {
            retired: retired(seq),
            class: OpClass::IntAlu,
            mode: crate::pipeline::ExecMode::Scalar,
            src_scalar: [None, None],
            src_vec: [None, None],
        }
    }

    #[test]
    fn ring_push_pop_and_lane_roundtrip() {
        let mut rob = Rob::new(6); // rounds up to 8 slots
        assert!(rob.is_empty());
        for seq in 0..6 {
            rob.push(cold(seq), (seq % 3) as u8);
        }
        assert_eq!(rob.len(), 6);
        assert_eq!(rob.head(), 0);
        assert_eq!(rob.tail(), 6);
        assert!(rob.contains(5) && !rob.contains(6));
        rob.set_issued(3, true);
        rob.set_complete_cycle(3, 17);
        assert!(rob.completed(3, 17) && !rob.completed(3, 16));
        assert_eq!(rob.queue(4), 1);
        rob.set_disamb(2, 9, true);
        assert_eq!((rob.disamb_epoch(2), rob.disamb_fwd(2)), (9, true));

        // Pop two, push two more: the ring wraps without moving data.
        assert_eq!(rob.pop_front().unwrap().retired.seq, 0);
        assert_eq!(rob.pop_front().unwrap().retired.seq, 1);
        rob.push(cold(6), 0);
        rob.push(cold(7), 0);
        assert_eq!(rob.seqs().collect::<Vec<_>>(), (2..8).collect::<Vec<_>>());
        // Lane state survives the wrap for live entries.
        assert!(rob.issued(3) && rob.complete_cycle(3) == 17);
        // Fresh entries start clean even in reused slots.
        assert!(!rob.issued(7) && rob.pending_scalar(7) == 0);
        assert_eq!(rob.waiter_head(7), NO_WAITER);

        rob.advance_head(6);
        assert!(rob.is_empty());
    }

    #[test]
    fn waiter_arena_recycles_without_heap_growth() {
        let mut arena = WaiterArena::with_capacity(4);
        let mut head = NO_WAITER;
        head = arena.push(head, 10);
        head = arena.push_run(head, &[11, 12]);
        assert_eq!(arena.stats().live, 3);
        let mut out = Vec::new();
        arena.drain_into(head, &mut out);
        // Prepend order: the run lands in front of the first push.
        assert_eq!(out, vec![12, 11, 10]);
        assert_eq!(arena.stats().live, 0);

        // Recycled nodes: no heap growth however many rounds run.
        for _ in 0..100 {
            let h = arena.push_run(NO_WAITER, &[1, 2, 3, 4]);
            arena.free_list(h);
        }
        let stats = arena.stats();
        assert_eq!(stats.heap_growths, 0, "pool never regrew");
        assert_eq!(stats.live, 0);
        assert!(stats.pushes >= 403);

        // Overflowing the pre-sized pool is counted.
        let mut h = NO_WAITER;
        for dep in 0..5 {
            h = arena.push(h, dep);
        }
        assert!(arena.stats().heap_growths >= 1);
        arena.reset();
        assert_eq!(arena.stats().live, 0);
    }

    #[test]
    fn duplicate_dependents_are_kept() {
        // An instruction reading one producer through both operands must be
        // woken twice; the arena must not dedup.
        let mut arena = WaiterArena::with_capacity(8);
        let head = arena.push_run(NO_WAITER, &[42, 42]);
        let mut out = Vec::new();
        arena.drain_into(head, &mut out);
        assert_eq!(out, vec![42, 42]);
    }
}

//! Per-run statistics produced by the pipeline model.

use sdv_core::{DvStats, ElementUsage};
use sdv_mem::{CacheStats, PortStats, WideBusStats};

/// Everything a single simulation run measures.
///
/// The figure generators in `sdv-sim` combine these raw counters into the
/// percentages and averages the paper plots.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed branches and jumps.
    pub committed_control: u64,
    /// Committed instructions that were validations of a vector element (Figure 14).
    pub committed_validations: u64,
    /// Committed instructions executed in vector mode: validations plus the
    /// instances that triggered vector execution (Figure 3).
    pub committed_vector_mode: u64,
    /// Conditional branches and jumps looked up in the predictor.
    pub branch_lookups: u64,
    /// Mispredicted control transfers.
    pub mispredictions: u64,
    /// Memory accesses presented to the L1 data cache (demand loads, committed
    /// stores and vector-load line accesses).
    pub memory_accesses: u64,
    /// Of those, line accesses performed by the vector data path on behalf of
    /// vectorized loads (speculative prefetches included).
    pub vector_line_accesses: u64,
    /// Demand load accesses that reached the L1 (loads served by a peer access
    /// on a wide bus or by store forwarding are not included).
    pub load_accesses: u64,
    /// Loads completed by piggybacking on another access to the same line (§3.7).
    pub loads_served_by_peer: u64,
    /// Loads satisfied by store-to-load forwarding in the LSQ.
    pub store_forwards: u64,
    /// Arithmetic operations executed on the scalar functional units.
    pub scalar_arith_executed: u64,
    /// Cycles in which dispatch was blocked waiting for the scalar operand of a
    /// to-be-vectorized instruction (§3.2, Figure 7).
    pub decode_blocked_cycles: u64,
    /// Instructions observed inside the 100-instruction windows following
    /// mispredicted branches (Figure 10 denominator).
    pub post_mispredict_window: u64,
    /// Of those, instructions that reused an already-computed vector element
    /// (Figure 10 numerator).
    pub post_mispredict_reused: u64,
    /// Number of L1 data-cache ports.
    pub port_count: usize,
    /// Port occupancy counters (Figure 12).
    pub ports: PortStats,
    /// Wide-bus useful-word accounting (Figure 13); `None` with scalar ports.
    pub wide_bus: Option<WideBusStats>,
    /// L1 data-cache statistics.
    pub l1d: CacheStats,
    /// L1 instruction-cache statistics.
    pub l1i: CacheStats,
    /// Vectorization-engine counters; `None` when the mechanism is disabled.
    pub dv: Option<DvStats>,
    /// Vector-element usage (Figure 15); `None` when the mechanism is disabled.
    pub element_usage: Option<ElementUsage>,
}

impl RunStats {
    /// Creates an all-zero record for `port_count` ports.
    #[must_use]
    pub fn new(port_count: usize) -> Self {
        RunStats {
            cycles: 0,
            committed: 0,
            committed_loads: 0,
            committed_stores: 0,
            committed_control: 0,
            committed_validations: 0,
            committed_vector_mode: 0,
            branch_lookups: 0,
            mispredictions: 0,
            memory_accesses: 0,
            vector_line_accesses: 0,
            load_accesses: 0,
            loads_served_by_peer: 0,
            store_forwards: 0,
            scalar_arith_executed: 0,
            decode_blocked_cycles: 0,
            post_mispredict_window: 0,
            post_mispredict_reused: 0,
            port_count,
            ports: PortStats::default(),
            wide_bus: None,
            l1d: CacheStats::default(),
            l1i: CacheStats::default(),
            dv: None,
            element_usage: None,
        }
    }

    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of committed instructions that were validations (Figure 14).
    #[must_use]
    pub fn validation_fraction(&self) -> f64 {
        self.fraction(self.committed_validations)
    }

    /// Fraction of committed instructions executed in vector mode (Figure 3).
    #[must_use]
    pub fn vector_mode_fraction(&self) -> f64 {
        self.fraction(self.committed_vector_mode)
    }

    /// Average L1 data-port occupancy (Figure 12).
    #[must_use]
    pub fn port_occupancy(&self) -> f64 {
        self.ports.occupancy(self.port_count)
    }

    /// Branch misprediction rate over all predicted control transfers.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.branch_lookups == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branch_lookups as f64
        }
    }

    /// Fraction of the post-misprediction window that reused vector results (Figure 10).
    #[must_use]
    pub fn cfi_reuse_fraction(&self) -> f64 {
        if self.post_mispredict_window == 0 {
            0.0
        } else {
            self.post_mispredict_reused as f64 / self.post_mispredict_window as f64
        }
    }

    fn fraction(&self, n: u64) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            n as f64 / self.committed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = RunStats::new(2);
        s.cycles = 100;
        s.committed = 250;
        s.committed_validations = 50;
        s.committed_vector_mode = 60;
        s.branch_lookups = 40;
        s.mispredictions = 4;
        s.post_mispredict_window = 200;
        s.post_mispredict_reused = 34;
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.validation_fraction() - 0.2).abs() < 1e-12);
        assert!((s.vector_mode_fraction() - 0.24).abs() < 1e-12);
        assert!((s.misprediction_rate() - 0.1).abs() < 1e-12);
        assert!((s.cfi_reuse_fraction() - 0.17).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = RunStats::new(1);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.validation_fraction(), 0.0);
        assert_eq!(s.vector_mode_fraction(), 0.0);
        assert_eq!(s.misprediction_rate(), 0.0);
        assert_eq!(s.cfi_reuse_fraction(), 0.0);
        assert_eq!(s.port_occupancy(), 0.0);
    }
}

//! An ordered set of sequence numbers backed by a sorted `Vec`.
//!
//! The wakeup scheduler keeps several program-ordered queues (ready queues,
//! pending validations, unknown-address stores).  Their populations are small
//! (bounded by the instruction window) and the operations are dominated by
//! ordered scans and point insert/remove, for which a sorted vector's binary
//! search plus `memmove` beats a B-tree — especially in unoptimised builds,
//! where pointer-chasing tree code pays full function-call freight on the
//! simulator's hottest path.

/// A sorted, duplicate-free set of `u64` sequence numbers.
#[derive(Debug, Clone, Default)]
pub struct SeqSet {
    items: Vec<u64>,
}

impl SeqSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        SeqSet::default()
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Inserts `seq`; returns `true` if it was not already present.
    pub fn insert(&mut self, seq: u64) -> bool {
        match self.items.binary_search(&seq) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, seq);
                true
            }
        }
    }

    /// Appends `seq`, which must be strictly greater than every element
    /// already present — the group-dispatch fast path: freshly dispatched
    /// instructions carry the largest sequence numbers, so their ready-set
    /// inserts are plain tail pushes instead of binary-search shifts.
    pub fn extend_back(&mut self, seq: u64) {
        debug_assert!(
            self.items.last().is_none_or(|&last| last < seq),
            "extend_back requires ascending keys"
        );
        self.items.push(seq);
    }

    /// Removes `seq`; returns `true` if it was present.
    pub fn remove(&mut self, seq: u64) -> bool {
        match self.items.binary_search(&seq) {
            Ok(pos) => {
                self.items.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The smallest element.
    #[must_use]
    pub fn first(&self) -> Option<u64> {
        self.items.first().copied()
    }

    /// The element at `pos` in ascending order.
    #[must_use]
    pub fn get(&self, pos: usize) -> Option<u64> {
        self.items.get(pos).copied()
    }

    /// The smallest element strictly greater than `seq`.
    #[must_use]
    pub fn next_after(&self, seq: u64) -> Option<u64> {
        let pos = match self.items.binary_search(&seq) {
            Ok(pos) => pos + 1,
            Err(pos) => pos,
        };
        self.items.get(pos).copied()
    }

    /// The smallest element strictly smaller than `bound`, if any exists.
    #[must_use]
    pub fn any_below(&self, bound: u64) -> bool {
        self.items.first().is_some_and(|&first| first < bound)
    }

    /// Iterates in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.items.iter()
    }
}

impl<'a> IntoIterator for &'a SeqSet {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_insert_remove_and_queries() {
        let mut s = SeqSet::new();
        assert!(s.is_empty());
        for seq in [5u64, 1, 9, 3, 7] {
            assert!(s.insert(seq));
        }
        assert!(!s.insert(5), "duplicates are rejected");
        assert_eq!(s.len(), 5);
        assert_eq!(s.first(), Some(1));
        assert_eq!(s.next_after(3), Some(5));
        assert_eq!(s.next_after(4), Some(5));
        assert_eq!(s.next_after(9), None);
        assert!(s.any_below(2));
        assert!(!s.any_below(1));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![1, 3, 7, 9]);
        s.clear();
        assert_eq!(s.first(), None);
    }

    #[test]
    fn extend_back_appends_in_order() {
        let mut s = SeqSet::new();
        s.insert(4);
        s.extend_back(9);
        s.extend_back(12);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![4, 9, 12]);
        assert!(!s.insert(9), "extended elements are regular members");
        assert!(s.remove(9));
    }
}

//! Processor configuration (Table 1 of the paper).

use sdv_core::DvConfig;
use sdv_isa::OpClass;
use sdv_mem::{MemHierarchyConfig, PortKind};
use sdv_predictor::PredictorConfig;

/// Issue/execution resources for one functional-unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuClassConfig {
    /// Number of units of this class.
    pub count: usize,
    /// Latency in cycles (units are fully pipelined).
    pub latency: u64,
}

/// Functional-unit complement for either the scalar or the vector data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Simple integer ALUs.
    pub int_alu: FuClassConfig,
    /// Integer multiplier/dividers (multiply latency).
    pub int_mul: FuClassConfig,
    /// Integer divide latency (shares the multiplier units).
    pub int_div_latency: u64,
    /// Simple FP units.
    pub fp_add: FuClassConfig,
    /// FP multiplier/dividers (multiply latency).
    pub fp_mul: FuClassConfig,
    /// FP divide latency (shares the FP multiplier units).
    pub fp_div_latency: u64,
}

impl FuConfig {
    /// The 4-way configuration of Table 1.
    #[must_use]
    pub fn four_way() -> Self {
        FuConfig {
            int_alu: FuClassConfig {
                count: 3,
                latency: 1,
            },
            int_mul: FuClassConfig {
                count: 2,
                latency: 2,
            },
            int_div_latency: 12,
            fp_add: FuClassConfig {
                count: 2,
                latency: 2,
            },
            fp_mul: FuClassConfig {
                count: 1,
                latency: 4,
            },
            fp_div_latency: 14,
        }
    }

    /// The 8-way configuration of Table 1.
    #[must_use]
    pub fn eight_way() -> Self {
        FuConfig {
            int_alu: FuClassConfig {
                count: 6,
                latency: 1,
            },
            int_mul: FuClassConfig {
                count: 3,
                latency: 2,
            },
            int_div_latency: 12,
            fp_add: FuClassConfig {
                count: 4,
                latency: 2,
            },
            fp_mul: FuClassConfig {
                count: 2,
                latency: 4,
            },
            fp_div_latency: 14,
        }
    }

    /// The number of units able to execute `class`.
    #[must_use]
    pub fn units_for(&self, class: OpClass) -> usize {
        match class {
            OpClass::IntAlu => self.int_alu.count,
            OpClass::IntMul | OpClass::IntDiv => self.int_mul.count,
            OpClass::FpAdd => self.fp_add.count,
            OpClass::FpMul | OpClass::FpDiv => self.fp_mul.count,
            // Branches and jumps execute on the integer ALUs.
            OpClass::Branch | OpClass::Jump => self.int_alu.count,
            _ => usize::MAX,
        }
    }

    /// The execution latency of `class` (memory classes are handled by the
    /// memory hierarchy, not here).
    #[must_use]
    pub fn latency_for(&self, class: OpClass) -> u64 {
        match class {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump => self.int_alu.latency,
            OpClass::IntMul => self.int_mul.latency,
            OpClass::IntDiv => self.int_div_latency,
            OpClass::FpAdd => self.fp_add.latency,
            OpClass::FpMul => self.fp_mul.latency,
            OpClass::FpDiv => self.fp_div_latency,
            _ => 1,
        }
    }
}

/// Full processor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct UarchConfig {
    /// Instructions fetched per cycle (up to one taken branch).
    pub fetch_width: usize,
    /// Instructions renamed/dispatched and issued per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Instruction-window (ROB) size.
    pub rob_size: usize,
    /// Load/store queue size.
    pub lsq_size: usize,
    /// Scalar functional units.
    pub scalar_fus: FuConfig,
    /// Vector functional units (used only when vectorization is enabled).
    pub vector_fus: FuConfig,
    /// Number of L1 data-cache ports.
    pub dcache_ports: usize,
    /// Whether the ports are scalar (one word) or wide (one line).
    pub port_kind: PortKind,
    /// Memory hierarchy parameters.
    pub memory: MemHierarchyConfig,
    /// Branch predictor parameters.
    pub predictor: PredictorConfig,
    /// Dynamic vectorization parameters; `None` disables the mechanism.
    pub vectorization: Option<DvConfig>,
    /// §3.2: block decode when an instruction is vectorized with a scalar
    /// operand whose value is not yet available (`false` models the "ideal"
    /// bars of Figure 7).
    pub block_on_scalar_operand: bool,
    /// §3.6: maximum stores committed per cycle when vectorization is enabled.
    pub store_commit_limit: usize,
    /// Extra cycles between a branch resolving as mispredicted and the first
    /// correct-path fetch.
    pub redirect_penalty: u64,
    /// Maximum number of loads that a single wide-bus access may serve (§3.7).
    pub wide_loads_per_access: usize,
}

impl UarchConfig {
    /// The 4-way configuration of Table 1 with `ports` L1 data-cache ports of
    /// the given kind and no dynamic vectorization.
    #[must_use]
    pub fn four_way(ports: usize, kind: PortKind) -> Self {
        UarchConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 128,
            lsq_size: 32,
            scalar_fus: FuConfig::four_way(),
            vector_fus: FuConfig::four_way(),
            dcache_ports: ports,
            port_kind: kind,
            memory: MemHierarchyConfig::table1(),
            predictor: PredictorConfig::default(),
            vectorization: None,
            block_on_scalar_operand: true,
            store_commit_limit: 2,
            redirect_penalty: 2,
            wide_loads_per_access: 4,
        }
    }

    /// The 8-way configuration of Table 1.
    #[must_use]
    pub fn eight_way(ports: usize, kind: PortKind) -> Self {
        UarchConfig {
            fetch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_size: 256,
            lsq_size: 64,
            scalar_fus: FuConfig::eight_way(),
            vector_fus: FuConfig::eight_way(),
            ..UarchConfig::four_way(ports, kind)
        }
    }

    /// Enables (or disables) speculative dynamic vectorization with the
    /// default hardware sizing.
    #[must_use]
    pub fn with_vectorization(mut self, enabled: bool) -> Self {
        self.vectorization = enabled.then(DvConfig::default);
        self
    }

    /// Enables vectorization with a specific sizing.
    #[must_use]
    pub fn with_dv_config(mut self, cfg: DvConfig) -> Self {
        self.vectorization = Some(cfg);
        self
    }

    /// Whether dynamic vectorization is enabled.
    #[must_use]
    pub fn vectorization_enabled(&self) -> bool {
        self.vectorization.is_some()
    }

    /// Words per L1 data-cache line, at the element size used by vector registers (8 bytes).
    #[must_use]
    pub fn line_words(&self) -> usize {
        self.memory.l1d.line_bytes / 8
    }

    /// A short name in the paper's style: `1pnoIM`, `2pIM`, `4pV`, …
    #[must_use]
    pub fn label(&self) -> String {
        let suffix = if self.vectorization_enabled() {
            "V"
        } else {
            match self.port_kind {
                PortKind::Scalar => "noIM",
                PortKind::Wide => "IM",
            }
        };
        format!("{}p{}", self.dcache_ports, suffix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets() {
        let four = UarchConfig::four_way(1, PortKind::Wide);
        assert_eq!(four.fetch_width, 4);
        assert_eq!(four.rob_size, 128);
        assert_eq!(four.lsq_size, 32);
        assert_eq!(four.scalar_fus.int_alu.count, 3);
        let eight = UarchConfig::eight_way(4, PortKind::Scalar);
        assert_eq!(eight.fetch_width, 8);
        assert_eq!(eight.rob_size, 256);
        assert_eq!(eight.lsq_size, 64);
        assert_eq!(eight.scalar_fus.int_alu.count, 6);
        assert_eq!(eight.dcache_ports, 4);
        assert_eq!(eight.memory, MemHierarchyConfig::table1());
    }

    #[test]
    fn vectorization_toggle() {
        let cfg = UarchConfig::four_way(1, PortKind::Wide).with_vectorization(true);
        assert!(cfg.vectorization_enabled());
        assert_eq!(cfg.vectorization.unwrap().vector_registers, 128);
        let cfg = cfg.with_vectorization(false);
        assert!(!cfg.vectorization_enabled());
    }

    #[test]
    fn labels_follow_the_paper() {
        assert_eq!(UarchConfig::four_way(1, PortKind::Scalar).label(), "1pnoIM");
        assert_eq!(UarchConfig::four_way(2, PortKind::Wide).label(), "2pIM");
        assert_eq!(
            UarchConfig::four_way(4, PortKind::Wide)
                .with_vectorization(true)
                .label(),
            "4pV"
        );
    }

    #[test]
    fn fu_lookup_latencies() {
        let fu = FuConfig::four_way();
        assert_eq!(fu.latency_for(OpClass::IntAlu), 1);
        assert_eq!(fu.latency_for(OpClass::IntDiv), 12);
        assert_eq!(fu.latency_for(OpClass::FpMul), 4);
        assert_eq!(fu.latency_for(OpClass::FpDiv), 14);
        assert_eq!(fu.units_for(OpClass::Branch), 3);
        assert_eq!(fu.units_for(OpClass::FpDiv), 1);
    }

    #[test]
    fn line_words_from_geometry() {
        let cfg = UarchConfig::four_way(1, PortKind::Wide);
        assert_eq!(cfg.line_words(), 4, "32-byte lines hold four 64-bit words");
    }
}

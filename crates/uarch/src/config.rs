//! Processor configuration (Table 1 of the paper) and the [`ConfigBuilder`]
//! behind the experiment API.
//!
//! [`UarchConfig::four_way`] / [`UarchConfig::eight_way`] are thin presets
//! over [`UarchConfig::builder`], which also supports arbitrary issue widths
//! and the wide-bus width axis of the §4.3 trade-off surface.

use sdv_core::DvConfig;
use sdv_isa::OpClass;
use sdv_mem::{MemHierarchyConfig, PortKind};
use sdv_predictor::PredictorConfig;

/// The paper's wide bus moves one 32-byte L1 line = four 64-bit elements.
pub const DEFAULT_BUS_WORDS: usize = 4;

/// Issue/execution resources for one functional-unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuClassConfig {
    /// Number of units of this class.
    pub count: usize,
    /// Latency in cycles (units are fully pipelined).
    pub latency: u64,
}

/// Functional-unit complement for either the scalar or the vector data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuConfig {
    /// Simple integer ALUs.
    pub int_alu: FuClassConfig,
    /// Integer multiplier/dividers (multiply latency).
    pub int_mul: FuClassConfig,
    /// Integer divide latency (shares the multiplier units).
    pub int_div_latency: u64,
    /// Simple FP units.
    pub fp_add: FuClassConfig,
    /// FP multiplier/dividers (multiply latency).
    pub fp_mul: FuClassConfig,
    /// FP divide latency (shares the FP multiplier units).
    pub fp_div_latency: u64,
}

impl FuConfig {
    /// The 4-way configuration of Table 1.
    #[must_use]
    pub fn four_way() -> Self {
        FuConfig {
            int_alu: FuClassConfig {
                count: 3,
                latency: 1,
            },
            int_mul: FuClassConfig {
                count: 2,
                latency: 2,
            },
            int_div_latency: 12,
            fp_add: FuClassConfig {
                count: 2,
                latency: 2,
            },
            fp_mul: FuClassConfig {
                count: 1,
                latency: 4,
            },
            fp_div_latency: 14,
        }
    }

    /// The 8-way configuration of Table 1.
    #[must_use]
    pub fn eight_way() -> Self {
        FuConfig {
            int_alu: FuClassConfig {
                count: 6,
                latency: 1,
            },
            int_mul: FuClassConfig {
                count: 3,
                latency: 2,
            },
            int_div_latency: 12,
            fp_add: FuClassConfig {
                count: 4,
                latency: 2,
            },
            fp_mul: FuClassConfig {
                count: 2,
                latency: 4,
            },
            fp_div_latency: 14,
        }
    }

    /// A functional-unit complement sized for an arbitrary issue width.
    ///
    /// Widths 4 and 8 return the exact Table 1 complements; other widths scale
    /// the 4-way complement linearly (never below one unit per class).
    #[must_use]
    pub fn for_width(width: usize) -> Self {
        match width {
            4 => FuConfig::four_way(),
            8 => FuConfig::eight_way(),
            w => {
                let scale = |count: usize| (count * w / 4).max(1);
                let four = FuConfig::four_way();
                FuConfig {
                    int_alu: FuClassConfig {
                        count: scale(four.int_alu.count),
                        ..four.int_alu
                    },
                    int_mul: FuClassConfig {
                        count: scale(four.int_mul.count),
                        ..four.int_mul
                    },
                    fp_add: FuClassConfig {
                        count: scale(four.fp_add.count),
                        ..four.fp_add
                    },
                    fp_mul: FuClassConfig {
                        count: scale(four.fp_mul.count),
                        ..four.fp_mul
                    },
                    ..four
                }
            }
        }
    }

    /// The number of units able to execute `class`.
    #[must_use]
    pub fn units_for(&self, class: OpClass) -> usize {
        match class {
            OpClass::IntAlu => self.int_alu.count,
            OpClass::IntMul | OpClass::IntDiv => self.int_mul.count,
            OpClass::FpAdd => self.fp_add.count,
            OpClass::FpMul | OpClass::FpDiv => self.fp_mul.count,
            // Branches and jumps execute on the integer ALUs.
            OpClass::Branch | OpClass::Jump => self.int_alu.count,
            _ => usize::MAX,
        }
    }

    /// The execution latency of `class` (memory classes are handled by the
    /// memory hierarchy, not here).
    #[must_use]
    pub fn latency_for(&self, class: OpClass) -> u64 {
        match class {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump => self.int_alu.latency,
            OpClass::IntMul => self.int_mul.latency,
            OpClass::IntDiv => self.int_div_latency,
            OpClass::FpAdd => self.fp_add.latency,
            OpClass::FpMul => self.fp_mul.latency,
            OpClass::FpDiv => self.fp_div_latency,
            _ => 1,
        }
    }
}

/// Full processor configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UarchConfig {
    /// Instructions fetched per cycle (up to one taken branch).
    pub fetch_width: usize,
    /// Instructions renamed/dispatched and issued per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Instruction-window (ROB) size.
    pub rob_size: usize,
    /// Load/store queue size.
    pub lsq_size: usize,
    /// Scalar functional units.
    pub scalar_fus: FuConfig,
    /// Vector functional units (used only when vectorization is enabled).
    pub vector_fus: FuConfig,
    /// Number of L1 data-cache ports.
    pub dcache_ports: usize,
    /// Whether the ports are scalar (one word) or wide (one line).
    pub port_kind: PortKind,
    /// Memory hierarchy parameters.
    pub memory: MemHierarchyConfig,
    /// Branch predictor parameters.
    pub predictor: PredictorConfig,
    /// Dynamic vectorization parameters; `None` disables the mechanism.
    pub vectorization: Option<DvConfig>,
    /// §3.2: block decode when an instruction is vectorized with a scalar
    /// operand whose value is not yet available (`false` models the "ideal"
    /// bars of Figure 7).
    pub block_on_scalar_operand: bool,
    /// §3.6: maximum stores committed per cycle when vectorization is enabled.
    pub store_commit_limit: usize,
    /// Extra cycles between a branch resolving as mispredicted and the first
    /// correct-path fetch.
    pub redirect_penalty: u64,
    /// Maximum number of loads that a single wide-bus access may serve (§3.7).
    pub wide_loads_per_access: usize,
}

impl UarchConfig {
    /// A builder starting from the 4-way Table 1 machine with one wide port.
    #[must_use]
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// The 4-way configuration of Table 1 with `ports` L1 data-cache ports of
    /// the given kind and no dynamic vectorization.
    #[must_use]
    pub fn four_way(ports: usize, kind: PortKind) -> Self {
        UarchConfig::builder()
            .issue_width(4)
            .ports(ports)
            .port_kind(kind)
            .build()
    }

    /// The 8-way configuration of Table 1.
    #[must_use]
    pub fn eight_way(ports: usize, kind: PortKind) -> Self {
        UarchConfig::builder()
            .issue_width(8)
            .ports(ports)
            .port_kind(kind)
            .build()
    }

    /// Enables (or disables) speculative dynamic vectorization with the
    /// default hardware sizing.
    #[must_use]
    pub fn with_vectorization(mut self, enabled: bool) -> Self {
        self.vectorization = enabled.then(DvConfig::default);
        self
    }

    /// Enables vectorization with a specific sizing.
    #[must_use]
    pub fn with_dv_config(mut self, cfg: DvConfig) -> Self {
        self.vectorization = Some(cfg);
        self
    }

    /// Whether dynamic vectorization is enabled.
    #[must_use]
    pub fn vectorization_enabled(&self) -> bool {
        self.vectorization.is_some()
    }

    /// Words per L1 data-cache line, at the element size used by vector registers (8 bytes).
    #[must_use]
    pub fn line_words(&self) -> usize {
        self.memory.l1d.line_bytes / 8
    }

    /// Elements a single wide-bus access can move (equals [`Self::line_words`];
    /// 1 for scalar ports).
    #[must_use]
    pub fn bus_words(&self) -> usize {
        match self.port_kind {
            PortKind::Scalar => 1,
            PortKind::Wide => self.line_words(),
        }
    }

    /// A short name in the paper's style: `1pnoIM`, `2pIM`, `4pV`, …
    ///
    /// This is the *single* place a configuration label is derived; everything
    /// else (variants, sweep cells, CSV export) goes through it, so a label
    /// can never disagree with the configuration that produced it.  The label
    /// is injective over `(ports, port kind, vectorization, bus width, DV
    /// sizing)`: non-paper bus widths get an explicit suffix (`1pVb8` is a
    /// 1-port vectorizing machine with an 8-element wide bus), non-paper DV
    /// sizings get `l{vector length}` / `r{register count}` suffixes
    /// (`1pVl8r64`), and the non-paper "DV over scalar ports" combination is
    /// distinguished as `xpVs`.
    #[must_use]
    pub fn label(&self) -> String {
        let suffix = match (self.vectorization_enabled(), self.port_kind) {
            (true, PortKind::Wide) => "V",
            (true, PortKind::Scalar) => "Vs",
            (false, PortKind::Wide) => "IM",
            (false, PortKind::Scalar) => "noIM",
        };
        let mut label = format!("{}p{}", self.dcache_ports, suffix);
        if self.port_kind == PortKind::Wide && self.line_words() != DEFAULT_BUS_WORDS {
            label.push_str(&format!("b{}", self.line_words()));
        }
        if let Some(dv) = &self.vectorization {
            let paper = DvConfig::default();
            if dv.vector_length != paper.vector_length {
                label.push_str(&format!("l{}", dv.vector_length));
            }
            if dv.vector_registers != paper.vector_registers {
                label.push_str(&format!("r{}", dv.vector_registers));
            }
        }
        label
    }
}

/// Builder for [`UarchConfig`]: arbitrary issue width, port count and kind,
/// wide-bus width (in 64-bit elements) and dynamic-vectorization parameters.
///
/// ```
/// use sdv_uarch::UarchConfig;
/// use sdv_mem::PortKind;
///
/// let cfg = UarchConfig::builder()
///     .issue_width(8)
///     .ports(2)
///     .bus_words(8)
///     .vectorization(true)
///     .build();
/// assert_eq!(cfg.fetch_width, 8);
/// assert_eq!(cfg.rob_size, 256);
/// assert_eq!(cfg.line_words(), 8);
/// assert_eq!(cfg.label(), "2pVb8");
/// assert_eq!(
///     UarchConfig::builder().build(),
///     UarchConfig::four_way(1, PortKind::Wide)
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    issue_width: usize,
    ports: usize,
    kind: PortKind,
    bus_words: usize,
    vectorization: Option<DvConfig>,
    block_on_scalar_operand: bool,
    memory: MemHierarchyConfig,
    predictor: PredictorConfig,
}

impl Default for ConfigBuilder {
    fn default() -> Self {
        ConfigBuilder {
            issue_width: 4,
            ports: 1,
            kind: PortKind::Wide,
            bus_words: DEFAULT_BUS_WORDS,
            vectorization: None,
            block_on_scalar_operand: true,
            memory: MemHierarchyConfig::table1(),
            predictor: PredictorConfig::default(),
        }
    }
}

impl ConfigBuilder {
    /// Sets fetch/issue/commit width; the instruction window, LSQ and
    /// functional units scale with it (widths 4 and 8 reproduce Table 1
    /// exactly).
    #[must_use]
    pub fn issue_width(mut self, width: usize) -> Self {
        assert!(width >= 1, "a processor issues at least one instruction");
        self.issue_width = width;
        self
    }

    /// Sets the number of L1 data-cache ports.
    #[must_use]
    pub fn ports(mut self, ports: usize) -> Self {
        assert!(ports >= 1, "a processor needs at least one data-cache port");
        self.ports = ports;
        self
    }

    /// Sets the port kind (scalar word bus vs. wide line bus).
    #[must_use]
    pub fn port_kind(mut self, kind: PortKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the wide-bus width in 64-bit elements (the §4.3 bus-width axis).
    ///
    /// A bus of `words` elements moves an L1 data line of `8 * words` bytes
    /// per access and can serve up to `words` pending loads with it.  Ignored
    /// by scalar ports, so a scalar-bus configuration is identical across the
    /// bus-width axis (and deduplicates to a single simulation).
    #[must_use]
    pub fn bus_words(mut self, words: usize) -> Self {
        assert!(words >= 1, "a bus moves at least one element");
        self.bus_words = words;
        self
    }

    /// Enables (or disables) dynamic vectorization with default sizing.
    #[must_use]
    pub fn vectorization(mut self, enabled: bool) -> Self {
        self.vectorization = enabled.then(DvConfig::default);
        self
    }

    /// Enables dynamic vectorization with a specific sizing.
    #[must_use]
    pub fn dv_config(mut self, cfg: DvConfig) -> Self {
        self.vectorization = Some(cfg);
        self
    }

    /// §3.2 decode blocking on not-ready scalar operands (`false` models the
    /// "ideal" bars of Figure 7).
    #[must_use]
    pub fn block_on_scalar_operand(mut self, block: bool) -> Self {
        self.block_on_scalar_operand = block;
        self
    }

    /// Overrides the memory hierarchy (the L1 data line still follows
    /// [`Self::bus_words`] for wide ports).
    #[must_use]
    pub fn memory(mut self, memory: MemHierarchyConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Overrides the branch predictor parameters.
    #[must_use]
    pub fn predictor(mut self, predictor: PredictorConfig) -> Self {
        self.predictor = predictor;
        self
    }

    /// Builds the configuration.
    #[must_use]
    pub fn build(self) -> UarchConfig {
        let w = self.issue_width;
        let fus = FuConfig::for_width(w);
        let mut memory = self.memory;
        let mut wide_loads_per_access = DEFAULT_BUS_WORDS;
        if self.kind == PortKind::Wide {
            memory.l1d.line_bytes = 8 * self.bus_words;
            wide_loads_per_access = self.bus_words;
        }
        UarchConfig {
            fetch_width: w,
            issue_width: w,
            commit_width: w,
            rob_size: 32 * w,
            lsq_size: 8 * w,
            scalar_fus: fus,
            vector_fus: fus,
            dcache_ports: self.ports,
            port_kind: self.kind,
            memory,
            predictor: self.predictor,
            vectorization: self.vectorization,
            block_on_scalar_operand: self.block_on_scalar_operand,
            store_commit_limit: 2,
            redirect_penalty: 2,
            wide_loads_per_access,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets() {
        let four = UarchConfig::four_way(1, PortKind::Wide);
        assert_eq!(four.fetch_width, 4);
        assert_eq!(four.rob_size, 128);
        assert_eq!(four.lsq_size, 32);
        assert_eq!(four.scalar_fus.int_alu.count, 3);
        let eight = UarchConfig::eight_way(4, PortKind::Scalar);
        assert_eq!(eight.fetch_width, 8);
        assert_eq!(eight.rob_size, 256);
        assert_eq!(eight.lsq_size, 64);
        assert_eq!(eight.scalar_fus.int_alu.count, 6);
        assert_eq!(eight.dcache_ports, 4);
        assert_eq!(eight.memory, MemHierarchyConfig::table1());
    }

    #[test]
    fn builder_reproduces_presets() {
        assert_eq!(
            UarchConfig::builder().issue_width(4).ports(2).build(),
            UarchConfig::four_way(2, PortKind::Wide)
        );
        assert_eq!(
            UarchConfig::builder()
                .issue_width(8)
                .ports(1)
                .port_kind(PortKind::Scalar)
                .build(),
            UarchConfig::eight_way(1, PortKind::Scalar)
        );
    }

    #[test]
    fn builder_scales_intermediate_widths() {
        let two = UarchConfig::builder().issue_width(2).build();
        assert_eq!(two.fetch_width, 2);
        assert_eq!(two.rob_size, 64);
        assert_eq!(two.lsq_size, 16);
        assert_eq!(two.scalar_fus.int_alu.count, 1);
        assert_eq!(two.scalar_fus.fp_mul.count, 1, "never below one unit");
        let sixteen = UarchConfig::builder().issue_width(16).build();
        assert_eq!(sixteen.scalar_fus.int_alu.count, 12);
        assert_eq!(sixteen.scalar_fus.fp_mul.count, 4);
    }

    #[test]
    fn bus_width_axis_changes_line_geometry_for_wide_ports_only() {
        let wide8 = UarchConfig::builder().bus_words(8).build();
        assert_eq!(wide8.memory.l1d.line_bytes, 64);
        assert_eq!(wide8.line_words(), 8);
        assert_eq!(wide8.wide_loads_per_access, 8);
        assert_eq!(wide8.bus_words(), 8);
        let scalar8 = UarchConfig::builder()
            .port_kind(PortKind::Scalar)
            .bus_words(8)
            .build();
        assert_eq!(
            scalar8,
            UarchConfig::four_way(1, PortKind::Scalar),
            "scalar ports ignore the bus-width axis"
        );
        assert_eq!(scalar8.bus_words(), 1);
    }

    #[test]
    fn vectorization_toggle() {
        let cfg = UarchConfig::four_way(1, PortKind::Wide).with_vectorization(true);
        assert!(cfg.vectorization_enabled());
        assert_eq!(cfg.vectorization.unwrap().vector_registers, 128);
        let cfg = cfg.with_vectorization(false);
        assert!(!cfg.vectorization_enabled());
    }

    #[test]
    fn labels_follow_the_paper() {
        assert_eq!(UarchConfig::four_way(1, PortKind::Scalar).label(), "1pnoIM");
        assert_eq!(UarchConfig::four_way(2, PortKind::Wide).label(), "2pIM");
        assert_eq!(
            UarchConfig::four_way(4, PortKind::Wide)
                .with_vectorization(true)
                .label(),
            "4pV"
        );
        assert_eq!(
            UarchConfig::builder()
                .ports(2)
                .bus_words(8)
                .vectorization(true)
                .build()
                .label(),
            "2pVb8"
        );
        assert_eq!(
            UarchConfig::builder()
                .port_kind(PortKind::Scalar)
                .bus_words(2)
                .build()
                .label(),
            "1pnoIM",
            "scalar buses never carry a bus suffix"
        );
        assert_eq!(
            UarchConfig::four_way(1, PortKind::Scalar)
                .with_vectorization(true)
                .label(),
            "1pVs",
            "DV over scalar ports must not collide with the paper's 1pV"
        );
    }

    #[test]
    fn configs_are_hashable_cell_keys() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(UarchConfig::four_way(1, PortKind::Wide));
        set.insert(UarchConfig::four_way(1, PortKind::Wide));
        set.insert(UarchConfig::four_way(2, PortKind::Wide));
        assert_eq!(set.len(), 2, "identical configs hash to the same cell");
    }

    #[test]
    fn fu_lookup_latencies() {
        let fu = FuConfig::four_way();
        assert_eq!(fu.latency_for(OpClass::IntAlu), 1);
        assert_eq!(fu.latency_for(OpClass::IntDiv), 12);
        assert_eq!(fu.latency_for(OpClass::FpMul), 4);
        assert_eq!(fu.latency_for(OpClass::FpDiv), 14);
        assert_eq!(fu.units_for(OpClass::Branch), 3);
        assert_eq!(fu.units_for(OpClass::FpDiv), 1);
    }

    #[test]
    fn line_words_from_geometry() {
        let cfg = UarchConfig::four_way(1, PortKind::Wide);
        assert_eq!(cfg.line_words(), 4, "32-byte lines hold four 64-bit words");
    }
}
